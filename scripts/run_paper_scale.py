"""Run the full paper-scale campaign (≈25.8 k servers, 38 days, 101 crawls).

This is the heavyweight reproduction: expect hours of CPU and multiple
gigabytes of RAM.  The default bench scale (see benchmarks/conftest.py)
reproduces every share-level result in minutes; run this only to verify
absolute counts at the paper's dimensions.

``--workers N`` fans the 101 DHT crawls out over N worker processes
(see repro.exec); the datasets are bit-identical at any worker count.

Usage: python scripts/run_paper_scale.py [output_dir] [--workers N]
"""

import argparse
import dataclasses
import time
from pathlib import Path

from repro.core.datasets import export_campaign
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.scenario.report import full_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "output_dir", nargs="?", default="paper_scale_output", type=Path
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the crawl phase (same results at any count)",
    )
    args = parser.parse_args()

    config = ScenarioConfig.paper_scale()
    if args.workers > 1:
        config = dataclasses.replace(config, workers=args.workers)
    print(
        f"paper-scale campaign: {config.profile.online_servers} online servers, "
        f"{config.days} days, {config.num_crawls} crawls, "
        f"{config.daily_cid_sample} CIDs sampled per day, "
        f"{config.workers} crawl worker(s)"
    )
    started = time.time()
    result = run_campaign(config)
    print(f"campaign finished in {(time.time() - started) / 3600:.1f} h")
    for error in result.exec_errors:
        print(f"warning: {error}")

    report = full_report(result, resilience_reps=10)
    out_dir = args.output_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    import json

    def default(value):
        return str(value)

    with open(out_dir / "full_report.json", "w") as handle:
        json.dump(report, handle, default=default, indent=2)
    counts = export_campaign(result, out_dir / "datasets")
    print(f"report and datasets written to {out_dir}: {counts}")


if __name__ == "__main__":
    main()
