"""Calibration harness: run a campaign and print measured-vs-paper.

Usage: python scripts/calibrate.py [servers] [days]
"""

import sys
import time

from repro import ScenarioConfig, PAPER, run_campaign
from repro.scenario import report as R
from repro.world.profiles import WorldProfile


def fmt(d, k=6):
    items = sorted(d.items(), key=lambda kv: -kv[1])[:k]
    return {a: round(b, 3) for a, b in items}


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    cfg = ScenarioConfig(
        profile=WorldProfile(online_servers=servers),
        days=days,
        daily_cid_sample=300,
        provider_fetch_days=min(days - 1, 5),
    )
    t0 = time.time()
    res = run_campaign(cfg)
    print(f"campaign: {time.time()-t0:.1f}s")
    t0 = time.time()
    rep = R.full_report(res, resilience_reps=3)
    print(f"report: {time.time()-t0:.1f}s")

    cs = rep["crawl_stats"]
    print("\n== S3 crawl stats")
    print(f"  discovered/crawl {cs['avg_discovered']:.0f}  crawlable {cs['crawlable_fraction']:.2f} (paper 0.70)")
    print(f"  ips/peer {cs['ips_per_peer']:.2f} (paper 1.82)  peer_turnover {cs['peer_turnover']:.2f} (paper 2.09@38d)  ip_turnover {cs['ip_turnover']:.2f} (paper 3.34@38d)")
    f3 = rep["fig3"]
    print("== F3 cloud status")
    print(f"  A-N  {fmt(f3['A-N'])} (paper cloud .796 noncloud .186)")
    print(f"  G-IP {fmt(f3['G-IP'])} (paper cloud .399 noncloud .601)")
    f4 = rep["fig4"]
    an = [r for _, r in f4["A-N"]]
    gip = [r for _, r in f4["G-IP"]]
    print(f"== F4 ratio series A-N first/last {an[0]:.2f}/{an[-1]:.2f}  G-IP first/last {gip[0]:.2f}/{gip[-1]:.2f} (G-IP should fall)")
    f5 = rep["fig5"]
    print(f"== F5 A-N {fmt(f5['A-N'])}")
    print(f"  choopa {f5['an_choopa']:.3f} (paper .293)  top3 {f5['an_top3_share']:.3f} (paper .519)  gip_choopa {f5['gip_choopa']:.3f} (paper .138)")
    f6 = rep["fig6"]
    print(f"== F6 A-N {fmt(f6['A-N'])} non-top10 {f6['an_non_top10']:.3f} (paper US .474 DE .137 KR .052 / .133)")
    print(f"   G-IP {fmt(f6['G-IP'])} non-top10 {f6['gip_non_top10']:.3f} (paper US .330 CN .111 DE .080 / .229)")
    f7 = rep["fig7"]
    print(f"== F7 out mean {f7['out_mean']:.0f} band [{f7['out_p10']:.0f},{f7['out_p90']:.0f}] in p50/p90/max {f7['in_median']:.0f}/{f7['in_p90']:.0f}/{f7['in_max']:.0f}")
    f8 = rep["fig8"]
    print(f"== F8 random lcc@90% {f8['random_lcc_at_90pct']:.3f} (paper .96)  targeted partition @ {f8['targeted_partition_point']:.2f} (paper .60)")
    s5 = rep["sec5"]
    print(f"== S5 msgs {s5['total_messages']:.0f} dl {s5['download_share']:.2f} (.57) adv {s5['advertisement_share']:.2f} (.40) other {s5['other_share']:.3f} (.03)")
    f10 = rep["fig10"]
    print(f"== F10 dht top5% {f10['dht_top5pct_share']:.2f} (.97) gw_dht {f10['dht_gateway_share']:.3f} (.01) bs top5% {f10['bitswap_top5pct_share']:.2f} gw_bs {f10['bitswap_gateway_share']:.2f} (.18)")
    f11 = rep["fig11"]
    print(f"== F11 dht top5% {f11['dht_top5pct_share']:.2f} (.94) cloud_dht {f11['dht_cloud_share']:.2f} (.85) cloud_bs {f11['bitswap_cloud_share']:.2f} (.42)")
    f12 = rep["fig12"]
    print(f"== F12 ip-count cloud {f12['overall_cloud_by_ip_count']:.2f} (.35) dl {f12['download_cloud_by_ip_count']:.2f} (.45) adv {f12['advert_cloud_by_ip_count']:.2f} (.34)")
    print(f"   volume cloud {f12['overall_cloud_by_volume']:.2f} (.93) dl {f12['download_cloud_by_volume']:.2f} (.98) aws_dl {f12['aws_download_by_volume']:.2f} (.68)")
    f13 = rep["fig13"]
    print(f"== F13 dht_all {fmt(f13['dht_all'])}")
    print(f"   dl {fmt(f13['dht_download'])}")
    print(f"   adv {fmt(f13['dht_advertisement'])}")
    print(f"   bs {fmt(f13['bitswap'])}")
    print(f"   (paper: hydra .35 of all, .50 of dl; web3/nft dominate adv; ipfs-bank dominates bs)")
    f14 = rep["fig14"]
    print(f"== F14 {fmt(f14['class_shares'])} (paper nat .356 cloud .45 noncloud .18 hybrid .006)")
    print(f"   relay cloud {f14['relay_cloud_share']:.2f} (.80)  n={f14['total_providers']}")
    f15 = rep["fig15"]
    print(f"== F15 top1% {f15['top1pct_record_share']:.2f} (.90) shares {fmt(f15['record_shares_by_class'])} (paper cloud .70 nat .08 noncloud .22)")
    f16 = rep["fig16"]
    print(f"== F16 >=1cloud {f16['at_least_one_cloud']:.2f} (.95) >=half {f16['majority_cloud']:.2f} (.91) cloud-only {f16['cloud_only']:.2f} (.23) n={f16['total_cids']}")
    f17 = rep["fig17"]
    print(f"== F17 cloudflare {f17['cloudflare_share']:.2f} (.50) noncloud {f17['noncloud_share']:.2f} (.20) gw-ip overlap {f17['public_gateway_ip_share']:.2f} (.21)")
    f18 = rep["fig18_19"]
    print(f"== F18/19 frontends {fmt(f18['frontend_provider_shares'],4)} overlay {fmt(f18['overlay_provider_shares'],4)}")
    print(f"   geo frontends {fmt(f18['frontend_country_shares'],4)} overlay {fmt(f18['overlay_country_shares'],4)}")
    print(f"   endpoints {f18['num_functional_endpoints']}/{f18['num_listed_endpoints']} (22/83) overlay ids {f18['num_overlay_ids']} (119)")
    f20 = rep["fig20"]
    print(f"== F20 cloud {f20['cloud_share']:.2f} (.82) US+DE {f20['us_de_share']:.2f} (.60) records {f20['num_provider_records']}")


if __name__ == "__main__":
    main()
