#!/usr/bin/env python3
"""Quickstart: the full pipeline in two minutes.

1. Publish and retrieve content over the protocol substrate (Bitswap
   blocks + Kademlia provider records) — the micro level.
2. Run a complete smoke-scale measurement campaign and print the
   headline decentralization findings — the macro level.

Run: python examples/quickstart.py
"""

import random

from repro import ScenarioConfig, run_campaign
from repro.bitswap.engine import BitswapEngine
from repro.content.blocks import chunk_data, reassemble
from repro.ids.peerid import PeerID
from repro.scenario import report
from repro.viz import bar_chart


def micro_demo() -> None:
    """Content exchange between two nodes, the IPFS way."""
    print("== micro: publish and fetch a file over Bitswap ==")
    rng = random.Random(42)
    publisher = BitswapEngine(PeerID.generate(rng))
    downloader = BitswapEngine(PeerID.generate(rng))
    downloader.connect(publisher)

    payload = b"The cloud strikes back! " * 4096  # ~100 KiB
    dag, blocks = chunk_data(payload, chunk_size=16 * 1024)
    for cid, data in blocks:
        publisher.store.put_cid(cid, data)
    print(f"published {len(blocks)} blocks, root CID {dag.root}")

    holders = downloader.broadcast_want_have(dag.root)
    print(f"1-hop Bitswap discovery found holders: {len(holders)}")
    fetched = reassemble(dag, downloader.fetch_block)
    assert fetched == payload
    received = downloader.ledgers[publisher.peer].bytes_received
    print(f"fetched and verified {len(fetched)} bytes ({received} via Bitswap)\n")


def macro_demo() -> None:
    """A smoke-scale measurement campaign (≈400 online DHT servers)."""
    print("== macro: a smoke-scale measurement campaign ==")
    result = run_campaign(ScenarioConfig.smoke())

    stats = report.crawl_stats_report(result)
    print(
        f"crawled the DHT {stats['num_crawls']:.0f} times: "
        f"{stats['avg_discovered']:.0f} peers/crawl, "
        f"{stats['crawlable_fraction']:.0%} crawlable"
    )

    fig3 = report.fig3_report(result)
    print()
    print(bar_chart(fig3["A-N"], "cloud status (A-N methodology):"))
    print()
    print(bar_chart(fig3["G-IP"], "cloud status (G-IP methodology — unique IPs):"))

    fig5 = report.fig5_report(result)
    print()
    print(bar_chart(fig5["A-N"], "nodes by hosting organisation (A-N):", limit=8))

    sec5 = report.sec5_report(result)
    print()
    print(
        f"hydra log: {sec5['total_messages']:.0f} messages "
        f"({sec5['download_share']:.0%} downloads, "
        f"{sec5['advertisement_share']:.0%} advertisements)"
    )
    fig14 = report.fig14_report(result)
    print()
    print(bar_chart(fig14["class_shares"], "content providers by class:"))
    print(f"NAT-ed providers relaying through the cloud: {fig14['relay_cloud_share']:.0%}")


if __name__ == "__main__":
    micro_demo()
    macro_demo()
