#!/usr/bin/env python3
"""The §4 topology study: degrees and attack tolerance.

Crawls the simulated DHT, reconstructs the overlay graph and reproduces
the Fig. 7 degree analysis and the Fig. 8 node-removal experiment
(random vs targeted), including the paper's 10-repetition confidence
interval protocol.

Run: python examples/resilience_study.py [online_servers]
"""

import random
import sys

from repro.core import resilience, topology
from repro.core.crawler import DHTCrawler
from repro.netsim.churn import ChurnProcess
from repro.netsim.network import Overlay
from repro.viz import cdf_chart, line_chart
from repro.world.population import build_world
from repro.world.profiles import WorldProfile


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    print(f"bootstrapping an overlay with {servers} online DHT servers...")
    world = build_world(WorldProfile(online_servers=servers))
    overlay = Overlay(world)
    overlay.bootstrap()
    overlay.schedule_periodic_refresh()
    ChurnProcess(overlay).start()
    overlay.scheduler.run_until(86400.0)  # one day of churn for realism

    print("crawling the DHT (crafted FIND_NODE bucket sweeps)...")
    snapshot = DHTCrawler(overlay).crawl(0)
    print(
        f"discovered {snapshot.num_discovered} peers, "
        f"{snapshot.num_crawlable} crawlable, "
        f"crawl duration {snapshot.duration:.0f}s (simulated)"
    )

    print("\n-- Fig. 7: degree distributions --")
    outs = list(topology.out_degrees(snapshot).values())
    ins = list(topology.estimated_in_degrees(snapshot).values())
    print(cdf_chart(outs, "out-degree CDF (narrow, bucket-bounded band):"))
    print()
    print(cdf_chart(ins, "estimated in-degree CDF (skewed tail):"))
    summary = topology.degree_summary(snapshot)
    print(
        f"\nout-degree band [{summary['out_p10']:.0f}, {summary['out_p90']:.0f}], "
        f"in-degree median {summary['in_median']:.0f}, "
        f"p90 {summary['in_p90']:.0f}, max {summary['in_max']:.0f}"
    )

    print("\n-- Fig. 8: resilience to node removals --")
    graph = topology.build_undirected(snapshot)
    fractions, means, halfwidths = resilience.random_removal_with_ci(
        graph, repetitions=10, rng=random.Random(0)
    )
    targeted = resilience.targeted_removal(graph)
    print(
        line_chart(
            list(zip(fractions, means)),
            "random removal: LCC share of remaining nodes (10-run mean):",
            x_label="fraction removed",
            y_label="LCC share",
        )
    )
    print()
    print(
        line_chart(
            list(zip(targeted.removed_fraction, targeted.lcc_share)),
            "targeted (highest-degree-first) removal:",
            x_label="fraction removed",
            y_label="LCC share",
        )
    )
    random_trace = resilience.RemovalTrace(list(fractions), list(means))
    print(
        f"\nrandom removal: {random_trace.share_at(0.9):.0%} of remaining nodes still "
        f"connected after 90% removed (paper: 96%)"
    )
    print(
        f"targeted removal: complete partition after removing "
        f"{targeted.partition_point():.0%} of nodes (paper: ~60%)"
    )
    print(f"95% CI half-width stays below {max(h for f, h in zip(fractions, halfwidths) if f <= 0.9):.3f}")


if __name__ == "__main__":
    main()
