#!/usr/bin/env python3
"""The §5 traffic study: who actually generates IPFS traffic?

Runs a traffic campaign, then walks through the paper's Figs. 9-13:
identifier lifetimes, Pareto concentration, cloud shares by count vs
volume, and platform attribution through reverse DNS.

Run: python examples/traffic_study.py [online_servers] [days]
"""

import sys

from repro import ScenarioConfig, run_campaign
from repro.scenario import report
from repro.viz import bar_chart, line_chart
from repro.world.profiles import WorldProfile


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 700
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    config = ScenarioConfig(
        profile=WorldProfile(online_servers=servers),
        days=days,
        daily_cid_sample=150,
        provider_fetch_days=min(days, 3),
    )
    print(f"running a {days}-day traffic campaign at {servers} online servers...")
    result = run_campaign(config)

    sec5 = report.sec5_report(result)
    print(f"\ncaptured {sec5['total_messages']:.0f} DHT messages at the Hydra monitor")
    print(
        bar_chart(
            {
                "download": sec5["download_share"],
                "advertisement": sec5["advertisement_share"],
                "other": sec5["other_share"],
            },
            "message classes (§5):",
        )
    )

    print("\n-- Fig. 9: identifier lifetimes --")
    fig9 = report.fig9_report(result)
    for kind, histogram in (("CIDs", fig9["cid_days"]), ("IPs", fig9["ip_days"])):
        total = sum(histogram.values())
        shares = {f"{d} day(s)": n / total for d, n in sorted(histogram.items())}
        print()
        print(bar_chart(shares, f"{kind} by days seen:", limit=8))

    print("\n-- Figs. 10-11: concentration --")
    fig10 = report.fig10_report(result)
    fig11 = report.fig11_report(result)
    print(
        line_chart(
            fig10["dht_curve"][:50],
            "DHT peer-ID Pareto curve (top fraction of peers → traffic share):",
            x_label="top fraction of peer IDs",
            y_label="traffic share",
        )
    )
    print(
        f"\ntop 5% of peer IDs generate {fig10['dht_top5pct_share']:.0%} of DHT traffic "
        f"(paper: 97%)\n"
        f"cloud IPs generate {fig11['dht_cloud_share']:.0%} of DHT traffic "
        f"but only {fig11['bitswap_cloud_share']:.0%} of Bitswap traffic "
        f"(paper: 85% / 42%)"
    )

    print("\n-- Fig. 12: count vs volume --")
    fig12 = report.fig12_report(result)
    print(
        bar_chart(
            {
                "cloud share of IPs": fig12["overall_cloud_by_ip_count"],
                "cloud share of volume": fig12["overall_cloud_by_volume"],
                "AWS share of download volume": fig12["aws_download_by_volume"],
            },
            "the cloud by two measures:",
        )
    )

    print("\n-- Fig. 13: who is behind the traffic (reverse DNS) --")
    fig13 = report.fig13_report(result)
    print()
    print(bar_chart(fig13["dht_download"], "download traffic by platform:", limit=6))
    print()
    print(bar_chart(fig13["dht_advertisement"], "advertisement traffic by platform:", limit=6))
    print(
        "\nthe Hydra fleet amplifies downloads; web3.storage/nft.storage "
        "re-advertise their pinned sets daily."
    )


if __name__ == "__main__":
    main()
