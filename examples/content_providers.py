#!/usr/bin/env python3
"""The §6 content-provider study: who hosts IPFS content?

Collects exhaustive provider records for sampled CIDs (the paper's
modified FindProviders), classifies providers (NAT-ed / cloud /
non-cloud / hybrid), analyses the relays NAT-ed providers depend on, and
measures per-CID cloud reliance — Figs. 14-16.

Run: python examples/content_providers.py [online_servers] [days]
"""

import sys

from repro import ScenarioConfig, run_campaign
from repro.core.providers_analysis import classify_addrs, ProviderClass
from repro.scenario import report
from repro.viz import bar_chart, comparison_table
from repro.world.profiles import PAPER, WorldProfile


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 700
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    config = ScenarioConfig(
        profile=WorldProfile(online_servers=servers),
        days=days,
        daily_cid_sample=250,
        provider_fetch_days=min(days, 3),
    )
    print(f"running a {days}-day campaign at {servers} online servers...")
    result = run_campaign(config)
    observations = result.provider_observations
    resolved = [o for o in observations if o.reachable]
    print(
        f"\nfetched provider records for {len(observations)} sampled CIDs "
        f"({len(resolved)} with reachable providers); "
        f"{sum(o.walk_messages for o in observations)} walk messages"
    )

    print("\n-- Fig. 14: provider classification --")
    fig14 = report.fig14_report(result)
    print(bar_chart(fig14["class_shares"], "unique providers by class:"))
    print()
    print(bar_chart(fig14["relay_provider_shares"], "relays used by NAT-ed providers:", limit=6))
    print(
        comparison_table(
            [
                ("NAT-ed share", fig14["class_shares"].get("nat-ed", 0), PAPER.provider_nat_share),
                ("cloud share", fig14["class_shares"].get("cloud", 0), PAPER.provider_cloud_share),
                ("relay cloud share", fig14["relay_cloud_share"], PAPER.nat_relay_cloud_share),
            ],
            "\nversus the paper:",
        )
    )

    print("\n-- Fig. 15: provider popularity --")
    fig15 = report.fig15_report(result)
    print(
        f"top 1% of providers appear in {fig15['top1pct_record_share']:.0%} of record "
        f"appearances (paper: ~90% at 5.6M-CID scale)"
    )
    print(bar_chart(fig15["record_shares_by_class"], "record appearances by class:"))

    print("\n-- Fig. 16: per-CID cloud reliance --")
    fig16 = report.fig16_report(result)
    print(
        comparison_table(
            [
                (">=1 cloud provider", fig16["at_least_one_cloud"], PAPER.cid_at_least_one_cloud),
                (">=half cloud", fig16["majority_cloud"], PAPER.cid_majority_cloud),
                ("cloud-only", fig16["cloud_only"], PAPER.cid_cloud_only),
            ],
            "cloud reliance of sampled CIDs:",
        )
    )

    # Bonus: a concrete look at one NAT-ed provider's records.
    cloud_db = result.world.cloud_db
    for observation in resolved:
        nat_records = [
            record
            for record in observation.reachable
            if classify_addrs([record], cloud_db) is ProviderClass.NAT_ED
        ]
        if nat_records:
            record = nat_records[0]
            print("\nexample NAT-ed provider record (relay IP is what observers see):")
            print(f"  CID      {observation.cid}")
            print(f"  provider {record.provider}")
            print(f"  address  {record.addrs[0]}")
            break


if __name__ == "__main__":
    main()
