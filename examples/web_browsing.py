#!/usr/bin/env python3
"""Figure 1, end to end: browsing DNSLink websites over IPFS.

Builds a small overlay with gateways, registers DNSLink websites (one
immutable ``/ipfs/`` site, one mutable ``/ipns/`` site), and then plays
the browser's role: DNS TXT lookup, A/ALIAS following, gateway HTTP
fetch, IPFS retrieval — including an IPNS update flipping the site to a
new version without the domain changing.

Run: python examples/web_browsing.py
"""

import random

from repro.dns.records import ResourceRecord, RRType, ZoneRegistry, make_dnslink_txt
from repro.dns.resolver import Resolver
from repro.gateway import GatewayService, WebClient, default_operators, install_gateway_specs
from repro.ids.cid import CID
from repro.ipns.resolver import IPNSResolver
from repro.netsim.network import Overlay
from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile


def main() -> None:
    print("bootstrapping a 300-server overlay with the gateway fleet...")
    world = build_world(WorldProfile(online_servers=300, seed=2024))
    install_gateway_specs(world)
    overlay = Overlay(world)
    overlay.bootstrap()

    operators = {op.name: op for op in default_operators()}
    backends = [
        node
        for node in overlay.nodes
        if node.spec.platform == "cloudflare" and node.spec.node_class is NodeClass.GATEWAY
    ]
    gateway = GatewayService(operators["cloudflare"], backends, overlay)

    registry = ZoneRegistry()
    gateway_zone = registry.create_zone("cloudflare-ipfs.com")
    gateway_zone.add(ResourceRecord("cloudflare-ipfs.com", RRType.A, "104.16.0.1"))

    publisher = next(n for n in overlay.online_servers() if n.reachable)
    v1 = CID.for_data(b"<html><h1>my dweb site, v1</h1></html>")
    overlay.publish_provider_record(publisher, v1)

    print("registering blog.example (ALIAS -> cloudflare-ipfs.com, dnslink=/ipfs/...)")
    blog = registry.create_zone("blog.example")
    blog.add(make_dnslink_txt("blog.example", v1.to_base32(), "ipfs"))
    blog.add(ResourceRecord("blog.example", RRType.ALIAS, "cloudflare-ipfs.com."))

    ipns = IPNSResolver(overlay, random.Random(7))
    keypair = ipns.generate_keypair()
    ipns.publish(keypair, v1)
    print(f"registering app.example (dnslink=/ipns/{str(keypair.name)[:16]}…)")
    app = registry.create_zone("app.example")
    app.add(make_dnslink_txt("app.example", keypair.name.to_string(), "ipns"))
    app.add(ResourceRecord("app.example", RRType.A, "104.16.0.1"))

    browser = WebClient(
        Resolver(registry),
        services_by_ip={"104.16.0.1": gateway},
        services_by_domain={"cloudflare-ipfs.com": gateway},
        ipns=ipns,
    )

    for domain in ("blog.example", "app.example"):
        result = browser.fetch(domain)
        print(
            f"GET http://{domain}/ -> {result.status} "
            f"[{result.dnslink_kind}] cid={str(result.cid)[:24]}… "
            f"via {result.gateway_domain} ({result.detail})"
        )

    print("\npublishing v2 under the same IPNS name...")
    v2 = CID.for_data(b"<html><h1>my dweb site, v2</h1></html>")
    overlay.publish_provider_record(publisher, v2)
    ipns.publish(keypair, v2)
    result = browser.fetch("app.example")
    assert result.cid == v2
    print(
        f"GET http://app.example/ -> {result.status}, now serving "
        f"cid={str(result.cid)[:24]}… — the domain never changed."
    )
    print(
        "\nnote the immutable /ipfs/ site would need a DNS update for v2 — "
        "exactly the §2 pain point DNSLink+IPNS exists to solve."
    )


if __name__ == "__main__":
    main()
