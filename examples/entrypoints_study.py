#!/usr/bin/env python3
"""The §7 entry-point study: gateways, DNSLink and ENS.

Walks the web-facing side of IPFS: probes the public gateway list with
crafted content to enumerate overlay IDs, scans the synthetic DNS
namespace for DNSLink adopters, and scrapes ENS resolver event logs for
ipfs-ns contenthashes — Figs. 17-20.

Run: python examples/entrypoints_study.py [online_servers]
"""

import sys

from repro import ScenarioConfig, run_campaign
from repro.scenario import report
from repro.viz import bar_chart, comparison_table
from repro.world.profiles import PAPER, WorldProfile


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    config = ScenarioConfig(
        profile=WorldProfile(online_servers=servers),
        days=3,
        daily_cid_sample=120,
        provider_fetch_days=2,
    )
    print(f"running a 3-day campaign at {servers} online servers...")
    result = run_campaign(config)

    print("\n-- §3: gateway identification by crafted-content probing --")
    f18 = report.fig18_19_report(result)
    print(
        f"probed {f18['num_listed_endpoints']} listed endpoints: "
        f"{f18['num_functional_endpoints']} functional "
        f"(paper: {PAPER.gateway_endpoints_functional}/{PAPER.gateway_endpoints_listed}), "
        f"{f18['num_overlay_ids']} overlay IDs discovered "
        f"(paper: {PAPER.gateway_overlay_ids})"
    )
    print()
    print(bar_chart(f18["frontend_provider_shares"], "gateway HTTP frontends by provider:", limit=6))
    print()
    print(bar_chart(f18["overlay_provider_shares"], "gateway overlay nodes by provider:", limit=6))
    print()
    print(bar_chart(f18["overlay_country_shares"], "gateway overlay nodes by country:", limit=6))

    print("\n-- Fig. 17: DNSLink --")
    f17 = report.fig17_report(result)
    print(
        f"scanned {result.dns_scan.input_names} names → "
        f"{result.dns_scan.registered_domains} registered domains → "
        f"{f17['num_records']} valid DNSLink records ({f17['num_unique_ips']} unique IPs)"
    )
    print()
    print(bar_chart(f17["provider_shares"], "DNSLink-serving IPs by provider:", limit=6))
    print(
        comparison_table(
            [
                ("Cloudflare share", f17["cloudflare_share"], PAPER.dnslink_cloudflare_share),
                ("non-cloud share", f17["noncloud_share"], PAPER.dnslink_noncloud_share),
                ("public-gateway IP overlap", f17["public_gateway_ip_share"],
                 PAPER.dnslink_public_gateway_ip_share),
            ],
            "\nversus the paper:",
        )
    )

    print("\n-- Fig. 20: ENS-referenced content --")
    f20 = report.fig20_report(result)
    print(
        f"scraped {result.ens_scrape.events_scanned} resolver events → "
        f"{len(result.ens_scrape.records)} ipfs-ns records → "
        f"{f20['num_provider_records']} provider records ({f20['num_unique_ips']} unique IPs)"
    )
    print()
    print(bar_chart(dict(f20["top_providers"]), "ENS content providers (unique IPs):"))
    print()
    print(bar_chart(dict(f20["top_countries"]), "ENS content countries (unique IPs):"))
    print(
        comparison_table(
            [
                ("cloud share", f20["cloud_share"], PAPER.ens_cloud_share),
                ("US+DE share", f20["us_de_share"], PAPER.ens_us_de_share),
            ],
            "\nversus the paper:",
        )
    )
    print(
        "\neven blockchain-named content resolves to a handful of cloud "
        "providers — the name layer is decentralized, the storage is not."
    )


if __name__ == "__main__":
    main()
