#!/usr/bin/env python3
"""The paper's §9 what-ifs, made runnable.

Three futures the discussion section sketches:

1. **Network indexers** — centralized resolution is faster, but a
   censoring operator controls availability unless the DHT stays as a
   fallback.
2. **IPv6 adoption** — removing IPv4 NAT lets the user fringe join the
   DHT as servers and dilutes the cloud share of the network core.
3. **Random default gateways** — replacing the browser's fixed
   cloud-based default with a random functional gateway decentralizes
   the gateway traffic without hurting simplicity.

Run: python examples/future_scenarios.py
"""

import random

from repro.gateway.registry import PublicGatewayRegistry
from repro.gateway.selection import GatewaySelector, SelectionPolicy
from repro.ids.cid import CID
from repro.indexer.resolution import (
    CombinedResolver,
    ResolutionStrategy,
    availability,
    mean_latency,
)
from repro.indexer.service import IndexerService
from repro.netsim.network import Overlay
from repro.viz import bar_chart
from repro.world.population import build_world
from repro.world.profiles import WorldProfile


def indexer_future() -> None:
    print("== 1. network indexers vs the DHT ==")
    world = build_world(WorldProfile(online_servers=400, seed=99))
    overlay = Overlay(world)
    overlay.bootstrap()
    rng = random.Random(100)
    publishers = [n for n in overlay.online_servers() if n.reachable][:30]
    cids = []
    for index in range(30):
        cid = CID.generate(rng)
        overlay.publish_provider_record(publishers[index % len(publishers)], cid)
        cids.append(cid)

    indexer = IndexerService(overlay, coverage=0.97)
    resolver = CombinedResolver(overlay, indexer, random.Random(101))
    dht = resolver.batch(cids, ResolutionStrategy.DHT_ONLY)
    fast = resolver.batch(cids, ResolutionStrategy.INDEXER_ONLY)
    print(
        f"latency: indexer {mean_latency(fast)*1000:.0f} ms vs "
        f"DHT walk {mean_latency(dht)*1000:.0f} ms "
        f"({mean_latency(dht)/mean_latency(fast):.0f}x slower)"
    )

    # Now the operator starts censoring a third of the content.
    for cid in cids[:10]:
        indexer.block(cid)
    censored = resolver.batch(cids, ResolutionStrategy.INDEXER_ONLY)
    rescued = resolver.batch(cids, ResolutionStrategy.INDEXER_WITH_DHT_FALLBACK)
    print(
        f"under censorship of 10/30 CIDs: indexer-only availability "
        f"{availability(censored):.0%}; with DHT fallback {availability(rescued):.0%}"
    )
    print("→ keep the DHT as a fallback resolution mechanism (§9).\n")


def ipv6_future() -> None:
    print("== 2. IPv6 adoption removes the NAT barrier ==")
    shares = {}
    for adoption in (0.0, 0.5, 1.0):
        world = build_world(WorldProfile(online_servers=400, seed=7, ipv6_adoption=adoption))
        online = sum(s.behavior.uptime for s in world.server_specs)
        cloud = sum(s.behavior.uptime for s in world.server_specs if s.is_cloud_hosted)
        shares[f"IPv6 adoption {adoption:.0%}"] = cloud / online
        print(
            f"adoption {adoption:4.0%}: {len(world.nat_specs):5d} NAT clients left, "
            f"{online:6.0f} expected online servers, cloud share {cloud / online:.0%}"
        )
    print()
    print(bar_chart(shares, "cloud share of the DHT server set:"))
    print("→ the NAT-ed fringe joining the DHT dilutes the cloud core (§9).\n")


def gateway_future() -> None:
    print("== 3. randomizing the default gateway ==")
    selector = GatewaySelector(PublicGatewayRegistry(), rng=random.Random(8))
    fixed = selector.concentration(SelectionPolicy.FIXED_DEFAULT)
    spread = selector.concentration(SelectionPolicy.RANDOM_FUNCTIONAL)
    print(
        f"fixed default:  busiest gateway {fixed['busiest_gateway_share']:.0%} of requests, "
        f"cloud share {fixed['cloud_share']:.0%}, Gini {fixed['gini']:.2f}"
    )
    print(
        f"random choice:  busiest gateway {spread['busiest_gateway_share']:.0%} of requests, "
        f"cloud share {spread['cloud_share']:.0%}, Gini {spread['gini']:.2f}"
    )
    print("→ a permissionless random default keeps simplicity, drops the single point (§9).")


if __name__ == "__main__":
    indexer_future()
    ipv6_future()
    gateway_future()
