#!/usr/bin/env python3
"""The paper's §3 contribution: why counting methodology matters.

Runs a crawl-only campaign with the paper's temporal design (38 simulated
days, 101 crawls) and contrasts the G-IP, G-N and A-N methodologies on
the same dataset — reproducing the mechanism behind Figs. 3, 4 and 6 and
the disagreement with Trautwein et al. (SIGCOMM '22).

Run: python examples/counting_methodologies.py [online_servers]
"""

import sys

from repro import ScenarioConfig, run_campaign
from repro.core import cloud as cloud_analysis
from repro.core import geo as geo_analysis
from repro.core.counting import CountingMethod
from repro.scenario import report
from repro.viz import bar_chart, line_chart


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    print(f"running the 38-day / 101-crawl campaign at {servers} online servers...")
    result = run_campaign(ScenarioConfig.paper_horizon(servers))
    rows = result.crawl_rows
    cloud_db = result.world.cloud_db
    geo_db = result.world.geo_db

    print("\n-- the same dataset, three counting methodologies --")
    for method in (CountingMethod.G_IP, CountingMethod.G_N, CountingMethod.A_N):
        shares = cloud_analysis.cloud_status_shares(rows, cloud_db, method)
        print()
        print(bar_chart(shares, f"cloud status under {method.value}:"))

    print("\n-- Fig. 4: the ratio as a function of aggregated crawls --")
    fig4 = report.fig4_report(result)
    print(
        line_chart(
            [(float(k), ratio) for k, ratio in fig4["G-IP"]],
            "G-IP cloud:non-cloud ratio (decays with every crawl added):",
            x_label="crawls aggregated",
            y_label="ratio",
        )
    )
    print()
    print(
        line_chart(
            [(float(k), ratio) for k, ratio in fig4["A-N"]],
            "A-N cloud:non-cloud ratio (flat — a typical-snapshot estimator):",
            x_label="crawls aggregated",
            y_label="ratio",
        )
    )

    print("\n-- Fig. 6: the geography shifts with the methodology --")
    an = geo_analysis.country_shares(rows, geo_db, CountingMethod.A_N)
    gip = geo_analysis.country_shares(rows, geo_db, CountingMethod.G_IP)
    print()
    print(bar_chart(an, "countries (A-N):", limit=8))
    print()
    print(bar_chart(gip, "countries (G-IP — churny countries inflate):", limit=8))

    cn_shift = gip.get("CN", 0.0) / max(an.get("CN", 1e-9), 1e-9)
    print(
        f"\nCN's apparent share is {cn_shift:.1f}x larger under G-IP: "
        "short-lived, IP-rotating peers are counted again and again."
    )


if __name__ == "__main__":
    main()
