#!/usr/bin/env python3
"""Publish-your-data workflow: export a campaign, re-analyse the files.

The paper publishes its processing code and datasets; this example runs
a small campaign, exports every dataset (crawl CSV/JSONL, Hydra log,
Bitswap log, provider observations), then reloads the files and shows
that the downstream analyses produce identical results — the round trip
a reproducing researcher would rely on.

Run: python examples/dataset_export.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import ScenarioConfig, run_campaign
from repro.core import datasets
from repro.core.cloud import cloud_status_shares
from repro.core.counting import CountingMethod
from repro.core.traffic import traffic_class_shares
from repro.core.providers_analysis import classify_providers


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp()) / "ipfs-data"
    print("running a smoke campaign...")
    result = run_campaign(ScenarioConfig.smoke())

    print(f"exporting datasets to {out_dir} ...")
    counts = datasets.export_campaign(result, out_dir)
    for artifact, count in counts.items():
        path = {
            "crawl_rows": "crawls.csv",
            "crawl_snapshots": "crawls.jsonl",
            "hydra_messages": "hydra.jsonl",
            "bitswap_messages": "bitswap.jsonl",
            "provider_observations": "providers.jsonl",
        }[artifact]
        size_kib = (out_dir / path).stat().st_size / 1024
        print(f"  {path:<16} {count:>8} records  {size_kib:8.0f} KiB")

    print("\nreloading and re-analysing from the files alone...")
    rows = datasets.read_crawl_rows(out_dir / "crawls.csv")
    reloaded_shares = cloud_status_shares(rows, result.world.cloud_db, CountingMethod.A_N)
    original_shares = cloud_status_shares(
        result.crawl_rows, result.world.cloud_db, CountingMethod.A_N
    )
    assert {k: round(v, 9) for k, v in reloaded_shares.items()} == {
        k: round(v, 9) for k, v in original_shares.items()
    }
    print(f"  A-N cloud status from CSV: {reloaded_shares} ✓ identical")

    hydra_log = datasets.read_hydra_jsonl(out_dir / "hydra.jsonl")
    assert traffic_class_shares(hydra_log) == traffic_class_shares(result.hydra.log)
    print(f"  traffic split from JSONL: {len(hydra_log)} messages ✓ identical")

    observations = datasets.read_provider_observations_jsonl(out_dir / "providers.jsonl")
    reloaded_classes = classify_providers(observations, result.world.cloud_db)
    original_classes = classify_providers(result.provider_observations, result.world.cloud_db)
    assert reloaded_classes.class_shares == original_classes.class_shares
    print(
        f"  provider classification from JSONL: "
        f"{reloaded_classes.total_providers} providers ✓ identical"
    )
    print("\nround trip complete — the published files fully determine the analyses.")


if __name__ == "__main__":
    main()
