"""IPNS — the InterPlanetary Name System.

IPNS maps a key-pair-derived name to a (mutable) CID via signed,
sequence-numbered records stored on the DHT.  The paper skips measuring
IPNS because resolution "is internal for IPFS and is equivalent to
regular CID fetching" (§7 footnote), but the substrate needs it:
DNSLink records of the form ``dnslink=/ipns/<hash>`` (§2) resolve
through exactly this mechanism.

* :mod:`repro.ipns.records` — signed name records with sequence numbers,
* :mod:`repro.ipns.resolver` — publish/resolve over the overlay's
  resolver set, with the freshest-record rule.
"""

from repro.ipns.records import IPNSName, IPNSRecord
from repro.ipns.resolver import IPNSResolver

__all__ = ["IPNSName", "IPNSRecord", "IPNSResolver"]
