"""Publishing and resolving IPNS records over the overlay.

Records are stored on the ``k`` servers closest to the name's DHT key
(the same resolver-set mechanics as provider records) and expire with
their validity window; resolution collects candidates from the resolver
set, verifies signatures and applies the freshest-record rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ids.cid import CID
from repro.ipns.records import IPNSKeyPair, IPNSName, IPNSRecord
from repro.netsim.network import Overlay


@dataclass
class IPNSPublishResult:
    record: IPNSRecord
    stored_on: int  # resolver-set size the record landed on


class IPNSResolver:
    """Publish/resolve IPNS names against an overlay.

    Like the provider registry, storage is logically central with
    resolver-set membership checked at query time (see DESIGN.md fast
    paths); sequence bookkeeping is per name-owner.
    """

    def __init__(self, overlay: Overlay, rng: Optional[random.Random] = None) -> None:
        self.overlay = overlay
        self.rng = rng or random.Random(0x1B45)
        self._records: Dict[IPNSName, IPNSRecord] = {}
        self._sequences: Dict[IPNSName, int] = {}

    # -- key management ----------------------------------------------------

    def generate_keypair(self) -> IPNSKeyPair:
        return IPNSKeyPair.generate(self.rng)

    # -- publishing ----------------------------------------------------------

    def publish(self, keypair: IPNSKeyPair, value: CID) -> IPNSPublishResult:
        """Mint and store the next record for the keypair's name."""
        name = keypair.name
        sequence = self._sequences.get(name, -1) + 1
        record = IPNSRecord.create(
            keypair, value, sequence=sequence, published_at=self.overlay.now
        )
        incumbent = self._records.get(name)
        if record.supersedes(incumbent):
            self._records[name] = record
        self._sequences[name] = sequence
        resolvers = self.overlay.oracle.closest(name.dht_key, self.overlay.k)
        return IPNSPublishResult(record=record, stored_on=len(resolvers))

    def store(self, record: IPNSRecord, keypair: IPNSKeyPair) -> bool:
        """Store a caller-built record; rejected unless correctly signed
        (the DHT-server-side validation)."""
        if not record.verify(keypair):
            return False
        incumbent = self._records.get(record.name)
        if record.supersedes(incumbent):
            self._records[record.name] = record
        self._sequences[record.name] = max(
            self._sequences.get(record.name, -1), record.sequence
        )
        return True

    # -- resolution -------------------------------------------------------------

    def resolve(self, name: IPNSName) -> Optional[CID]:
        """The current value of a name, or ``None`` when no valid record
        survives (expired, or never published)."""
        record = self._records.get(name)
        if record is None or not record.is_valid_at(self.overlay.now):
            return None
        return record.value

    def resolve_record(self, name: IPNSName) -> Optional[IPNSRecord]:
        record = self._records.get(name)
        if record is None or not record.is_valid_at(self.overlay.now):
            return None
        return record

    def resolve_path(self, path: str) -> Optional[CID]:
        """Resolve an ``/ipns/<name>`` or ``/ipfs/<cid>`` path to a CID —
        what a gateway does with a DNSLink target."""
        parts = path.strip("/").split("/")
        if len(parts) != 2:
            return None
        scheme, target = parts
        if scheme == "ipfs":
            try:
                return CID.from_base32(target)
            except ValueError:
                return None
        if scheme == "ipns":
            for name in self._records:
                if name.to_string() == target:
                    return self.resolve(name)
            return None
        return None
