"""IPNS names and signed records.

An IPNS name is the hash of a public key; the owner of the matching
private key publishes records mapping the name to a value (``/ipfs/<CID>``
paths in practice).  Records carry a monotonically increasing sequence
number and a validity window; resolvers accept only correctly signed
records and prefer the highest sequence number.

The key pair is modelled as an HMAC-style construction over a random
secret — the properties the resolution pipeline relies on (only the key
holder can mint valid records; validation is public) are preserved
without real asymmetric cryptography.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from functools import total_ordering
from typing import Optional

from repro.ids.cid import CID
from repro.ids.encoding import base32_encode
from repro.ids.keys import Key, key_from_bytes


@dataclass(frozen=True)
class IPNSKeyPair:
    """A name-owning key pair (secret modelled as random bytes)."""

    secret: bytes

    @classmethod
    def generate(cls, rng) -> "IPNSKeyPair":
        return cls(rng.getrandbits(256).to_bytes(32, "big"))

    @property
    def public_key(self) -> bytes:
        return hashlib.sha256(b"pub" + self.secret).digest()

    @property
    def name(self) -> "IPNSName":
        return IPNSName(hashlib.sha256(self.public_key).digest())

    def sign(self, payload: bytes) -> bytes:
        return hmac.new(self.secret, payload, hashlib.sha256).digest()


@total_ordering
@dataclass(frozen=True)
class IPNSName:
    """The hash of a public key — what ``/ipns/<hash>`` addresses."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("IPNS name digest must be 32 bytes")

    @property
    def dht_key(self) -> Key:
        """Where the name's records live in the Kademlia keyspace."""
        return key_from_bytes(b"/ipns/" + self.digest)

    def to_string(self) -> str:
        """The conventional ``k51…``-style rendering (base32 here)."""
        return "k51" + base32_encode(self.digest)

    def __str__(self) -> str:
        return self.to_string()

    def __lt__(self, other) -> bool:
        if not isinstance(other, IPNSName):
            return NotImplemented
        return self.digest < other.digest

    def __hash__(self) -> int:
        return hash(self.digest)


@dataclass(frozen=True)
class IPNSRecord:
    """One signed name → value mapping."""

    name: IPNSName
    value: CID
    sequence: int
    published_at: float
    validity_seconds: float
    signature: bytes

    @staticmethod
    def _payload(name: IPNSName, value: CID, sequence: int, published_at: float,
                 validity_seconds: float) -> bytes:
        return b"|".join(
            (
                name.digest,
                value.digest,
                str(sequence).encode(),
                repr(published_at).encode(),
                repr(validity_seconds).encode(),
            )
        )

    @classmethod
    def create(
        cls,
        keypair: IPNSKeyPair,
        value: CID,
        sequence: int,
        published_at: float,
        validity_seconds: float = 48 * 3600.0,
    ) -> "IPNSRecord":
        if sequence < 0:
            raise ValueError("sequence numbers are non-negative")
        payload = cls._payload(keypair.name, value, sequence, published_at, validity_seconds)
        return cls(
            name=keypair.name,
            value=value,
            sequence=sequence,
            published_at=published_at,
            validity_seconds=validity_seconds,
            signature=keypair.sign(payload),
        )

    def verify(self, keypair: IPNSKeyPair) -> bool:
        """Whether the record was signed by the name's key holder."""
        if keypair.name != self.name:
            return False
        payload = self._payload(
            self.name, self.value, self.sequence, self.published_at, self.validity_seconds
        )
        return hmac.compare_digest(self.signature, keypair.sign(payload))

    def is_valid_at(self, now: float) -> bool:
        return now - self.published_at < self.validity_seconds

    def supersedes(self, other: Optional["IPNSRecord"]) -> bool:
        """The IPNS freshest-record rule: higher sequence wins; on a tie,
        the later publication."""
        if other is None:
            return True
        if self.sequence != other.sequence:
            return self.sequence > other.sequence
        return self.published_at > other.published_at
