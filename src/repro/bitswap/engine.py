"""The Bitswap engine: block store, wantlists, 1-hop discovery, transfer.

The engine is deliberately connection-graph-explicit: it is used at
micro-scale (examples, unit tests, the gateway retrieval path), while the
campaign-scale traffic capture uses the statistical connectivity model in
:mod:`repro.monitors.bitswap_monitor` (see DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.bitswap.messages import (
    BitswapMessage,
    BlockPresence,
    Ledger,
    WantType,
    WantlistEntry,
)
from repro.ids.cid import CID
from repro.ids.peerid import PeerID


class BlockStore:
    """Local block storage (the node's repo)."""

    def __init__(self) -> None:
        self._blocks: Dict[CID, bytes] = {}

    def put(self, data: bytes) -> CID:
        cid = CID.for_data(data)
        self._blocks[cid] = data
        return cid

    def put_cid(self, cid: CID, data: bytes) -> None:
        """Store a block under a caller-supplied CID (trusted transfer)."""
        self._blocks[cid] = data

    def get(self, cid: CID) -> Optional[bytes]:
        return self._blocks.get(cid)

    def has(self, cid: CID) -> bool:
        return cid in self._blocks

    def cids(self) -> List[CID]:
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)


class BitswapEngine:
    """One node's Bitswap state machine.

    Engines are wired to each other directly (``connect``); message
    delivery is synchronous, which matches the request/response use the
    reproduction makes of it.
    """

    def __init__(self, peer: PeerID, store: Optional[BlockStore] = None) -> None:
        self.peer = peer
        self.store = store or BlockStore()
        self.neighbors: Dict[PeerID, "BitswapEngine"] = {}
        self.ledgers: Dict[PeerID, Ledger] = {}
        self.wantlist: Set[CID] = set()
        #: observers called with every incoming message (monitor hook).
        self.taps: List[Callable[[BitswapMessage], None]] = []

    # -- connectivity -------------------------------------------------------

    def connect(self, other: "BitswapEngine") -> None:
        """Create a bidirectional Bitswap connection."""
        if other.peer == self.peer:
            raise ValueError("cannot connect an engine to itself")
        self.neighbors[other.peer] = other
        other.neighbors[self.peer] = self

    def disconnect(self, other: "BitswapEngine") -> None:
        self.neighbors.pop(other.peer, None)
        other.neighbors.pop(self.peer, None)

    def _ledger(self, partner: PeerID) -> Ledger:
        if partner not in self.ledgers:
            self.ledgers[partner] = Ledger(partner)
        return self.ledgers[partner]

    # -- receiving ----------------------------------------------------------

    def receive(self, message: BitswapMessage) -> BitswapMessage:
        """Handle an incoming message and produce the response."""
        for tap in self.taps:
            tap(message)
        presences: List[BlockPresence] = []
        blocks: List = []
        ledger = self._ledger(message.sender)
        for entry in message.wantlist:
            if entry.cancel:
                continue
            data = self.store.get(entry.cid)
            if data is None:
                if entry.send_dont_have:
                    presences.append(BlockPresence(entry.cid, have=False))
                continue
            if entry.want_type is WantType.BLOCK:
                blocks.append((entry.cid, data))
                ledger.bytes_sent += len(data)
                ledger.blocks_sent += 1
            else:
                presences.append(BlockPresence(entry.cid, have=True))
        for cid, data in message.blocks:
            self.store.put_cid(cid, data)
            ledger.bytes_received += len(data)
            ledger.blocks_received += 1
        return BitswapMessage(
            sender=self.peer, presences=tuple(presences), blocks=tuple(blocks)
        )

    # -- requesting ----------------------------------------------------------

    def broadcast_want_have(self, cid: CID) -> List[PeerID]:
        """The 1-hop discovery broadcast: ask every neighbour for ``cid``.

        Returns the neighbours that have the block.  This is exactly the
        traffic the Bitswap monitor captures (paper §3): broadcasts reach
        it whenever the requester happens to be connected to it.
        """
        self.wantlist.add(cid)
        message = BitswapMessage(
            sender=self.peer,
            wantlist=(WantlistEntry(cid, WantType.HAVE, send_dont_have=True),),
        )
        holders = []
        for neighbor in list(self.neighbors.values()):
            response = neighbor.receive(message)
            for presence in response.presences:
                if presence.cid == cid and presence.have:
                    holders.append(neighbor.peer)
        return holders

    def fetch_block(self, cid: CID, from_peer: Optional[PeerID] = None) -> Optional[bytes]:
        """Retrieve a block: locally, else from ``from_peer``, else from
        whichever neighbour answers the broadcast."""
        local = self.store.get(cid)
        if local is not None:
            return local
        candidates: Iterable[PeerID]
        if from_peer is not None:
            candidates = [from_peer]
        else:
            candidates = self.broadcast_want_have(cid)
        message = BitswapMessage(
            sender=self.peer, wantlist=(WantlistEntry(cid, WantType.BLOCK),)
        )
        for peer in candidates:
            neighbor = self.neighbors.get(peer)
            if neighbor is None:
                continue
            response = neighbor.receive(message)
            for got_cid, data in response.blocks:
                if got_cid == cid:
                    self.store.put_cid(cid, data)
                    ledger = self._ledger(peer)
                    ledger.bytes_received += len(data)
                    ledger.blocks_received += 1
                    self.wantlist.discard(cid)
                    return data
        return None
