"""Bitswap — the IPFS block-exchange protocol.

Bitswap is a simple protocol used to exchange blocks of data; IPFS nodes
maintain Bitswap connections to a few hundred random peers, and content
discovery starts with a local 1-hop broadcast to all connected neighbours
(paper §2).  This subpackage implements the protocol mechanics used by the
examples, the gateway retrieval path and the Bitswap monitor.
"""

from repro.bitswap.messages import BitswapMessage, WantlistEntry, WantType
from repro.bitswap.engine import BitswapEngine, BlockStore

__all__ = ["BitswapEngine", "BitswapMessage", "BlockStore", "WantType", "WantlistEntry"]
