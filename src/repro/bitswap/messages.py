"""Bitswap wire messages (modelled on the Bitswap 1.2 protobuf)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.ids.cid import CID
from repro.ids.peerid import PeerID


class WantType(enum.Enum):
    """What the requester wants for a CID."""

    HAVE = "want-have"    # "do you have this block?"
    BLOCK = "want-block"  # "send me this block"


@dataclass(frozen=True)
class WantlistEntry:
    """One entry of a Bitswap wantlist."""

    cid: CID
    want_type: WantType = WantType.HAVE
    priority: int = 1
    cancel: bool = False
    send_dont_have: bool = False


@dataclass(frozen=True)
class BlockPresence:
    """HAVE / DONT_HAVE response for a queried CID."""

    cid: CID
    have: bool


@dataclass(frozen=True)
class BitswapMessage:
    """A Bitswap message: wantlist updates, blocks, and presences.

    The Bitswap monitor (paper §3) logs the *incoming* wantlist broadcasts;
    the requested CIDs in those wantlists are the basis of the daily
    sampled-CIDs dataset.
    """

    sender: PeerID
    wantlist: Tuple[WantlistEntry, ...] = ()
    blocks: Tuple[Tuple[CID, bytes], ...] = ()
    presences: Tuple[BlockPresence, ...] = ()
    full_wantlist: bool = False

    @property
    def requested_cids(self) -> Tuple[CID, ...]:
        return tuple(entry.cid for entry in self.wantlist if not entry.cancel)


@dataclass
class Ledger:
    """Per-peer accounting of bytes exchanged (Bitswap's debt ledger)."""

    partner: PeerID
    bytes_sent: int = 0
    bytes_received: int = 0
    blocks_sent: int = 0
    blocks_received: int = 0

    @property
    def debt_ratio(self) -> float:
        """Classic Bitswap debt ratio: sent / (received + 1)."""
        return self.bytes_sent / (self.bytes_received + 1)
