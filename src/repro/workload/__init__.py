"""Workload generation: the traffic engines and their models.

* :mod:`repro.workload.engine` — the calibrated traffic engine
  (closed-loop default plus its SoA-batched twin) driving downloads,
  advertisements and platform re-provides,
* :mod:`repro.workload.spec` — the ``closed`` / ``zipf:...`` spec-string
  front door (:class:`WorkloadSpec`, :func:`parse_workload_spec`,
  :func:`build_workload`),
* :mod:`repro.workload.openloop` — the open-loop session driver
  (ON/OFF sessions, request trains, million-user arrival scaling),
* :mod:`repro.workload.popularity` — Zipf CID popularity per content
  class,
* :mod:`repro.workload.sessions` — heavy-tailed session/train samplers,
* :mod:`repro.workload.diurnal` — the day/night rate curve.

This package is the former ``repro.content.workload`` module grown into
a subsystem; the old import path remains as a deprecation shim.
"""

from repro.workload.diurnal import diurnal_factor
from repro.workload.engine import (
    TrafficEngine,
    VectorizedTrafficEngine,
    WorkloadConfig,
    _poisson,
)
from repro.workload.openloop import OpenLoopDriver, sample_workload
from repro.workload.popularity import ZipfPopularity, rank_by_weight
from repro.workload.sessions import duration_scale, pareto_duration, train_size
from repro.workload.spec import (
    DEFAULT_CLASS_MIX,
    WorkloadSpec,
    build_workload,
    describe_workload,
    parse_workload_spec,
)

__all__ = [
    "DEFAULT_CLASS_MIX",
    "OpenLoopDriver",
    "TrafficEngine",
    "VectorizedTrafficEngine",
    "WorkloadConfig",
    "WorkloadSpec",
    "ZipfPopularity",
    "build_workload",
    "describe_workload",
    "diurnal_factor",
    "duration_scale",
    "pareto_duration",
    "parse_workload_spec",
    "rank_by_weight",
    "sample_workload",
    "train_size",
]
