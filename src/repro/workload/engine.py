"""The calibrated traffic engine.

Generates the network's content activity — downloads, publishes, platform
re-provides, Hydra amplification — and feeds the two capture instruments
(the Hydra-booster DHT log and the Bitswap monitor log) plus the
provider-record registry.

Two request-generation models share the engine:

* **Closed-loop** (the default, and the calibration behind the golden
  figures): every online node draws Poisson request/publish counts per
  tick from its class rate — ``run_tick``'s historical behaviour,
  bit-identical to all previous releases.
* **Open-loop** (:mod:`repro.workload.openloop`, enabled through
  ``ScenarioConfig.workload_spec``): an attached session-based driver
  generates the user request stream — ON/OFF sessions, Zipf CID
  popularity, diurnal rates — and feeds it through
  :meth:`TrafficEngine.open_download` / :meth:`TrafficEngine.publish`,
  while indexer-fleet and join/maintenance traffic stay closed-loop
  (:meth:`TrafficEngine._run_background_tick`); infrastructure load is
  not part of the user workload model.

Capture sampling: a DHT walk touches ~50 of ~25 000 servers, so the
monitoring Hydra sees each message with probability ``heads/servers``
(§3 estimates 4 % total capture).  Rather than routing every walk hop
through the simulator, the engine draws the *captured* messages directly
from that geometry — an importance-sampling shortcut that leaves every
per-message share unchanged (see DESIGN.md).  Exact walks remain in use
for every measurement operation (crawls, provider fetches, probes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.content.catalog import ContentCatalog, ContentItem
from repro.ids.cid import CID
from repro.kademlia.messages import MessageType
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.netsim.network import Overlay
from repro.netsim.node import Node, OrderedCIDSet
from repro.netsim.soa import CLASS_CODE, CLASS_ORDER, np, require_numpy
from repro.world.population import NodeClass


@dataclass
class WorkloadConfig:
    """Rates (per online node per hour) and protocol constants.

    Defaults are calibrated against the paper's §5 traffic shares; the
    ablation benches sweep individual knobs.
    """

    # Content-request rate by node class.  The gateway rate is the *fleet*
    # rate at reference scale (2 500 servers) and is scaled by network
    # size: gateways serve the web-user population, not themselves.
    request_rates: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.90,
            NodeClass.RESIDENTIAL_EPHEMERAL: 1.00,
            NodeClass.RESIDENTIAL_STABLE: 0.55,
            NodeClass.CLOUD_STABLE: 0.22,
            NodeClass.HYBRID: 0.25,
            NodeClass.PLATFORM: 0.10,
            NodeClass.GATEWAY: 1.0,  # per node at reference scale
        }
    )
    #: Fleet-wide request rates (per hour, reference scale) of the
    #: automated resolver platforms — no Bitswap side, almost every
    #: request walks the DHT.
    indexer_rates: Dict[str, float] = field(
        default_factory=lambda: {"aws-mystery": 330.0, "cid-scraper": 260.0}
    )
    #: Per-operator multipliers on the gateway rate; ipfs-bank is the
    #: Bitswap-dominating gateway platform of Fig. 13.
    gateway_rate_multipliers: Dict[str, float] = field(
        default_factory=lambda: {"ipfs-bank": 6.0, "cloudflare": 2.0}
    )
    # Fresh-content publish rate by node class.
    publish_rates: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.100,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.080,
            NodeClass.RESIDENTIAL_STABLE: 0.090,
            NodeClass.CLOUD_STABLE: 0.020,
            NodeClass.HYBRID: 0.050,
            NodeClass.PLATFORM: 0.0,   # platforms re-provide their sets
            NodeClass.GATEWAY: 0.0,    # gateways only re-provide downloads
        }
    )
    #: Probability a downloader becomes a provider for what it fetched
    #: (§2 auto-scaling default; completing the re-provide walk is less
    #: likely for short-lived clients, all but certain for gateways).
    reprovide_probs: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.60,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.50,
            NodeClass.RESIDENTIAL_STABLE: 0.55,
            NodeClass.CLOUD_STABLE: 0.08,
            NodeClass.HYBRID: 0.40,
            NodeClass.PLATFORM: 0.50,
            # Gateways serve from their HTTP cache and rarely re-announce.
            NodeClass.GATEWAY: 0.15,
        }
    )
    #: Probability the 1-hop Bitswap broadcast resolves the request, per
    #: node class.  Gateways keep hundreds of connections and fixed links
    #: to the industrial providers, so they almost never need the DHT (§5).
    bitswap_hit_probs: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.42,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.42,
            NodeClass.RESIDENTIAL_STABLE: 0.40,
            NodeClass.CLOUD_STABLE: 0.45,
            NodeClass.HYBRID: 0.42,
            NodeClass.PLATFORM: 0.70,
            NodeClass.GATEWAY: 0.93,
        }
    )
    #: Extra hit probability for gateways fetching platform-pinned content
    #: (their fixed Bitswap links to pinata/nft.storage etc.).
    gateway_platform_hit_prob: float = 0.985
    #: Share of requests targeting content that does not exist (anymore).
    missing_content_prob: float = 0.06
    #: Peers contacted by a FindProviders walk (the paper's ≈50).
    download_walk_contacts: int = 50
    #: Walk plus PutProvider fan-out for a Provide operation.
    advert_walk_contacts: int = 34
    #: FIND_NODE messages captured per join/maintenance walk.
    other_walk_contacts: int = 15
    #: Proactive lookups the Protocol-Labs Hydra fleet launches per cache
    #: miss it witnesses (the §5 amplification / DoS vector).
    hydra_amplification_walks: float = 2.5
    #: Probability a user's DHT walk is witnessed by the PL hydra fleet.
    hydra_fleet_visibility: float = 0.9
    #: The fleet's provider-record cache TTL (misses trigger lookups).
    hydra_cache_ttl: float = 6 * 3600.0
    #: Size of each storage platform's pinned set at reference scale
    #: (scaled by network size and by the platform's pinned_set_scale).
    platform_set_size: int = 11000
    #: How many distinct platform nodes provide each pinned item.
    platform_replicas: int = 4
    #: Per-node cap on remembered provided CIDs (drives daily re-provides).
    max_provided_cids: int = 40
    #: How many of its provided CIDs a node re-announces per day (real
    #: IPFS re-provides its whole provider store every 12-24 h, so the
    #: default covers the full capped set).
    daily_reprovide_sample: int = 40
    #: Probability a freshly published user item is *also* pinned at a
    #: storage platform (pinata et al. ingest user uploads) — one of the
    #: §6 mechanisms pulling content into the cloud.
    user_pin_prob: float = 0.35
    #: Probability a platform-pinned item has a user co-provider (the
    #: original uploader — an NFT creator's own node, say) that keeps
    #: re-providing it.
    platform_coprovider_prob: float = 0.85
    #: Class mix of those co-providers.
    coprovider_class_weights: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.50,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.12,
            NodeClass.RESIDENTIAL_STABLE: 0.26,
            NodeClass.CLOUD_STABLE: 0.12,
        }
    )
    #: Per-item popularity damping for platform content: the pinned sets
    #: are long-tail (billions of rarely-requested NFT assets).
    platform_weight_scale: float = 0.35
    #: Daily re-provide fraction logged for platforms (they re-announce
    #: every CID; capture keeps a sample).
    platform_reprovide_share: float = 1.0
    #: "Other" (join/maintenance) walks per online server per hour.
    other_rate: float = 0.45
    #: Cap on provider records tracked per CID (memory guard; far above
    #: what the analyses need).
    max_providers_per_cid: int = 200


class TrafficEngine:
    """Drives daily content activity over an overlay."""

    def __init__(
        self,
        overlay: Overlay,
        catalog: ContentCatalog,
        hydra: HydraBooster,
        bitswap_monitor: BitswapMonitor,
        config: Optional[WorkloadConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.overlay = overlay
        self.catalog = catalog
        self.hydra = hydra
        self.monitor = bitswap_monitor
        self.config = config or WorkloadConfig()
        self.rng = rng or random.Random(overlay.world.profile.seed + 4)
        self._pl_hydra_nodes: List[Node] = [
            node for node in overlay.nodes if node.spec.platform == "hydra"
        ]
        #: the PL hydra fleet's provider-record cache: CID -> last refresh.
        self._amp_cache: Dict[CID, float] = {}
        #: user uploads ingested by pinning platforms: node -> CIDs.
        self._platform_pins: Dict[Node, OrderedCIDSet] = {}
        self._indexer_fleet_sizes: Dict[str, int] = {}
        for node in overlay.nodes:
            platform = node.spec.platform or ""
            if platform in self.config.indexer_rates:
                self._indexer_fleet_sizes[platform] = (
                    self._indexer_fleet_sizes.get(platform, 0) + 1
                )
        self.stats = {
            "downloads": 0,
            "publishes": 0,
            "bitswap_hits": 0,
            "dht_walks": 0,
            "amplified_walks": 0,
        }
        #: optional open-loop session driver (see
        #: :mod:`repro.workload.openloop`); ``None`` keeps the legacy
        #: closed-loop model and zero extra RNG draws.
        self.open_loop = None

    def attach_open_loop(self, driver) -> None:
        """Install an open-loop session driver; it takes over the user
        request/publish stream from the next ``run_tick`` on."""
        self.open_loop = driver
        driver.bind(self)

    # ------------------------------------------------------------------
    # capture helpers
    # ------------------------------------------------------------------

    def _network_size(self) -> int:
        return max(len(self.overlay.oracle), 1)

    def _capture(self, walk_messages: int) -> int:
        return self.hydra.capture_count(walk_messages, self._network_size(), self.rng)

    def _log_dht(
        self,
        node: Node,
        message_type: MessageType,
        cid: Optional[CID],
        walk_messages: int,
        via_relay=None,
    ) -> None:
        """Log the captured subset of a walk's messages at the Hydra."""
        captured = self._capture(walk_messages)
        if captured <= 0 or node.peer is None or not node.ips:
            return
        now = self.overlay.now
        # Pre-formatted per-node address strings; ``choice`` draws on
        # indexes only, so this is bit-identical to formatting per draw.
        ip_strs = node.ip_strs()
        for _ in range(captured):
            # Multihomed nodes originate requests from any of their
            # announced interfaces.
            sender_ip = self.rng.choice(ip_strs)
            self.hydra.record(
                timestamp=now,
                sender=node.peer,
                sender_ip=sender_ip,
                message_type=message_type,
                target_cid=cid,
                via_relay=via_relay,
            )

    # ------------------------------------------------------------------
    # the three activity types
    # ------------------------------------------------------------------

    def download(self, node: Node) -> None:
        """One content retrieval: Bitswap broadcast, then DHT on miss."""
        config = self.config
        self.stats["downloads"] += 1
        missing_prob = config.missing_content_prob
        if node.node_class is NodeClass.GATEWAY:
            # Gateway URLs mostly reference content that exists; dead-CID
            # requests are a fringe of their HTTP traffic.
            missing_prob *= 0.3
        missing = self.rng.random() < missing_prob
        item = None if missing else self.catalog.sample_request(self.rng)
        self._resolve(node, item)

    def open_download(self, node: Node, item) -> None:
        """One open-loop retrieval: the CID was pre-chosen by the session
        driver's popularity model (``None`` models a dead/unknown CID), so
        no catalog-sampling randomness is drawn here — the resolution
        path (Bitswap broadcast, DHT walk on miss, re-provide) is shared
        with :meth:`download` draw-for-draw."""
        self.stats["downloads"] += 1
        self._resolve(node, item)

    def _resolve(self, node: Node, item) -> None:
        """Resolve one request for ``item`` (``None``: missing content)."""
        config = self.config
        cid = CID.generate(self.rng) if item is None else item.cid
        is_indexer = node.spec.platform in config.indexer_rates

        if is_indexer:
            # Automated resolvers query the DHT directly, never Bitswap,
            # and do not become providers.
            self.stats["dht_walks"] += 1
            self._log_dht(node, MessageType.GET_PROVIDERS, cid, config.download_walk_contacts)
            self._hydra_amplification(cid)
            return

        self.monitor.observe_broadcast(self.overlay.now, node, cid)

        hit_prob = config.bitswap_hit_probs[node.node_class]
        if node.node_class is NodeClass.GATEWAY and item is not None and isinstance(
            item.publisher, str
        ):
            hit_prob = config.gateway_platform_hit_prob
        if item is not None and self.rng.random() < hit_prob:
            self.stats["bitswap_hits"] += 1
            self._maybe_reprovide(node, cid)
            return

        # DHT walk (FindProviders).
        self.stats["dht_walks"] += 1
        self._log_dht(node, MessageType.GET_PROVIDERS, cid, config.download_walk_contacts)
        self._hydra_amplification(cid)

        if item is not None and self.overlay.providers.has_records(cid, self.overlay.now):
            self._maybe_reprovide(node, cid)

    def _hydra_amplification(self, cid: CID) -> None:
        """Protocol-Labs hydra heads proactively look up cache misses."""
        config = self.config
        if not self._pl_hydra_nodes:
            return
        if self.rng.random() >= config.hydra_fleet_visibility:
            return
        now = self.overlay.now
        last = self._amp_cache.get(cid)
        if last is not None and now - last < config.hydra_cache_ttl:
            return  # fleet cache hit: no proactive lookup
        self._amp_cache[cid] = now
        walks = int(config.hydra_amplification_walks)
        if self.rng.random() < config.hydra_amplification_walks - walks:
            walks += 1
        for _ in range(walks):
            hydra_node = self.rng.choice(self._pl_hydra_nodes)
            if hydra_node.online:
                self.stats["amplified_walks"] += 1
                self._log_dht(
                    hydra_node, MessageType.GET_PROVIDERS, cid, config.download_walk_contacts
                )

    def induced_amplification(self, cid: CID, rng: random.Random) -> List[Node]:
        """Fleet lookups triggered by a request aimed *at* the fleet.

        The adversarial variant of :meth:`_hydra_amplification`: an
        attacker sends its cache-missing request straight to the PL
        hydra heads (the §5 amplification vector), so no visibility draw
        applies, and all randomness comes from the caller's attack RNG —
        the honest engine stream is untouched.  Returns the online fleet
        nodes that launched a walk; the caller logs their traffic and
        tags them as induced actors in the ground truth.
        """
        config = self.config
        if not self._pl_hydra_nodes:
            return []
        now = self.overlay.now
        last = self._amp_cache.get(cid)
        if last is not None and now - last < config.hydra_cache_ttl:
            return []
        self._amp_cache[cid] = now
        walks = int(config.hydra_amplification_walks)
        if rng.random() < config.hydra_amplification_walks - walks:
            walks += 1
        launched = []
        for _ in range(walks):
            hydra_node = rng.choice(self._pl_hydra_nodes)
            if hydra_node.online:
                self.stats["amplified_walks"] += 1
                launched.append(hydra_node)
        return launched

    def _maybe_reprovide(self, node: Node, cid: CID) -> None:
        if self.rng.random() >= self.config.reprovide_probs[node.node_class]:
            return
        self.publish(node, cid=cid, fresh=False)

    def publish(self, node: Node, cid: Optional[CID] = None, fresh: bool = True) -> None:
        """One Provide(): store the record, log the advertisement walk."""
        if not node.online:
            return
        if cid is None:
            item = self.catalog.mint_user_item(self.overlay_clock_day, node.spec.index)
            cid = item.cid
            if fresh and self.rng.random() < self.config.user_pin_prob:
                self._pin_at_platform(cid)
        record = self.overlay.publish_provider_record(node, cid)
        if record is None:
            return
        while len(node.provided_cids) > self.config.max_provided_cids:
            node.provided_cids.pop_oldest()
        self.stats["publishes"] += 1
        via_relay = None
        if not node.is_dht_server and node.relay is not None:
            via_relay = node.relay.peer
        self._log_dht(
            node, MessageType.ADD_PROVIDER, cid, self.config.advert_walk_contacts, via_relay
        )

    def _pin_at_platform(self, cid: CID) -> None:
        """Ingest a user upload at a random pinning/storage platform."""
        candidates = self._pin_candidates()
        if not candidates:
            return
        pinner = self.rng.choice(candidates)
        self._platform_pins.setdefault(pinner, OrderedCIDSet()).add(cid)
        self.overlay.publish_provider_record(pinner, cid)

    def _pin_candidates(self) -> List[Node]:
        """Online pinning/storage platform nodes, in spec order."""
        return [
            node
            for node in self.overlay.nodes
            if node.online
            and node.spec.platform is not None
            and node.node_class is NodeClass.PLATFORM
            and node.spec.platform not in self.config.indexer_rates
            and node.spec.platform != "hydra"
        ]

    def _platform_nodes(self, name: str) -> List[Node]:
        """A platform's online nodes, in spec order."""
        return [
            node
            for node in self.overlay.nodes
            if node.spec.platform == name and node.online
        ]

    def other_walk(self, node: Node) -> None:
        """Join/maintenance FIND_NODE traffic (the §5 'other' 3 %)."""
        if node.peer is None or not node.ips:
            return
        self._log_dht(
            node, MessageType.FIND_NODE, None, self.config.other_walk_contacts
        )

    # ------------------------------------------------------------------
    # daily driver
    # ------------------------------------------------------------------

    def seed_platform_content(self) -> None:
        """Mint and provide each storage platform's pinned set (day 0)."""
        scale = len(self.overlay.oracle) / 2500.0
        for platform in self.overlay.world.profile.platforms:
            if platform.role not in ("storage", "pinning"):
                continue
            size = max(
                100, int(self.config.platform_set_size * scale * platform.pinned_set_scale)
            )
            items = self.catalog.mint_platform_set(
                platform.name, size, weight_scale=self.config.platform_weight_scale
            )
            online_nodes = [
                node
                for node in self.overlay.nodes
                if node.spec.platform == platform.name and node.online
            ]
            if not online_nodes:
                continue
            replicas = min(self.config.platform_replicas, len(online_nodes))
            coprovider_pools = {
                cls: self.overlay.nodes_of_class(cls)
                for cls in self.config.coprovider_class_weights
            }
            classes = list(self.config.coprovider_class_weights)
            weights = [self.config.coprovider_class_weights[cls] for cls in classes]
            for item in items:
                for node in self.rng.sample(online_nodes, replicas):
                    self.overlay.publish_provider_record(node, item.cid)
                # The original uploader often keeps providing the item
                # alongside the pinning service.
                if self.rng.random() < self.config.platform_coprovider_prob:
                    pool = coprovider_pools[self.rng.choices(classes, weights=weights)[0]]
                    if pool:
                        uploader = self.rng.choice(pool)
                        uploader.provided_cids.add(item.cid)
                        if uploader.online:
                            self.overlay.publish_provider_record(uploader, item.cid)

    def platform_reprovide_pass(self) -> None:
        """Daily re-announcement of every pinned CID by storage platforms.

        Records are refreshed exactly; the Hydra log receives the
        capture-sampled share of the advertisement walks.
        """
        for platform in self.overlay.world.profile.platforms:
            if platform.role not in ("storage", "pinning"):
                continue
            items = self.catalog.platform_items(platform.name)
            if not items:
                continue
            nodes = self._platform_nodes(platform.name)
            if not nodes:
                continue
            share = self.config.platform_reprovide_share
            for item in items:
                if share < 1.0 and self.rng.random() >= share:
                    continue
                node = self.rng.choice(nodes)
                self.overlay.publish_provider_record(node, item.cid)
                self._log_dht(
                    node,
                    MessageType.ADD_PROVIDER,
                    item.cid,
                    self.config.advert_walk_contacts,
                )
        # Pinned user uploads are re-announced by their pinning node.
        day = self.overlay_clock_day
        for node, cids in self._platform_pins.items():
            if not node.online:
                continue
            for cid in list(cids):
                item = self.catalog.by_cid.get(cid)
                if item is not None and not item.alive_on(day):
                    cids.discard(cid)
                    continue
                self.overlay.publish_provider_record(node, cid)
                self._log_dht(
                    node, MessageType.ADD_PROVIDER, cid, self.config.advert_walk_contacts
                )

    def user_reprovide_pass(self) -> None:
        """Daily re-announcement of previously provided content.

        Real IPFS nodes re-provide everything in their provider store
        every 12-24 h; this is what keeps user content resolvable beyond
        the 24 h record TTL and a large source of advertisement traffic.
        """
        config = self.config
        for node in list(self.overlay.online_by_peer.values()):
            if node.node_class in (NodeClass.PLATFORM, NodeClass.GATEWAY):
                continue  # platforms have their own pass; gateways cache
            if not node.provided_cids:
                continue
            self._user_reprovide_node(node, config)

    def _user_reprovide_node(self, node: Node, config: WorkloadConfig) -> None:
        """Re-announce one node's provided set (shared by both engines)."""
        cids = list(node.provided_cids)
        if len(cids) > config.daily_reprovide_sample:
            cids = self.rng.sample(cids, config.daily_reprovide_sample)
        for cid in cids:
            item = self.catalog.by_cid.get(cid)
            if item is not None and not item.alive_on(self.overlay_clock_day):
                node.provided_cids.discard(cid)
                continue
            self.publish(node, cid=cid, fresh=False)

    @property
    def overlay_clock_day(self) -> int:
        return self.overlay.scheduler.clock.day

    def run_tick(self, hours: float) -> None:
        """Generate ``hours`` worth of traffic from the current online set."""
        if self.open_loop is not None:
            # The session driver owns the user request/publish stream;
            # infrastructure traffic stays closed-loop.  Both engines run
            # this exact path, so scalar ≡ soa holds by construction.
            self.open_loop.run_tick(self, hours)
            self._run_background_tick(hours)
            return
        config = self.config
        online = list(self.overlay.online_by_peer.values())
        # Gateways serve the web-user population: their volume grows with
        # the network, not with the (fixed, 119-node) gateway fleet.
        gateway_scale = max(len(self.overlay.oracle), 1) / 2500.0
        for node in online:
            weight = node.spec.activity_weight
            platform = node.spec.platform or ""
            if platform in config.indexer_rates:
                fleet = self._indexer_fleet_sizes.get(platform, 1)
                rate = config.indexer_rates[platform] / fleet * gateway_scale * hours
            else:
                rate = config.request_rates[node.node_class] * weight * hours
                if node.node_class is NodeClass.GATEWAY:
                    rate *= gateway_scale * config.gateway_rate_multipliers.get(
                        platform, 1.0
                    )
            for _ in range(_poisson(rate, self.rng)):
                self.download(node)
            rate = config.publish_rates[node.node_class] * weight * hours
            for _ in range(_poisson(rate, self.rng)):
                self.publish(node)
        # Join / maintenance traffic.
        servers = [node for node in online if node.is_dht_server]
        if servers:
            walks = _poisson(config.other_rate * len(servers) * hours, self.rng)
            for _ in range(walks):
                self.other_walk(self.rng.choice(servers))

    def _run_background_tick(self, hours: float) -> None:
        """Indexer-fleet and join/maintenance traffic for open-loop ticks.

        The automated resolver platforms (``aws-mystery``/``cid-scraper``)
        and the DHT's own FIND_NODE churn are infrastructure, not users,
        so they keep their closed-loop Poisson rates when a session
        driver is attached.  Runs the same scalar code under both
        engines.
        """
        config = self.config
        online = list(self.overlay.online_by_peer.values())
        gateway_scale = max(len(self.overlay.oracle), 1) / 2500.0
        for node in online:
            platform = node.spec.platform or ""
            if platform in config.indexer_rates:
                fleet = self._indexer_fleet_sizes.get(platform, 1)
                rate = config.indexer_rates[platform] / fleet * gateway_scale * hours
                for _ in range(_poisson(rate, self.rng)):
                    self.download(node)
        servers = [node for node in online if node.is_dht_server]
        if servers:
            walks = _poisson(config.other_rate * len(servers) * hours, self.rng)
            for _ in range(walks):
                self.other_walk(self.rng.choice(servers))

    def run_day(self, ticks_per_day: int = 4) -> None:
        """One simulated day: index content, re-provide, then traffic ticks
        interleaved with the churn events on the scheduler."""
        day = self.overlay_clock_day
        self.catalog.build_day_index(day)
        self.platform_reprovide_pass()
        self.user_reprovide_pass()
        hours = 24.0 / ticks_per_day
        for _ in range(ticks_per_day):
            target = self.overlay.now + hours * SECONDS_PER_HOUR
            self.run_tick(hours)
            self.overlay.scheduler.run_until(min(target, (day + 1) * SECONDS_PER_DAY))


class VectorizedTrafficEngine(TrafficEngine):
    """The SoA tick engine: :meth:`TrafficEngine.run_tick`, batched.

    Bit-identical to the scalar engine by construction (and pinned by
    ``tests/test_tick_parity.py``): every RNG draw happens in the same
    order with the same values, every decision-bearing float is computed
    with the scalar code's operation ordering and libm.  Three batched
    strategies, picked per tick:

    * **Rate precomputation** (always): per-node request/publish rates
      become two array gathers instead of per-node dict lookups and
      class checks.
    * **Scalar dispatch over precomputed rates** (busy regimes): when the
      expected share of fully-silent nodes is small, per-node event
      generation dominates and batching the silence test cannot win, so
      the tick loops over the precomputed rate lists directly.
    * **Batched silence classification** (quiet regimes, e.g. many ticks
      per day or low-rate sweeps): a Poisson draw with rate ``m`` yields
      zero events iff its first uniform is ``<= exp(-m)``, consuming
      exactly one draw.  The engine pre-draws a window's worth of those
      uniforms from the engine RNG itself, classifies the whole window
      with one vector compare, and — only when the window contains a
      non-silent node — rewinds via ``getstate``/``setstate`` and replays
      up to that node's exact stream position before running its
      unmodified scalar body.  Draw-for-draw identical to the scalar
      loop; an all-silent window needs no rewind at all.
    """

    #: Below this expected share of fully-silent nodes the batched
    #: classifier cannot win (nearly every node triggers a rewind and
    #: runs the scalar body anyway), so the tick dispatches over
    #: precomputed rates instead.
    MIN_SILENT_SHARE = 0.9
    #: Hard bounds for the adaptive scan window (sized to the expected
    #: gap between non-silent nodes, so a rewind rarely discards more
    #: than one window of pre-drawn uniforms).
    MIN_SCAN_WINDOW = 64
    MAX_SCAN_WINDOW = 4096

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        require_numpy("VectorizedTrafficEngine")
        soa_state = getattr(self.overlay, "soa", None)
        if soa_state is None:
            raise RuntimeError(
                "VectorizedTrafficEngine requires an Overlay with SoA state "
                "(constructed while numpy is available)"
            )
        self._soa = soa_state
        self._platform_code = CLASS_CODE[NodeClass.PLATFORM]
        self._gateway_code = CLASS_CODE[NodeClass.GATEWAY]
        self._static_n = -1
        self._limit_cache: Dict[float, tuple] = {}
        self._pin_epoch = -1
        self._pin_cache: List[Node] = []
        self._rebuild_static()

    # -- static per-spec arrays ----------------------------------------

    def _rebuild_static(self) -> None:
        """(Re)derive the per-spec rate arrays from config + population.

        Cheap enough to re-run whenever the population grows (attack
        injection); the indexer fleet sizes deliberately stay frozen at
        engine construction, exactly like the scalar engine's.
        """
        soa = self._soa
        config = self.config
        n = soa.size
        codes = soa.class_code[:n]
        class_req = np.array(
            [config.request_rates.get(cls, 0.0) for cls in CLASS_ORDER],
            dtype=np.float64,
        )
        class_pub = np.array(
            [config.publish_rates.get(cls, 0.0) for cls in CLASS_ORDER],
            dtype=np.float64,
        )
        weights = soa.activity_weight[:n]
        # Same float op as the scalar ``rate * weight`` per node.
        self._rw_req = class_req[codes] * weights
        self._rw_pub = class_pub[codes] * weights
        gw_mult = np.ones(n, dtype=np.float64)
        is_ix = np.zeros(n, dtype=bool)
        ix_base = np.zeros(n, dtype=np.float64)
        pinnable = np.zeros(n, dtype=bool)
        platform_id: Dict[str, int] = {}
        platform_codes = np.zeros(n, dtype=np.int32)
        for node in self.overlay.nodes:
            spec = node.spec
            platform = spec.platform or ""
            if spec.platform is not None:
                platform_codes[spec.index] = platform_id.setdefault(
                    platform, len(platform_id) + 1
                )
            if platform in config.indexer_rates:
                is_ix[spec.index] = True
                fleet = self._indexer_fleet_sizes.get(platform, 1)
                ix_base[spec.index] = config.indexer_rates[platform] / fleet
            else:
                if spec.node_class is NodeClass.GATEWAY:
                    gw_mult[spec.index] = config.gateway_rate_multipliers.get(
                        platform, 1.0
                    )
                if (
                    spec.platform is not None
                    and spec.node_class is NodeClass.PLATFORM
                    and platform != "hydra"
                ):
                    pinnable[spec.index] = True
        self._gw_mult = gw_mult
        self._is_ix = is_ix
        self._ix_base = ix_base
        self._is_gw = (codes == self._gateway_code) & ~is_ix
        self._pinnable = pinnable
        self._platform_id = platform_id
        self._platform_codes = platform_codes
        self._static_n = n
        self._limit_cache.clear()
        self._pin_epoch = -1

    def _limits(self, hours: float):
        """Per-spec silence thresholds ``exp(-rate)`` for static rates.

        Computed with ``math.exp`` — numpy's SIMD ``exp`` can differ by
        1 ulp, which would flip silence decisions.  Rates outside
        ``(0, 30]`` get a placeholder (zero-rate nodes draw nothing;
        ``> 30`` nodes are forced down the scalar fallback).
        """
        cached = self._limit_cache.get(hours)
        if cached is None:
            exp = math.exp
            req = (self._rw_req * hours).tolist()
            pub = (self._rw_pub * hours).tolist()
            limq = np.array(
                [exp(-r) if 0.0 < r <= 30.0 else 1.0 for r in req], dtype=np.float64
            )
            limp = np.array(
                [exp(-p) if 0.0 < p <= 30.0 else 1.0 for p in pub], dtype=np.float64
            )
            self._limit_cache[hours] = cached = (limq, limp)
        return cached

    # -- the batched tick ----------------------------------------------

    def run_tick(self, hours: float) -> None:
        if self.open_loop is not None:
            # Open-loop ticks run the shared driver + background path;
            # the driver itself batches its session draws through
            # MirroredRandom when bound to this engine.
            TrafficEngine.run_tick(self, hours)
            return
        soa = self._soa
        if soa.size != self._static_n:
            self._rebuild_static()
        overlay = self.overlay
        config = self.config
        indices = soa.online_indices()
        n = int(indices.shape[0])
        nodes_all = overlay.nodes
        gateway_scale = max(len(overlay.oracle), 1) / 2500.0
        server_mask = None
        if n:
            # Per-node rates with the scalar engine's exact float op order:
            # normal nodes   (r*w)*hours
            # gateways       ((r*w)*hours) * (gateway_scale*mult)
            # indexers       ((rate/fleet)*gateway_scale) * hours
            req = self._rw_req[indices] * hours
            gw = self._is_gw[indices]
            if gw.any():
                req[gw] = req[gw] * (gateway_scale * self._gw_mult[indices[gw]])
            ix = self._is_ix[indices]
            if ix.any():
                req[ix] = (self._ix_base[indices[ix]] * gateway_scale) * hours
            pub = self._rw_pub[indices] * hours
            server_mask = soa.is_server[indices]
            # Heuristic only (never decision-bearing per node): expected
            # share of nodes with zero events this tick.
            expected_silent = float(np.mean(np.exp(-np.minimum(req + pub, 50.0))))
            if expected_silent < self.MIN_SILENT_SHARE:
                rng = self.rng
                req_list = req.tolist()
                pub_list = pub.tolist()
                index_list = indices.tolist()
                for position in range(n):
                    node = nodes_all[index_list[position]]
                    for _ in range(_poisson(req_list[position], rng)):
                        self.download(node)
                    for _ in range(_poisson(pub_list[position], rng)):
                        self.publish(node)
            else:
                limq_all, limp_all = self._limits(hours)
                limq = limq_all[indices]
                limp = limp_all[indices]
                dynamic = gw | ix
                if dynamic.any():
                    exp = math.exp
                    for position in np.nonzero(dynamic)[0].tolist():
                        rate = float(req[position])
                        limq[position] = exp(-rate) if 0.0 < rate <= 30.0 else 1.0
                big = (req > 30.0) | (pub > 30.0)
                self._run_tick_batched(
                    indices, req, pub, limq, limp, big, expected_silent
                )
        # Join / maintenance traffic (scalar semantics; the server list is
        # the registry-order subsequence the scalar filter would build).
        if n and server_mask.any():
            servers = [nodes_all[i] for i in indices[server_mask].tolist()]
            walks = _poisson(config.other_rate * len(servers) * hours, self.rng)
            for _ in range(walks):
                self.other_walk(self.rng.choice(servers))

    def _run_tick_batched(
        self, indices, req, pub, limq, limp, big, expected_silent
    ) -> None:
        """Silence-classify whole windows; scalar-replay the active nodes.

        A silent node consumes exactly one uniform per positive rate
        (the Knuth loop exits on its first draw), so every node's stream
        position within a window is a prefix sum of per-node draw counts.
        The window's uniforms are drawn straight from the engine RNG (so
        an all-silent window leaves the stream exactly where the scalar
        loop would — no state surgery at all); when a window does hold a
        non-silent node, the RNG is rewound to the window-start snapshot,
        replayed up to that node's position, and the unmodified scalar
        body runs.  The window is sized to the expected gap between
        non-silent nodes so a rewind rarely discards more than one
        window of pre-drawn uniforms.
        """
        rng = self.rng
        rnd = rng.random
        nodes_all = self.overlay.nodes
        n = int(indices.shape[0])
        req_positive = req > 0.0
        pub_positive = pub > 0.0
        draws = req_positive.astype(np.int64)
        draws += pub_positive
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(draws, out=starts[1:])
        window = min(
            self.MAX_SCAN_WINDOW,
            max(self.MIN_SCAN_WINDOW, int(1.0 / max(1.0 - expected_silent, 1e-9))),
        )
        i = 0
        while i < n:
            take = min(n - i, window)
            end = i + take
            base = int(starts[i])
            need = int(starts[end]) - base
            if need == 0:  # a run of zero-rate nodes: no draws, no events
                i = end
                continue
            snapshot = rng.getstate()
            buffer = np.array([rnd() for _ in range(need)], dtype=np.float64)
            offsets = starts[i:end] - base
            silent = np.ones(take, dtype=bool)
            rmask = req_positive[i:end]
            if rmask.any():
                silent[rmask] = buffer[offsets[rmask]] <= limq[i:end][rmask]
            pmask = pub_positive[i:end]
            if pmask.any():
                # The publish draw is the second draw when a request
                # draw precedes it.
                pub_offsets = offsets + rmask
                silent[pmask] &= buffer[pub_offsets[pmask]] <= limp[i:end][pmask]
            forced = big[i:end]
            if forced.any():
                # mean > 30 takes the gauss path: always the scalar body.
                silent[forced] = False
            if silent.all():
                # The stream has advanced past exactly these nodes'
                # silence draws — identical to the scalar loop.
                i = end
                continue
            active = i + int(np.argmin(silent))
            rng.setstate(snapshot)
            for _ in range(int(starts[active]) - base):
                rnd()
            node = nodes_all[int(indices[active])]
            for _ in range(_poisson(float(req[active]), rng)):
                self.download(node)
            for _ in range(_poisson(float(pub[active]), rng)):
                self.publish(node)
            i = active + 1

    # -- RNG-free node scans, as array selections ------------------------

    def _pin_candidates(self) -> List[Node]:
        """Epoch-cached array selection of the scalar scan (spec order;
        ``choice`` draws on the list length only, so same-length lists in
        the same order are bit-identical)."""
        soa = self._soa
        if soa.size != self._static_n:
            self._rebuild_static()
        if soa.epoch != self._pin_epoch:
            n = self._static_n
            nodes_all = self.overlay.nodes
            mask = self._pinnable & soa.online[:n]
            self._pin_cache = [nodes_all[i] for i in np.nonzero(mask)[0].tolist()]
            self._pin_epoch = soa.epoch
        return self._pin_cache

    def _platform_nodes(self, name: str) -> List[Node]:
        soa = self._soa
        if soa.size != self._static_n:
            self._rebuild_static()
        code = self._platform_id.get(name)
        if code is None:
            return []
        mask = (self._platform_codes == code) & soa.online[: self._static_n]
        nodes_all = self.overlay.nodes
        return [nodes_all[i] for i in np.nonzero(mask)[0].tolist()]

    # -- daily passes ----------------------------------------------------

    def user_reprovide_pass(self) -> None:
        """Scalar pass with the platform/gateway skip as an array filter
        (those skips draw no RNG, so prefiltering is bit-identical)."""
        soa = self._soa
        if soa.size != self._static_n:
            self._rebuild_static()
        config = self.config
        indices = soa.online_indices()
        if not int(indices.shape[0]):
            return
        codes = soa.class_code[indices]
        keep = (codes != self._platform_code) & (codes != self._gateway_code)
        nodes_all = self.overlay.nodes
        for index in indices[keep].tolist():
            node = nodes_all[index]
            if not node.provided_cids:
                continue
            self._user_reprovide_node(node, config)


def _poisson(mean: float, rng: random.Random) -> int:
    """Poisson sample (Knuth for small means, normal approx for large)."""
    if mean <= 0.0:
        return 0
    if mean > 30.0:
        value = int(rng.gauss(mean, mean ** 0.5) + 0.5)
        return max(0, value)
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
