"""Diurnal rate curves for the open-loop workload.

"Studying the workload of a fully decentralized Web3 system: IPFS"
(Costa et al., 2022) observes a clear day/night swing in gateway request
rates.  The model here is the standard single-harmonic curve: a cosine
around the mean with a configurable amplitude and peak hour.  Its mean
over a full day is exactly 1.0, so turning the curve on changes *when*
requests arrive but not how many — the calibrated daily volume is
untouched.
"""

from __future__ import annotations

import math

TWO_PI = 2.0 * math.pi


def diurnal_factor(hour_of_day: float, amplitude: float, peak_hour: float) -> float:
    """Rate multiplier at ``hour_of_day`` (0-24, wrapping).

    ``amplitude`` in ``[0, 1)`` is the peak-to-mean excess: 0 is flat,
    0.55 swings between 0.45× (trough) and 1.55× (peak).  The peak sits
    at ``peak_hour``; the trough 12 hours opposite.
    """
    if amplitude <= 0.0:
        return 1.0
    return 1.0 + amplitude * math.cos((hour_of_day - peak_hour) / 24.0 * TWO_PI)


def mean_factor() -> float:
    """The curve's analytic daily mean (the cosine integrates to zero)."""
    return 1.0
