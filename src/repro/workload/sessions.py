"""Heavy-tailed ON/OFF session samplers (pure inverse-CDF, scalar math).

Costa et al. observe that IPFS gateway users arrive in bursts: a session
turns ON, issues a train of requests, and goes quiet — with both the
session length and the train size heavy-tailed (a few whales dominate
total volume).  The samplers here are pure functions of a uniform draw
so the open-loop driver can feed them either one scalar uniform or a
bulk :class:`~repro.netsim.soa.MirroredRandom` batch and get the same
values: every operation is scalar Python float math (``**`` and ``/``),
never a numpy transcendental, per the PR 7 determinism discipline.
"""

from __future__ import annotations


def duration_scale(mean_seconds: float, alpha: float) -> float:
    """Pareto scale parameter giving the requested mean.

    For a Pareto(scale, alpha) with ``alpha > 1`` the mean is
    ``scale * alpha / (alpha - 1)``; invert for the scale.
    """
    if alpha <= 1.0:
        raise ValueError("duration_alpha must exceed 1 for a finite mean")
    return mean_seconds * (alpha - 1.0) / alpha


def pareto_duration(u: float, scale: float, alpha: float, cap: float) -> float:
    """Inverse-CDF Pareto draw, capped.

    ``u`` in (0, 1]; the survival function ``(scale/x)**alpha`` inverts
    to ``scale * u ** (-1/alpha)``.  ``u == 0`` would be infinite, so it
    is clamped to the cap (measure-zero under a float uniform anyway).
    """
    if u <= 0.0:
        return cap
    value = scale * u ** (-1.0 / alpha)
    return value if value < cap else cap


def train_size(u: float, mean: float, alpha: float, cap: int) -> int:
    """Heavy-tailed request-train length: a discretized Pareto, >= 1.

    The continuous draw is shifted so its mean is ``mean`` (for
    ``alpha > 1``), truncated to an int, floored at 1 and capped so a
    single whale session cannot stall a tick.
    """
    scale = duration_scale(mean, alpha)
    value = pareto_duration(u, scale, alpha, float(cap))
    count = int(value)
    if count < 1:
        return 1
    if count > cap:
        return cap
    return count
