"""The open-loop session driver: users, not nodes, generate load.

The closed-loop engine ties request volume to the online node count —
every node draws a Poisson number of requests per tick.  Real IPFS load
is open-loop: an external *user* population opens sessions against the
network (mostly through gateways), and volume follows the users, not the
peer count.  Costa et al. ("Studying the workload of a fully
decentralized Web3 system: IPFS") characterize that traffic as skewed
Zipf CID popularity, bursty ON/OFF sessions with heavy-tailed request
trains, and a pronounced diurnal cycle — the three models this driver
composes:

* **arrivals** — Poisson session arrivals at
  ``users * arrivals_per_user_hour`` per hour, modulated by the
  :mod:`~repro.workload.diurnal` curve.  ``users`` is a pure intensity
  knob: a million users is one config value, not a million objects.
* **sessions** — each arrival picks a node class (gateway-heavy mix),
  an online node of that class, a heavy-tailed Pareto duration and a
  heavy-tailed request-train size (:mod:`~repro.workload.sessions`).
* **popularity** — each request draws missing/platform/user content by
  calibrated shares, then a CID by per-class Zipf rank
  (:mod:`~repro.workload.popularity`), rebuilt daily from the live
  catalog.

Determinism: all driver randomness comes from
``derive_rng(seed, "workload", "openloop")`` — never the engine RNG, so
crawl workers can't perturb it (workers=1 ≡ N) — with a fixed
uniform-consumption layout: one :func:`~repro.workload.engine._poisson`
arrival draw per tick, six uniforms per session (class, node, start,
duration, train, publish), two per request (offset, CID).  When bound to
the SoA engine the driver bulk-draws those uniforms through
:class:`~repro.netsim.soa.MirroredRandom` and feeds them to the *same*
scalar attribute code, and the per-request math is restricted to
exact-safe numpy ops (elementwise linear arithmetic, ``searchsorted``),
so scalar ≡ soa holds bit-for-bit.  Scheduled events execute in
``(time, seq)`` heap order through the shared scalar engine calls.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Dict, List, Optional, Tuple

from repro.exec.seeds import derive_rng
from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.netsim.soa import CLASS_CODE, HAVE_NUMPY, MirroredRandom, np
from repro.workload.diurnal import diurnal_factor
from repro.workload.engine import _poisson
from repro.workload.popularity import ZipfPopularity, rank_by_weight
from repro.workload.sessions import duration_scale, pareto_duration, train_size
from repro.world.population import NodeClass

#: Heap-entry kinds; publishes of a batch are scheduled (and tie-break)
#: before requests.
_PUBLISH = 0
_REQUEST = 1


class OpenLoopDriver:
    """Session-based request stream feeding a bound traffic engine.

    One driver instance per campaign; :meth:`bind` is called by
    :meth:`~repro.workload.engine.TrafficEngine.attach_open_loop` and
    decides whether session draws go through the batched mirror.
    """

    def __init__(self, spec, seed: int) -> None:
        self.spec = spec
        self.rng = derive_rng(seed, "workload", "openloop")
        self._engine = None
        self._batched = False
        self._mirror: Optional[MirroredRandom] = None
        #: pending scheduled events: (time, seq, kind, node_index, cls, item)
        self._pending: List[Tuple] = []
        self._seq = 0
        #: end times of sessions considered active (for the gauge only).
        self._session_ends: List[float] = []
        self._pop_day: Optional[int] = None
        self._platform_pop: Optional[ZipfPopularity] = None
        self._user_pop: Optional[ZipfPopularity] = None
        self._pool_epoch = -1
        self._pools: Optional[Dict[NodeClass, List[int]]] = None
        # Class-mix inverse-CDF thresholds (scalar Python floats).
        self._mix_classes = [cls for cls, _ in spec.class_mix]
        cumulative: List[float] = []
        total = 0.0
        for _, weight in spec.class_mix:
            total += weight
            cumulative.append(total)
        self._mix_cum = cumulative
        self._mix_total = total
        self._duration_scale = duration_scale(
            spec.mean_session_minutes * 60.0, spec.duration_alpha
        )
        #: ``onoff`` spreads trains over the session; ``burst`` fires
        #: them at the session start (offset uniform still drawn, times
        #: zero — identical stream layout either way).
        self._spread = spec.sessions != "burst"
        self.cid_requests: Dict = {}
        self.stats = {
            "arrivals": 0,
            "sessions": 0,
            "sessions_dropped_empty_pool": 0,
            "active_sessions": 0,
            "open_requests": 0,
            "open_publishes": 0,
            "requests_dropped_offline": 0,
            "requests_missing": 0,
            "requests_platform": 0,
            "requests_user": 0,
            "zipf_draws_platform": 0,
            "zipf_draws_user": 0,
        }
        self.requests_by_class: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # engine binding
    # ------------------------------------------------------------------

    def bind(self, engine) -> None:
        """Attach to an engine; batch session draws iff it runs SoA."""
        self._engine = engine
        self._batched = HAVE_NUMPY and getattr(engine, "_soa", None) is not None
        if self._batched and self._mirror is None:
            self._mirror = MirroredRandom(self.rng)
        self._pool_epoch = -1
        self._pools = None

    # ------------------------------------------------------------------
    # the per-tick driver
    # ------------------------------------------------------------------

    def run_tick(self, engine, hours: float) -> None:
        """Generate ``hours`` of open-loop user traffic on ``engine``."""
        spec = self.spec
        day = engine.overlay_clock_day
        if day != self._pop_day:
            self._rebuild_popularity(engine.catalog, day)
        now = engine.overlay.now
        t_end = now + hours * SECONDS_PER_HOUR
        while self._session_ends and self._session_ends[0] <= now:
            heapq.heappop(self._session_ends)
        factor = 1.0
        if spec.diurnal:
            hour_of_day = (now % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            factor = diurnal_factor(hour_of_day, spec.diurnal_amplitude, spec.peak_hour)
        lam = spec.users * spec.arrivals_per_user_hour * hours * factor
        count = _poisson(lam, self.rng)
        self.stats["arrivals"] += count
        if count:
            pools = self._class_pools(engine)
            sessions = self._draw_sessions(count, pools, now, hours)
            self._schedule(sessions)
        self.stats["active_sessions"] = len(self._session_ends)
        self._drain_due(engine, t_end)

    def _class_pools(self, engine) -> Dict[NodeClass, List[int]]:
        """Online spec indexes per session class, in spec order.

        The SoA path answers with mask selections (cached per liveness
        epoch); the scalar path is a single pass over the registry.
        ``np.nonzero`` returns ascending spec indexes — exactly the
        order the scalar filter builds — so the pools are identical.
        """
        soa = getattr(engine, "_soa", None)
        if soa is not None:
            if self._pools is not None and self._pool_epoch == soa.epoch:
                return self._pools
            n = soa.size
            codes = soa.class_code[:n]
            online = soa.online[:n]
            pools = {}
            for cls in self._mix_classes:
                mask = (codes == CLASS_CODE[cls]) & online
                pools[cls] = np.nonzero(mask)[0].tolist()
            self._pools = pools
            self._pool_epoch = soa.epoch
            return pools
        pools = {cls: [] for cls in self._mix_classes}
        for node in engine.overlay.nodes:
            if node.online:
                pool = pools.get(node.node_class)
                if pool is not None:
                    pool.append(node.spec.index)
        return pools

    def _draw_sessions(self, count: int, pools, t0: float, hours: float) -> List[Tuple]:
        """Phase 1: six uniforms per arrival, shared scalar attributes.

        Batched mode bulk-draws the uniforms through the mirror and then
        runs the *same* scalar code over the Python list — parity by
        construction, speedup from removing per-draw dispatch.
        """
        spec = self.spec
        need = 6 * count
        if self._batched:
            us = self._mirror.take(need).tolist()
        else:
            rnd = self.rng.random
            us = [rnd() for _ in range(need)]
        max_duration = spec.max_session_hours * SECONDS_PER_HOUR
        tick_span = hours * SECONDS_PER_HOUR
        sessions = []
        sessions_stat = 0
        dropped = 0
        for position in range(count):
            base = 6 * position
            u_class = us[base]
            u_node = us[base + 1]
            u_start = us[base + 2]
            u_duration = us[base + 3]
            u_train = us[base + 4]
            u_publish = us[base + 5]
            cls = self._mix_classes[
                min(
                    bisect.bisect_left(self._mix_cum, u_class * self._mix_total),
                    len(self._mix_classes) - 1,
                )
            ]
            pool = pools[cls]
            if not pool:
                dropped += 1
                continue
            node_index = pool[int(u_node * len(pool))]
            start = t0 + u_start * tick_span
            duration = pareto_duration(
                u_duration, self._duration_scale, spec.duration_alpha, max_duration
            )
            train = train_size(u_train, spec.mean_train, spec.train_alpha, spec.max_train)
            publish = u_publish < spec.publish_prob
            sessions.append((node_index, cls.name, start, duration, train, publish))
            sessions_stat += 1
            heapq.heappush(self._session_ends, start + duration)
        self.stats["sessions"] += sessions_stat
        self.stats["sessions_dropped_empty_pool"] += dropped
        return sessions

    def _schedule(self, sessions: List[Tuple]) -> None:
        """Phase 2: two uniforms per request (offset, CID); heap insert.

        Publishes of the batch are pushed first so they sort ahead of
        same-instant requests; every event carries its absolute time and
        a monotone sequence number, making execution order independent
        of heap internals.
        """
        for node_index, cls_name, start, _, _, publish in sessions:
            if publish:
                self._push(start, _PUBLISH, node_index, cls_name, None)
        total = sum(session[4] for session in sessions)
        if total == 0:
            return
        if self._batched:
            self._schedule_batched(sessions, total)
            return
        rnd = self.rng.random
        for node_index, cls_name, start, duration, train, _ in sessions:
            span = duration if self._spread else 0.0
            for _ in range(train):
                u_offset = rnd()
                u_cid = rnd()
                time = start + u_offset * span
                item = self._choose_item(u_cid)
                self._push(time, _REQUEST, node_index, cls_name, item)

    def _schedule_batched(self, sessions: List[Tuple], total: int) -> None:
        """Vectorized phase 2 — exact-safe ops only.

        Request times are ``start + u * duration`` (one multiply, one
        add — numpy does not fuse them), CID quantile rescales are the
        scalar formulas elementwise, rank lookups are ``searchsorted``:
        all bit-identical to the scalar loop over the same uniforms.
        """
        spec = self.spec
        buffer = self._mirror.take(2 * total)
        us_offset = buffer[0::2]
        us_cid = buffer[1::2]
        trains = np.array([session[4] for session in sessions], dtype=np.int64)
        starts = np.repeat(
            np.array([session[2] for session in sessions], dtype=np.float64), trains
        )
        durations = np.repeat(
            np.array(
                [session[3] if self._spread else 0.0 for session in sessions],
                dtype=np.float64,
            ),
            trains,
        )
        times = starts + us_offset * durations
        # CID choice: thresholds split missing / platform / user, then the
        # in-band quantile is rescaled exactly like the scalar path.
        items: List = [None] * total
        m = spec.missing_prob
        t2 = m + (1.0 - m) * spec.platform_share
        platform_mask = (us_cid >= m) & (us_cid < t2)
        user_mask = us_cid >= t2
        pop = self._platform_pop
        if pop is not None and len(pop):
            positions = np.nonzero(platform_mask)[0]
            if positions.shape[0]:
                vs = (us_cid[positions] - m) / (t2 - m)
                ranks = pop.sample_indices(vs)
                pop_items = pop.items
                for position, rank in zip(positions.tolist(), ranks.tolist()):
                    items[position] = pop_items[rank]
                self.stats["zipf_draws_platform"] += int(positions.shape[0])
        pop = self._user_pop
        if pop is not None and len(pop):
            positions = np.nonzero(user_mask)[0]
            if positions.shape[0]:
                vs = (us_cid[positions] - t2) / (1.0 - t2)
                ranks = pop.sample_indices(vs)
                pop_items = pop.items
                for position, rank in zip(positions.tolist(), ranks.tolist()):
                    items[position] = pop_items[rank]
                self.stats["zipf_draws_user"] += int(positions.shape[0])
        times_list = times.tolist()
        cursor = 0
        for node_index, cls_name, _, _, train, _ in sessions:
            for _ in range(train):
                self._push(
                    times_list[cursor], _REQUEST, node_index, cls_name, items[cursor]
                )
                cursor += 1

    def _choose_item(self, u: float):
        """Scalar CID choice for one request uniform (see batched twin)."""
        spec = self.spec
        m = spec.missing_prob
        t2 = m + (1.0 - m) * spec.platform_share
        if u < m:
            return None
        if u < t2:
            pop = self._platform_pop
            if pop is None or not len(pop):
                return None
            self.stats["zipf_draws_platform"] += 1
            return pop.sample((u - m) / (t2 - m))
        pop = self._user_pop
        if pop is None or not len(pop):
            return None
        self.stats["zipf_draws_user"] += 1
        return pop.sample((u - t2) / (1.0 - t2))

    def _push(self, time: float, kind: int, node_index: int, cls_name: str, item) -> None:
        heapq.heappush(self._pending, (time, self._seq, kind, node_index, cls_name, item))
        self._seq += 1

    def _drain_due(self, engine, t_end: float) -> None:
        """Execute every scheduled event due by ``t_end``, in time order.

        The engine RNG draws happen here, in ``(time, seq)`` order over
        identical heap contents — the point where both engines converge
        onto the same scalar resolution code.
        """
        pending = self._pending
        nodes = engine.overlay.nodes
        while pending and pending[0][0] <= t_end:
            _, _, kind, node_index, cls_name, item = heapq.heappop(pending)
            node = nodes[node_index]
            if not node.online:
                self.stats["requests_dropped_offline"] += 1
                continue
            if kind == _PUBLISH:
                engine.publish(node)
                self.stats["open_publishes"] += 1
                continue
            engine.open_download(node, item)
            self.stats["open_requests"] += 1
            self._count_request(cls_name, item)

    def _count_request(self, cls_name: str, item) -> None:
        by_class = self.requests_by_class
        by_class[cls_name] = by_class.get(cls_name, 0) + 1
        if item is None:
            self.stats["requests_missing"] += 1
            return
        if isinstance(item.publisher, str):
            self.stats["requests_platform"] += 1
        else:
            self.stats["requests_user"] += 1
        self.cid_requests[item.cid] = self.cid_requests.get(item.cid, 0) + 1

    # ------------------------------------------------------------------
    # popularity
    # ------------------------------------------------------------------

    def _rebuild_popularity(self, catalog, day: int) -> None:
        """Daily Zipf rebuild: rank the live catalog per content class."""
        alive = catalog.alive_items(day)
        platform_items = [item for item in alive if isinstance(item.publisher, str)]
        user_items = [item for item in alive if not isinstance(item.publisher, str)]
        self._platform_pop = ZipfPopularity(
            rank_by_weight(platform_items), self.spec.s_platform
        )
        self._user_pop = ZipfPopularity(rank_by_weight(user_items), self.spec.s)
        self._pop_day = day

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def headline_shares(self) -> Dict[str, float]:
        """Calibration headlines in the shape of Costa et al.'s tables."""
        executed = self.stats["open_requests"]
        if executed <= 0:
            return {
                "missing_share": 0.0,
                "platform_share": 0.0,
                "user_share": 0.0,
                "gateway_share": 0.0,
                "top1pct_request_share": 0.0,
            }
        counts = sorted(self.cid_requests.values(), reverse=True)
        resolved = sum(counts)
        top = max(1, int(len(counts) * 0.01)) if counts else 0
        top_share = (sum(counts[:top]) / resolved) if resolved else 0.0
        return {
            "missing_share": self.stats["requests_missing"] / executed,
            "platform_share": self.stats["requests_platform"] / executed,
            "user_share": self.stats["requests_user"] / executed,
            "gateway_share": self.requests_by_class.get("GATEWAY", 0) / executed,
            "top1pct_request_share": top_share,
        }


def sample_workload(
    spec,
    seed: int = 2023,
    hours: int = 24,
    catalog_size: int = 4000,
    pool_size: int = 64,
) -> Dict:
    """Dry-run the driver against a synthetic catalog — no overlay.

    Backs ``repro workload sample``: the full phase-1/phase-2 sampling
    pipeline runs hour by hour with every "execution" just counted, so a
    spec's calibrated shapes (request volume, diurnal curve, per-class
    mix, Zipf skew) can be inspected in milliseconds before committing
    to a campaign.
    """
    from repro.content.catalog import ContentCatalog

    driver = OpenLoopDriver(spec, seed)
    # Synthetic two-class catalog with the engine's own popularity law.
    catalog = ContentCatalog(rng=derive_rng(seed, "workload", "synthetic"))
    catalog.mint_platform_set("sample-platform", max(1, catalog_size // 2))
    for position in range(max(1, catalog_size - catalog_size // 2)):
        catalog.mint_user_item(0, position)
    driver._rebuild_popularity(catalog, 0)
    pools = {cls: list(range(pool_size)) for cls in driver._mix_classes}
    per_hour: List[int] = []
    spec_diurnal = spec.diurnal
    for hour in range(int(hours)):
        now = hour * SECONDS_PER_HOUR
        t_end = now + SECONDS_PER_HOUR
        while driver._session_ends and driver._session_ends[0] <= now:
            heapq.heappop(driver._session_ends)
        factor = 1.0
        if spec_diurnal:
            hour_of_day = (now % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            factor = diurnal_factor(
                hour_of_day, spec.diurnal_amplitude, spec.peak_hour
            )
        count = _poisson(spec.users * spec.arrivals_per_user_hour * factor, driver.rng)
        driver.stats["arrivals"] += count
        if count:
            sessions = driver._draw_sessions(count, pools, now, 1.0)
            driver._schedule(sessions)
        driver.stats["active_sessions"] = len(driver._session_ends)
        executed = 0
        pending = driver._pending
        while pending and pending[0][0] <= t_end:
            _, _, kind, _, cls_name, item = heapq.heappop(pending)
            if kind == _PUBLISH:
                driver.stats["open_publishes"] += 1
                continue
            driver.stats["open_requests"] += 1
            driver._count_request(cls_name, item)
            executed += 1
        per_hour.append(executed)
    shares = driver.headline_shares()
    return {
        "hours": int(hours),
        "stats": dict(driver.stats),
        "requests_by_class": dict(driver.requests_by_class),
        "requests_per_hour": per_hour,
        "headline_shares": shares,
        "distinct_cids": len(driver.cid_requests),
    }
