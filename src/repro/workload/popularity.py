"""Zipf CID popularity: rank-weighted request sampling per content class.

Costa et al. find IPFS request popularity is heavily skewed — a few hot
CIDs draw most requests over a long tail of rarely-fetched content, with
the persistent platform catalogs (NFT assets and the like) forming the
flattest part of the tail.  :class:`ZipfPopularity` models one content
class: items ordered by rank get weight ``rank ** -s`` and requests are
drawn by inverse-CDF lookup.

Determinism: the cumulative weights are computed once with scalar Python
float ops, and both sampling paths answer the *same* query — the scalar
path via ``bisect_left`` on the Python list, the batched path via
``numpy.searchsorted`` (``side="left"``) on an array holding the same
values — so for any uniform ``u`` the two return the same rank
bit-identically (``u * total`` is a single IEEE-754 multiply either
way).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

from repro.netsim.soa import np


class ZipfPopularity:
    """Rank-``s`` Zipf sampling over an ordered item sequence.

    ``items[0]`` is rank 1 (the hottest); weight of rank ``r`` is
    ``r ** -s``.  ``s`` around 1 reproduces the classic web-like skew;
    smaller ``s`` flattens toward the uniform long tail.
    """

    def __init__(self, items: Sequence, s: float) -> None:
        self.items: List = list(items)
        self.s = float(s)
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.items) + 1):
            total += rank ** -self.s
            cumulative.append(total)
        self._cumulative = cumulative
        self.total_weight = total
        self._array = None

    def __len__(self) -> int:
        return len(self.items)

    def sample(self, u: float):
        """The item at the quantile ``u`` of the Zipf CDF (``None`` when
        the class is empty)."""
        if not self._cumulative:
            return None
        index = bisect.bisect_left(self._cumulative, u * self.total_weight)
        if index >= len(self.items):
            index = len(self.items) - 1
        return self.items[index]

    def sample_indices(self, us):
        """Vectorized :meth:`sample` over a float64 array of uniforms.

        Returns rank indexes; bit-identical to the scalar path because
        ``searchsorted(side="left")`` and ``bisect_left`` share
        semantics and the cumulative values are the same Python-computed
        floats.
        """
        if np is None:  # pragma: no cover - callers gate on numpy
            raise RuntimeError("sample_indices requires numpy")
        if self._array is None:
            self._array = np.array(self._cumulative, dtype=np.float64)
        indices = np.searchsorted(self._array, us * self.total_weight, side="left")
        return np.minimum(indices, len(self.items) - 1)

    def top_share(self, fraction: float) -> float:
        """Share of the total request weight held by the top ``fraction``
        of ranks — the calibration headline (e.g. top-1% share)."""
        if not self._cumulative:
            return 0.0
        count = max(1, int(len(self.items) * fraction))
        return self._cumulative[count - 1] / self.total_weight


def rank_by_weight(items: Sequence) -> List:
    """Order catalog items for rank assignment: heaviest first, ties by
    insertion position (deterministic under any hash seed)."""
    return [
        item
        for _, item in sorted(
            enumerate(items), key=lambda pair: (-getattr(pair[1], "weight", 1.0), pair[0])
        )
    ]
