"""The spec-string front door for workload models.

Mirrors the storage backend pattern (``repro.store``): one frozen
dataclass, one parser, one builder.  A workload is selected with a
compact spec string —

* ``closed`` (alias ``legacy``) — the calibrated closed-loop model
  behind the golden figures; no driver is built and campaigns stay
  bit-identical to previous releases.
* ``zipf:key=value,...`` — the open-loop session engine
  (:mod:`repro.workload.openloop`), e.g.
  ``zipf:users=1e6,s=1.05,sessions=onoff,diurnal=true``.  Keys map to
  :class:`WorkloadSpec` fields and are type-coerced from the field
  types, so ``users=1e6`` is accepted for the integer user count.

``parse_workload_spec`` is the single grammar authority;
``build_workload`` turns a spec (or string) into the driver object a
campaign attaches — ``None`` for the closed-loop default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Tuple

from repro.world.population import NodeClass

#: Session-class mix of the open-loop user population: gateway-heavy,
#: per Costa et al.'s finding that most user requests enter via the
#: public HTTP gateways.  Not part of the string grammar (set it in
#: code via ``dataclasses.replace`` when experimenting).
DEFAULT_CLASS_MIX: Tuple[Tuple[NodeClass, float], ...] = (
    (NodeClass.GATEWAY, 0.55),
    (NodeClass.NAT_CLIENT, 0.20),
    (NodeClass.RESIDENTIAL_EPHEMERAL, 0.10),
    (NodeClass.RESIDENTIAL_STABLE, 0.08),
    (NodeClass.CLOUD_STABLE, 0.05),
    (NodeClass.HYBRID, 0.02),
)

_MODELS = ("closed", "zipf")
_SESSION_MODES = ("onoff", "burst")


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines a workload model, in one hashable value."""

    #: ``closed`` (legacy per-node Poisson) or ``zipf`` (open-loop).
    model: str = "closed"
    #: Simulated user population — a pure arrival-intensity knob.
    users: int = 10_000
    #: Zipf exponent for user-published content popularity.
    s: float = 1.05
    #: Zipf exponent for platform catalogs (flatter long tail).
    s_platform: float = 0.85
    #: ``onoff`` spreads each train over the session; ``burst`` fires it
    #: at session start.
    sessions: str = "onoff"
    #: Apply the diurnal rate curve.
    diurnal: bool = True
    #: Peak-to-mean excess of the diurnal cosine.
    diurnal_amplitude: float = 0.55
    #: Local hour of the diurnal peak.
    peak_hour: float = 20.0
    #: Session arrivals per user per hour (before the diurnal factor).
    arrivals_per_user_hour: float = 0.02
    #: Mean ON-session length (Pareto; heavy-tailed).
    mean_session_minutes: float = 8.0
    #: Pareto shape of session durations (must exceed 1).
    duration_alpha: float = 1.6
    #: Hard cap on one session's length.
    max_session_hours: float = 6.0
    #: Mean request-train size per session (Pareto; heavy-tailed).
    mean_train: float = 6.0
    #: Pareto shape of train sizes (must exceed 1).
    train_alpha: float = 1.4
    #: Hard cap on one session's train.
    max_train: int = 512
    #: Probability a session publishes fresh content at its start.
    publish_prob: float = 0.04
    #: Share of in-catalog requests aimed at platform-pinned content.
    platform_share: float = 0.62
    #: Share of requests for missing/dead CIDs.
    missing_prob: float = 0.05
    #: Session node-class mix (string grammar excludes it).
    class_mix: Tuple[Tuple[NodeClass, float], ...] = field(
        default=DEFAULT_CLASS_MIX
    )

    def to_string(self) -> str:
        """The spec string that parses back to this spec (non-default
        scalar fields only; ``class_mix`` has no string form)."""
        if self.model == "closed":
            return "closed"
        defaults = WorkloadSpec()
        parts = []
        for spec_field in fields(self):
            if spec_field.name in ("model", "class_mix"):
                continue
            value = getattr(self, spec_field.name)
            if value != getattr(defaults, spec_field.name):
                rendered = str(value).lower() if isinstance(value, bool) else str(value)
                parts.append(f"{spec_field.name}={rendered}")
        return "zipf:" + ",".join(parts) if parts else "zipf"


_FIELD_TYPES: Dict[str, type] = {
    spec_field.name: spec_field.type if isinstance(spec_field.type, type) else type(getattr(WorkloadSpec(), spec_field.name))
    for spec_field in fields(WorkloadSpec)
    if spec_field.name not in ("model", "class_mix")
}

_TRUE = ("true", "1", "yes", "on")
_FALSE = ("false", "0", "no", "off")


def _coerce(key: str, raw: str):
    kind = _FIELD_TYPES[key]
    if kind is bool:
        lowered = raw.strip().lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise ValueError(f"workload spec: boolean {key}={raw!r} (use true/false)")
    try:
        if kind is int:
            # Accept scientific notation for the big knobs: users=1e6.
            value = float(raw)
            if value != int(value):
                raise ValueError
            return int(value)
        if kind is float:
            return float(raw)
    except ValueError:
        raise ValueError(f"workload spec: cannot parse {key}={raw!r} as {kind.__name__}")
    return raw.strip()


def _validate(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.model not in _MODELS:
        raise ValueError(
            f"unknown workload model {spec.model!r}; expected one of {_MODELS}"
        )
    if spec.sessions not in _SESSION_MODES:
        raise ValueError(
            f"workload spec: sessions={spec.sessions!r}; expected one of {_SESSION_MODES}"
        )
    if spec.users < 1:
        raise ValueError("workload spec: users must be >= 1")
    if spec.duration_alpha <= 1.0 or spec.train_alpha <= 1.0:
        raise ValueError("workload spec: Pareto alphas must exceed 1 (finite mean)")
    for name in ("publish_prob", "missing_prob", "platform_share"):
        value = getattr(spec, name)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"workload spec: {name} must be in [0, 1]")
    if not 0.0 <= spec.diurnal_amplitude < 1.0:
        raise ValueError("workload spec: diurnal_amplitude must be in [0, 1)")
    if spec.max_train < 1 or spec.mean_train < 1.0:
        raise ValueError("workload spec: train sizes must be >= 1")
    return spec


def parse_workload_spec(text: str) -> WorkloadSpec:
    """Parse ``closed`` / ``zipf:key=value,...`` into a :class:`WorkloadSpec`.

    Raises :class:`ValueError` on unknown models, unknown keys, or
    values that do not coerce to the field's type.
    """
    if not isinstance(text, str) or not text.strip():
        raise ValueError("workload spec must be a non-empty string")
    head, _, tail = text.strip().partition(":")
    model = head.strip().lower()
    if model == "legacy":
        model = "closed"
    if model == "closed":
        if tail.strip():
            raise ValueError("the closed workload model takes no parameters")
        return WorkloadSpec(model="closed")
    if model != "zipf":
        raise ValueError(
            f"unknown workload model {model!r}; expected one of {_MODELS}"
        )
    overrides: Dict[str, object] = {}
    if tail.strip():
        for chunk in tail.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, separator, raw = chunk.partition("=")
            key = key.strip()
            if not separator:
                raise ValueError(f"workload spec: expected key=value, got {chunk!r}")
            if key not in _FIELD_TYPES:
                known = ", ".join(sorted(_FIELD_TYPES))
                raise ValueError(f"workload spec: unknown key {key!r} (known: {known})")
            overrides[key] = _coerce(key, raw.strip())
    return _validate(WorkloadSpec(model="zipf", **overrides))


def build_workload(spec, *, seed: int):
    """Materialize a workload: ``None`` (closed-loop) or a session driver.

    Accepts a :class:`WorkloadSpec` or a spec string.  The driver's RNG
    is seed-derived (``derive_rng(seed, "workload", "openloop")``), so
    open-loop campaigns are deterministic regardless of worker count.
    """
    if isinstance(spec, str):
        spec = parse_workload_spec(spec)
    if spec.model == "closed":
        return None
    from repro.workload.openloop import OpenLoopDriver

    return OpenLoopDriver(spec, seed)


def describe_workload(spec) -> Dict[str, object]:
    """Derived calibration numbers for a spec (``repro workload describe``)."""
    if isinstance(spec, str):
        spec = parse_workload_spec(spec)
    if spec.model == "closed":
        return {
            "model": "closed",
            "spec": "closed",
            "note": "legacy per-node Poisson rates (WorkloadConfig); golden default",
        }
    sessions_per_hour = spec.users * spec.arrivals_per_user_hour
    requests_per_hour = sessions_per_hour * spec.mean_train
    return {
        "model": "zipf",
        "spec": spec.to_string(),
        "users": spec.users,
        "sessions_per_hour_mean": sessions_per_hour,
        "requests_per_hour_mean": requests_per_hour,
        "requests_per_day_mean": requests_per_hour * 24.0,
        "publishes_per_hour_mean": sessions_per_hour * spec.publish_prob,
        "mean_session_minutes": spec.mean_session_minutes,
        "mean_train": spec.mean_train,
        "diurnal_peak_factor": 1.0 + spec.diurnal_amplitude if spec.diurnal else 1.0,
        "diurnal_trough_factor": 1.0 - spec.diurnal_amplitude if spec.diurnal else 1.0,
        "zipf_exponents": {"user": spec.s, "platform": spec.s_platform},
        "content_mix": {
            "missing": spec.missing_prob,
            "platform": (1.0 - spec.missing_prob) * spec.platform_share,
            "user": (1.0 - spec.missing_prob) * (1.0 - spec.platform_share),
        },
        "class_mix": {cls.name: weight for cls, weight in spec.class_mix},
    }
