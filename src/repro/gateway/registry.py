"""The public gateway list and checker.

Protocol Labs maintains a list of public gateways; of the 83 HTTP
endpoints listed, the paper finds 22 that functioned at least once (§3).
The registry models the full list — functional operators plus dead
entries — and the checker tool that probes them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gateway.operators import GatewayOperator, default_operators


@dataclass(frozen=True)
class GatewayListEntry:
    """One row of the public gateway list."""

    domain: str
    operator: Optional[str]  # None for dead/unattributed endpoints
    functional: bool


_DEAD_DOMAIN_STEMS = (
    "ipfs.work", "ipfs.overpi.com", "gateway.blocto.app", "ipfs.yt",
    "ipfs.anonymize.com", "ipfs.scalaproject.io", "ipfs.tubby.cloud",
    "ipfs.kavin.rocks", "ipfs.czip.it", "ipfs.itargo.io",
)


class PublicGatewayRegistry:
    """The 83-entry public list: 22 functional, the rest defunct."""

    def __init__(
        self,
        operators: Optional[List[GatewayOperator]] = None,
        total_entries: int = 83,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.operators = operators if operators is not None else default_operators()
        self.rng = rng or random.Random(0x6A7E)
        if total_entries < len(self.operators):
            raise ValueError("total entries cannot be below the functional count")
        self.entries: List[GatewayListEntry] = [
            GatewayListEntry(op.domain, op.name, functional=True) for op in self.operators
        ]
        dead_needed = total_entries - len(self.entries)
        for number in range(dead_needed):
            stem = _DEAD_DOMAIN_STEMS[number % len(_DEAD_DOMAIN_STEMS)]
            domain = stem if number < len(_DEAD_DOMAIN_STEMS) else f"gw{number}.{stem}"
            self.entries.append(GatewayListEntry(domain, None, functional=False))
        self._by_domain: Dict[str, GatewayListEntry] = {
            entry.domain: entry for entry in self.entries
        }
        self._operator_by_name = {op.name: op for op in self.operators}

    def __len__(self) -> int:
        return len(self.entries)

    def domains(self) -> List[str]:
        return [entry.domain for entry in self.entries]

    def functional_entries(self) -> List[GatewayListEntry]:
        return [entry for entry in self.entries if entry.functional]

    def operator_for(self, domain: str) -> Optional[GatewayOperator]:
        entry = self._by_domain.get(domain)
        if entry is None or entry.operator is None:
            return None
        return self._operator_by_name[entry.operator]

    def check(self, domain: str) -> bool:
        """The public gateway checker: does this endpoint answer?"""
        entry = self._by_domain.get(domain)
        return bool(entry and entry.functional)
