"""HTTP gateways — the bridge between the web and IPFS.

Gateways translate HTTP GET requests into IPFS content retrievals
(paper §2).  Large operators (most prominently Cloudflare) run pools of
IPFS nodes behind reverse-proxied HTTP frontends; the paper identifies
22 functional gateways out of 83 listed endpoints, with 119 distinct
overlay IDs behind them (§3).

* :mod:`repro.gateway.operators` — gateway operators, their hosting and
  their frontend/overlay footprint,
* :mod:`repro.gateway.registry` — the public gateway list + checker,
* :mod:`repro.gateway.service` — the HTTP-side behaviour (cache, fetch,
  re-provide) used by the gateway prober and the examples.
"""

from repro.gateway.operators import GatewayOperator, default_operators, install_gateway_specs
from repro.gateway.registry import PublicGatewayRegistry
from repro.gateway.selection import GatewaySelector, SelectionPolicy
from repro.gateway.service import GatewayService
from repro.gateway.web import WebClient, WebFetchResult

__all__ = [
    "GatewayOperator",
    "GatewaySelector",
    "GatewayService",
    "PublicGatewayRegistry",
    "SelectionPolicy",
    "WebClient",
    "WebFetchResult",
    "default_operators",
    "install_gateway_specs",
]
