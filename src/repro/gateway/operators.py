"""Gateway operators and their footprint in the synthetic world.

Each operator contributes:

* HTTP *frontend* IPs — what the gateway domains' A records resolve to
  (Cloudflare fronts dominate, §7/Fig. 18),
* *overlay* nodes — the IPFS nodes issuing requests into the network
  (Cloudflare reverse-proxies even these through its own address space),
* a public domain, listed (functional or not) in the public gateway list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.world.ipspace import IPBlock
from repro.world.population import NodeClass, NodeSpec, World


@dataclass(frozen=True)
class GatewayOperator:
    """One gateway operator.

    :ivar name: operator slug (doubles as the platform tag of its nodes).
    :ivar domain: public HTTP endpoint.
    :ivar provider: hosting organisation; ``None`` means self-hosted
        non-cloud (the commendable fringe the paper notes in §7).
    :ivar frontend_countries: weighted countries of the HTTP frontends.
    :ivar overlay_countries: weighted countries of the overlay nodes.
    :ivar num_frontend_ips: distinct A-record IPs observed.
    :ivar num_overlay_nodes: IPFS nodes serving the gateway.
    """

    name: str
    domain: str
    provider: Optional[str]
    frontend_countries: Tuple[Tuple[str, float], ...]
    overlay_countries: Tuple[Tuple[str, float], ...]
    num_frontend_ips: int
    num_overlay_nodes: int


def default_operators() -> List[GatewayOperator]:
    """The 22 functional operators (paper §3): Cloudflare and Protocol
    Labs dominate; a tail of small cloud-hosted and self-hosted ones."""
    us_de = (("US", 0.6), ("DE", 0.4))
    operators = [
        GatewayOperator(
            "cloudflare", "cloudflare-ipfs.com", "cloudflare",
            frontend_countries=(("US", 0.45), ("NL", 0.35), ("DE", 0.2)),
            overlay_countries=(("US", 0.7), ("DE", 0.3)),
            num_frontend_ips=24, num_overlay_nodes=48,
        ),
        GatewayOperator(
            "cf-ipfs", "cf-ipfs.com", "cloudflare",
            frontend_countries=(("US", 0.4), ("NL", 0.4), ("DE", 0.2)),
            overlay_countries=(("US", 0.7), ("DE", 0.3)),
            num_frontend_ips=8, num_overlay_nodes=10,
        ),
        GatewayOperator(
            "protocol-labs", "ipfs.io", "amazon-aws",
            frontend_countries=(("US", 0.7), ("DE", 0.3)),
            overlay_countries=us_de,
            num_frontend_ips=6, num_overlay_nodes=14,
        ),
        GatewayOperator(
            "dweb-link", "dweb.link", "amazon-aws",
            frontend_countries=(("US", 0.7), ("DE", 0.3)),
            overlay_countries=us_de,
            num_frontend_ips=4, num_overlay_nodes=8,
        ),
        GatewayOperator(
            "pinata", "gateway.pinata.cloud", "amazon-aws",
            frontend_countries=(("US", 1.0),),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=3, num_overlay_nodes=4,
        ),
        GatewayOperator(
            "ipfs-bank", "gw.ipfs-bank.io", "packet-host",
            frontend_countries=(("US", 1.0),),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=2, num_overlay_nodes=6,
        ),
        GatewayOperator(
            "nftstorage-link", "nftstorage.link", "cloudflare",
            frontend_countries=(("US", 0.5), ("NL", 0.5)),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=4, num_overlay_nodes=4,
        ),
        GatewayOperator(
            "w3s-link", "w3s.link", "cloudflare",
            frontend_countries=(("US", 0.5), ("NL", 0.5)),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=3, num_overlay_nodes=3,
        ),
        GatewayOperator(
            "4everland", "4everland.io", "amazon-aws",
            frontend_countries=(("US", 0.6), ("SG", 0.4)),
            overlay_countries=(("US", 0.6), ("SG", 0.4)),
            num_frontend_ips=3, num_overlay_nodes=4,
        ),
        GatewayOperator(
            "infura", "ipfs.infura.io", "amazon-aws",
            frontend_countries=(("US", 1.0),),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=2, num_overlay_nodes=3,
        ),
        GatewayOperator(
            "hardbin", "hardbin.com", "digital-ocean",
            frontend_countries=(("GB", 1.0),),
            overlay_countries=(("GB", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "eth-aragon", "ipfs.eth.aragon.network", "hetzner",
            frontend_countries=(("DE", 1.0),),
            overlay_countries=(("DE", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=2,
        ),
        GatewayOperator(
            "best-practice", "ipfs.best-practice.se", None,
            frontend_countries=(("SE", 1.0),),
            overlay_countries=(("SE", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "jorropo", "jorropo.net", None,
            frontend_countries=(("FR", 1.0),),
            overlay_countries=(("FR", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "ipfs-fleek", "ipfs.fleek.co", "amazon-aws",
            frontend_countries=(("US", 1.0),),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=2, num_overlay_nodes=2,
        ),
        GatewayOperator(
            "crustwebsites", "crustwebsites.net", "google-cloud",
            frontend_countries=(("US", 0.5), ("SG", 0.5)),
            overlay_countries=(("SG", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=2,
        ),
        GatewayOperator(
            "ipfs-telos", "ipfs.telos.miami", None,
            frontend_countries=(("US", 1.0),),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "gateway-home", "gateway.ipfs.homecloud.dev", None,
            frontend_countries=(("DE", 1.0),),
            overlay_countries=(("DE", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "storry", "storry.tv", "ovh",
            frontend_countries=(("FR", 1.0),),
            overlay_countries=(("FR", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "ipfs-litnet", "ipfs.litnet.work", None,
            frontend_countries=(("PL", 1.0),),
            overlay_countries=(("PL", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "jpu-io", "jpu.jp", None,
            frontend_countries=(("JP", 1.0),),
            overlay_countries=(("JP", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
        GatewayOperator(
            "ninetailed", "ninetailed.ninja", "linode",
            frontend_countries=(("US", 1.0),),
            overlay_countries=(("US", 1.0),),
            num_frontend_ips=1, num_overlay_nodes=1,
        ),
    ]
    total_overlay = sum(op.num_overlay_nodes for op in operators)
    assert total_overlay == 119, f"overlay node budget drifted: {total_overlay}"
    return operators


def install_gateway_specs(
    world: World, operators: Optional[List[GatewayOperator]] = None, rng: Optional[random.Random] = None
) -> Dict[str, List[NodeSpec]]:
    """Append overlay-node specs for every operator to the world.

    Must run before the :class:`~repro.netsim.network.Overlay` is built.
    Returns operator name -> its specs.
    """
    operators = operators if operators is not None else default_operators()
    rng = rng or random.Random(world.profile.seed + 5)
    behavior = world.profile.behaviors["platform"]
    specs_by_operator: Dict[str, List[NodeSpec]] = {}
    next_index = max((spec.index for spec in world.specs), default=-1) + 1
    for operator in operators:
        specs: List[NodeSpec] = []
        countries = [country for country, _ in operator.overlay_countries]
        weights = [weight for _, weight in operator.overlay_countries]
        for _ in range(operator.num_overlay_nodes):
            country = rng.choices(countries, weights=weights, k=1)[0]
            block = _gateway_block(world, operator, country)
            spec = NodeSpec(
                index=next_index,
                node_class=NodeClass.GATEWAY,
                organisation=operator.provider or f"isp-{country.lower()}",
                country=country,
                blocks=(block,),
                behavior=behavior,
                platform=operator.name,
                activity_weight=1.0,
                num_addrs=1,
            )
            world.specs.append(spec)
            specs.append(spec)
            next_index += 1
        specs_by_operator[operator.name] = specs
    # The databases must learn any block allocated here.
    _rebuild_databases(world)
    return specs_by_operator


def _gateway_block(world: World, operator: GatewayOperator, country: str) -> IPBlock:
    """Allocate (or reuse) the address block backing an operator's nodes."""
    is_cloud = operator.provider is not None
    organisation = operator.provider or f"isp-{country.lower()}"
    key = (f"gateway:{operator.name}", country) if is_cloud else (organisation, country)
    if key not in world.blocks_by_org_country:
        prefix_len = 20 if is_cloud else 14
        block = world.allocator.allocate_block(organisation, country, is_cloud, prefix_len)
        world.blocks_by_org_country[key] = block
        world.rdns.register_block(block, "gw-{ip}." + operator.domain)
    return world.blocks_by_org_country[key]


def frontend_ips(
    world: World, operator: GatewayOperator, rng: random.Random
) -> List[int]:
    """Mint the operator's HTTP-frontend IPs (A-record targets)."""
    ips: List[int] = []
    countries = [country for country, _ in operator.frontend_countries]
    weights = [weight for _, weight in operator.frontend_countries]
    for _ in range(operator.num_frontend_ips):
        country = rng.choices(countries, weights=weights, k=1)[0]
        block = _gateway_block(world, operator, country)
        try:
            ips.append(world.allocator.next_address(block))
        except RuntimeError:
            ips.append(world.allocator.random_address(block, rng))
    _rebuild_databases(world)
    return ips


def _rebuild_databases(world: World) -> None:
    from repro.world.clouddb import CloudIPDatabase
    from repro.world.geodb import GeoIPDatabase

    blocks = world.allocator.blocks
    world.cloud_db = CloudIPDatabase(blocks)
    world.geo_db = GeoIPDatabase(blocks)
