"""The HTTP-side behaviour of a gateway.

When a gateway receives an HTTP GET for a CID it (1) checks its local
cache, (2) finds and downloads the content using IPFS, and (3) returns the
content over HTTP (paper §2).  The retrieval starts with the backend
node's 1-hop Bitswap broadcast — which is exactly the signal the gateway
prober exploits to learn the backend's overlay identity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gateway.operators import GatewayOperator
from repro.ids.cid import CID
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.netsim.network import Overlay
from repro.netsim.node import Node


@dataclass
class HTTPResponse:
    """Outcome of an HTTP GET /ipfs/<cid>."""

    status: int
    cid: CID
    served_by: Optional[Node] = None
    from_cache: bool = False


class GatewayService:
    """One operator's gateway: frontend, cache, backend node pool."""

    def __init__(
        self,
        operator: GatewayOperator,
        backend_nodes: List[Node],
        overlay: Overlay,
        bitswap_monitor: Optional[BitswapMonitor] = None,
        cache_ttl: float = 6 * 3600.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not backend_nodes:
            raise ValueError("a gateway needs at least one backend node")
        self.operator = operator
        self.backend_nodes = backend_nodes
        self.overlay = overlay
        self.monitor = bitswap_monitor
        self.cache_ttl = cache_ttl
        self.rng = rng or random.Random(0x6477)
        self._cache: Dict[CID, float] = {}
        self.requests_served = 0

    def _pick_backend(self) -> Optional[Node]:
        online = [node for node in self.backend_nodes if node.online]
        if not online:
            return None
        return self.rng.choice(online)

    def http_get(self, cid: CID) -> HTTPResponse:
        """Serve ``GET /ipfs/<cid>`` through the gateway."""
        self.requests_served += 1
        now = self.overlay.now
        cached_at = self._cache.get(cid)
        if cached_at is not None and now - cached_at < self.cache_ttl:
            return HTTPResponse(status=200, cid=cid, from_cache=True)
        backend = self._pick_backend()
        if backend is None:
            return HTTPResponse(status=502, cid=cid)
        # (2) find and download using IPFS: 1-hop broadcast first...
        if self.monitor is not None:
            self.monitor.observe_broadcast(now, backend, cid)
        # ...then resolve providers (Bitswap neighbours or the DHT).
        records = self.overlay.providers.get(cid, now)
        reachable = [rec for rec in records if self.overlay.is_provider_reachable(rec)]
        if not reachable:
            return HTTPResponse(status=404, cid=cid, served_by=backend)
        self._cache[cid] = now
        # Downloaded content is re-provided by the backend (§2 auto-scaling
        # default) — one of the mechanisms pulling content into the cloud.
        self.overlay.publish_provider_record(backend, cid)
        return HTTPResponse(status=200, cid=cid, served_by=backend)
