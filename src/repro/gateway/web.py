"""The Figure-1 end-to-end path: browser → DNSLink → gateway → IPFS.

The paper's Fig. 1 illustrates a web user fetching IPFS content through
the classical web: the browser resolves the domain's ``_dnslink`` TXT
record, follows the domain's A/CNAME/ALIAS records to a gateway or
proxy, and the gateway retrieves the content from the overlay.  This
module wires those pieces — the DNS resolver, the IPNS resolver for
``/ipns/`` targets, and the gateway services — into one client call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dns.records import DNSLINK_PREFIX, RRType, parse_dnslink_txt
from repro.dns.resolver import ResolutionError, Resolver
from repro.gateway.service import GatewayService, HTTPResponse
from repro.ids.cid import CID
from repro.ipns.resolver import IPNSResolver


@dataclass
class WebFetchResult:
    """Outcome of fetching ``http://<domain>/`` DNSLink-style."""

    domain: str
    status: int
    cid: Optional[CID] = None
    dnslink_kind: Optional[str] = None   # "ipfs" | "ipns"
    gateway_domain: Optional[str] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200


class WebClient:
    """An IPFS-agnostic browser fetching DNSLink sites over HTTP."""

    def __init__(
        self,
        dns_resolver: Resolver,
        services_by_ip: Dict[str, GatewayService],
        services_by_domain: Dict[str, GatewayService],
        ipns: Optional[IPNSResolver] = None,
    ) -> None:
        self.dns = dns_resolver
        #: gateway services reachable by frontend IP (A-record targets).
        self.services_by_ip = services_by_ip
        self.services_by_domain = services_by_domain
        self.ipns = ipns

    def _dnslink_target(self, domain: str):
        for value in self.dns.txt(f"{DNSLINK_PREFIX}.{domain}"):
            parsed = parse_dnslink_txt(value)
            if parsed is not None:
                return parsed
        return None

    def _resolve_cid(self, kind: str, target: str) -> Optional[CID]:
        if kind == "ipfs":
            try:
                return CID.from_base32(target)
            except ValueError:
                return None
        if kind == "ipns" and self.ipns is not None:
            return self.ipns.resolve_path(f"/ipns/{target}")
        return None

    def _service_for(self, domain: str) -> Optional[GatewayService]:
        """The gateway behind the domain's A records (following CNAME
        and ALIAS indirection, like a browser's connection would)."""
        try:
            addresses = self.dns.resolve_a(domain)
        except ResolutionError:
            return None
        for address in addresses:
            service = self.services_by_ip.get(address)
            if service is not None:
                return service
        # CNAME/ALIAS targets pointing straight at a public gateway domain.
        chain = self.dns.query(domain, RRType.CNAME)
        chain += self.dns.query(domain, RRType.ALIAS)
        for record in chain:
            service = self.services_by_domain.get(record.value.rstrip("."))
            if service is not None:
                return service
        return None

    def fetch(self, domain: str) -> WebFetchResult:
        """``GET http://<domain>/`` — the complete Fig. 1 interaction."""
        if not self.dns.soa_exists(domain):
            return WebFetchResult(domain, status=523, detail="NXDOMAIN")
        target = self._dnslink_target(domain)
        if target is None:
            return WebFetchResult(domain, status=404, detail="no DNSLink record")
        kind, value = target
        cid = self._resolve_cid(kind, value)
        if cid is None:
            return WebFetchResult(
                domain, status=404, dnslink_kind=kind, detail="unresolvable DNSLink target"
            )
        service = self._service_for(domain)
        if service is None:
            return WebFetchResult(
                domain, status=502, cid=cid, dnslink_kind=kind,
                detail="no gateway behind the domain",
            )
        response: HTTPResponse = service.http_get(cid)
        return WebFetchResult(
            domain,
            status=response.status,
            cid=cid,
            dnslink_kind=kind,
            gateway_domain=service.operator.domain,
            detail="cache" if response.from_cache else "fetched",
        )
