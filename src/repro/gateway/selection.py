"""Gateway selection policies (the §9 Brave discussion).

"Brave users can currently choose between a self-hosted IPFS node and a
default, cloud-based gateway.  Changing the default gateway to a random
one supported by a dynamic, permissionless discovery system could
maintain simplicity while avoiding reliance on cloud infrastructure."

This module implements both policies over the public gateway registry
and measures the traffic concentration each induces.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from typing import Dict, Optional

from repro.core.pareto import gini_coefficient
from repro.gateway.registry import PublicGatewayRegistry


class SelectionPolicy(enum.Enum):
    #: Everyone uses the browser's shipped default (the status quo).
    FIXED_DEFAULT = "fixed-default"
    #: Every request picks a uniformly random *functional* gateway from a
    #: permissionless discovery system (the paper's proposal).
    RANDOM_FUNCTIONAL = "random-functional"


DEFAULT_GATEWAY_DOMAIN = "cloudflare-ipfs.com"


class GatewaySelector:
    """Distributes user requests across gateways under a policy."""

    def __init__(
        self,
        registry: PublicGatewayRegistry,
        default_domain: str = DEFAULT_GATEWAY_DOMAIN,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not registry.check(default_domain):
            raise ValueError(f"default gateway {default_domain!r} is not functional")
        self.registry = registry
        self.default_domain = default_domain
        self.rng = rng or random.Random(0x5E1)
        self._functional = [entry.domain for entry in registry.functional_entries()]

    def select(self, policy: SelectionPolicy) -> str:
        """The gateway domain one request is sent to."""
        if policy is SelectionPolicy.FIXED_DEFAULT:
            return self.default_domain
        return self.rng.choice(self._functional)

    def simulate(self, policy: SelectionPolicy, requests: int) -> Dict[str, int]:
        """Request counts per gateway domain after ``requests`` requests."""
        tallies: Counter = Counter()
        for _ in range(requests):
            tallies[self.select(policy)] += 1
        return dict(tallies)

    def concentration(self, policy: SelectionPolicy, requests: int = 10_000) -> Dict[str, float]:
        """Concentration metrics of the induced traffic distribution.

        Returns the share of the busiest operator, the share handled by
        cloud-hosted gateways, and the Gini coefficient across the
        functional gateway set (unused gateways count as zero).
        """
        tallies = self.simulate(policy, requests)
        volumes = {domain: float(tallies.get(domain, 0)) for domain in self._functional}
        total = sum(volumes.values())
        busiest = max(volumes.values()) / total if total else 0.0
        cloud_requests = 0.0
        for domain, volume in volumes.items():
            operator = self.registry.operator_for(domain)
            if operator is not None and operator.provider is not None:
                cloud_requests += volume
        return {
            "busiest_gateway_share": busiest,
            "cloud_share": cloud_requests / total if total else 0.0,
            "gini": gini_coefficient(volumes),
        }
