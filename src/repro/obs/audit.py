"""Trace-driven invariant auditing: replay an event stream, check protocol laws.

A trace is more than a debugging aid — it is a machine-checkable record
of what the protocol actually did.  :func:`audit_trace` replays a trace
record stream (the output of :meth:`repro.obs.trace.Tracer.records`, or
anything :func:`repro.obs.trace.read_trace` loads) and verifies the
invariants the simulation is supposed to uphold:

* **span closure** — every span that begins also ends, properly nested
  within its origin's stream;
* **lookup progress** — within one lookup span, round indexes strictly
  increase and the best known XOR distance never increases (Kademlia
  lookups converge monotonically toward the target);
* **message causality** — no message is received before it was sent in
  simulated time;
* **relay discipline** — relay hops are only assigned between a NAT'd
  client and a DHT-server relay (§4 of the paper: only servers relay);
* **exec accounting** — every task lifecycle is submit → (retry)* →
  exactly one terminal done/failed event, with the terminal attempt
  count equal to one plus the retries observed (and, when the caller
  passes the campaign's ``ExecError`` list, failures match it).

Ring-buffer truncation is handled honestly: when a tracer reports
dropped events, closure and lifecycle findings for that origin are
demoted to warnings — an evicted begin event is not a protocol bug.
``repro obs audit`` wraps this as a CLI gate that exits non-zero on any
violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import BEGIN, END, INSTANT, Record

__all__ = ["AuditReport", "audit_trace"]

#: Span names whose instant children carry lookup-round progress.
_LOOKUP_SPANS = {"lookup.find_node", "lookup.find_providers"}


@dataclass
class AuditReport:
    """The outcome of one trace audit."""

    #: Hard invariant violations (each a one-line human-readable finding).
    violations: List[str] = field(default_factory=list)
    #: Findings demoted because the stream is known-incomplete.
    warnings: List[str] = field(default_factory=list)
    #: What was checked: ``events``, ``spans``, ``lookups``, ``messages``,
    #: ``relays``, ``tasks`` ...
    checked: Dict[str, int] = field(default_factory=dict)
    #: origin -> dropped-event count, for origins that overflowed.
    truncated: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """The human-readable audit report."""
        lines: List[str] = []
        scanned = ", ".join(
            f"{self.checked.get(key, 0)} {key}"
            for key in ("events", "spans", "lookups", "messages", "relays", "tasks")
        )
        lines.append(f"audited {scanned}")
        if self.truncated:
            drops = ", ".join(
                f"{origin} (-{count})" for origin, count in sorted(self.truncated.items())
            )
            lines.append(f"truncated origins: {drops} — closure findings demoted to warnings")
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend(f"  VIOLATION {finding}" for finding in self.violations)
        else:
            lines.append("no invariant violations")
        if self.warnings:
            lines.append(f"{len(self.warnings)} warning(s):")
            lines.extend(f"  warning {finding}" for finding in self.warnings)
        return "\n".join(lines)


def _where(record: Record) -> str:
    return (
        f"[origin={record.get('origin')} seq={record.get('seq')}"
        f" trace={record.get('trace')} name={record.get('name')}]"
    )


def audit_trace(
    records: Iterable[Record],
    exec_errors: Optional[Iterable[object]] = None,
) -> AuditReport:
    """Replay ``records`` and check every protocol invariant (see module docs).

    ``exec_errors`` optionally cross-checks the trace's ``exec.failed``
    events against the campaign's structured
    :class:`~repro.exec.engine.ExecError` list (task id and attempt
    count must agree).
    """
    report = AuditReport()
    checked = report.checked
    for key in ("events", "spans", "lookups", "messages", "relays", "tasks"):
        checked[key] = 0

    # per-origin stack of open spans: (span_id, name).
    open_spans: Dict[str, List[Tuple[int, str]]] = {}
    # (origin, span_id) -> (last_round, last_best) for lookup spans.
    lookup_state: Dict[Tuple[str, int], Tuple[int, Optional[int]]] = {}
    lookup_span_ids: Dict[str, set] = {}
    # task id -> {"submits": n, "retries": n, "terminal": [(name, attempts)]}.
    tasks: Dict[str, Dict[str, object]] = {}

    def flag(origin: str, finding: str) -> None:
        """File a finding, demoted to a warning for truncated origins."""
        if report.truncated.get(origin):
            report.warnings.append(finding)
        else:
            report.violations.append(finding)

    for record in records:
        rtype = record.get("type")
        origin = str(record.get("origin", ""))
        if rtype == "meta":
            dropped = int(record.get("dropped", 0) or 0)
            if dropped:
                report.truncated[origin] = report.truncated.get(origin, 0) + dropped
            continue
        checked["events"] += 1
        name = str(record.get("name", ""))
        attrs = record.get("attrs") or {}

        if rtype == BEGIN:
            checked["spans"] += 1
            span_id = record.get("span", 0)
            open_spans.setdefault(origin, []).append((span_id, name))
            if name in _LOOKUP_SPANS:
                checked["lookups"] += 1
                lookup_state[(origin, span_id)] = (-1, None)
                lookup_span_ids.setdefault(origin, set()).add(span_id)
        elif rtype == END:
            span_id = record.get("span", 0)
            stack = open_spans.get(origin) or []
            if not stack:
                flag(origin, f"span end without begin {_where(record)}")
            else:
                top_id, top_name = stack.pop()
                if top_id != span_id or top_name != name:
                    flag(
                        origin,
                        f"mis-nested span end: expected {top_name!r}#{top_id},"
                        f" got {name!r}#{span_id} {_where(record)}",
                    )
        elif rtype == INSTANT:
            if name == "lookup.round":
                parent = record.get("parent")
                state = lookup_state.get((origin, parent))
                if state is None:
                    flag(origin, f"lookup.round outside a lookup span {_where(record)}")
                else:
                    last_round, last_best = state
                    round_index = attrs.get("round")
                    best = attrs.get("best")
                    if not isinstance(round_index, int) or round_index <= last_round:
                        report.violations.append(
                            f"lookup round index not increasing:"
                            f" {round_index!r} after {last_round} {_where(record)}"
                        )
                        round_index = last_round
                    if best is not None and last_best is not None and best > last_best:
                        report.violations.append(
                            f"lookup best XOR distance increased:"
                            f" {best} after {last_best} {_where(record)}"
                        )
                    if best is None:
                        best = last_best
                    lookup_state[(origin, parent)] = (round_index, best)
            elif name == "msg.query":
                checked["messages"] += 1
                sent, recv = attrs.get("sent"), attrs.get("recv")
                if sent is None or recv is None:
                    report.violations.append(
                        f"msg.query missing sent/recv timestamps {_where(record)}"
                    )
                elif recv < sent:
                    report.violations.append(
                        f"message received before sent in sim-time:"
                        f" recv={recv} < sent={sent} {_where(record)}"
                    )
            elif name == "relay.assign":
                checked["relays"] += 1
                if not attrs.get("client_nat"):
                    report.violations.append(
                        f"relay assigned to a non-NAT'd client {_where(record)}"
                    )
                if not attrs.get("relay_server"):
                    report.violations.append(
                        f"relay hop through a non-server peer {_where(record)}"
                    )
            elif name.startswith("exec."):
                task_id = str(attrs.get("task"))
                state = tasks.setdefault(
                    task_id, {"submits": 0, "retries": 0, "terminal": []}
                )
                if name == "exec.submit":
                    state["submits"] += 1
                elif name == "exec.retry":
                    state["retries"] += 1
                elif name in ("exec.done", "exec.failed"):
                    state["terminal"].append((name, attrs.get("attempts")))

    # Leftover open spans = begins that never ended.
    for origin, stack in open_spans.items():
        for span_id, name in stack:
            flag(origin, f"span never closed: {name!r}#{span_id} [origin={origin}]")

    # Exec lifecycle accounting.
    checked["tasks"] = len(tasks)
    for task_id, state in sorted(tasks.items()):
        terminal = state["terminal"]
        where = f"[task={task_id}]"
        if state["submits"] == 0:
            flag("main", f"exec terminal/retry event without a submit {where}")
        if len(terminal) != 1:
            flag(
                "main",
                f"expected exactly one terminal exec event, saw"
                f" {[name for name, _ in terminal]} {where}",
            )
            continue
        name, attempts = terminal[0]
        if attempts is not None and attempts - 1 != state["retries"]:
            report.violations.append(
                f"retry count mismatch: terminal {name} reports"
                f" {attempts} attempt(s) but {state['retries']} retry event(s) {where}"
            )

    # Optional cross-check against the campaign's structured ExecErrors.
    if exec_errors is not None:
        failed_in_trace = {
            task_id: state["terminal"][0][1]
            for task_id, state in tasks.items()
            if len(state["terminal"]) == 1 and state["terminal"][0][0] == "exec.failed"
        }
        for error in exec_errors:
            task_id = str(getattr(error, "task_id", error))
            attempts = getattr(error, "attempts", None)
            traced = failed_in_trace.pop(task_id, None)
            if traced is None:
                report.violations.append(
                    f"ExecError for task {task_id} has no exec.failed trace event"
                )
            elif attempts is not None and traced != attempts:
                report.violations.append(
                    f"ExecError attempts mismatch for task {task_id}:"
                    f" trace={traced} record={attempts}"
                )
        for task_id in sorted(failed_in_trace):
            report.violations.append(
                f"exec.failed trace event for task {task_id} has no ExecError record"
            )

    return report
