"""Mergeable streaming sketches for live campaign analytics.

Every headline figure in the paper (§4-§6) is a share, a CCDF tail or a
heavy-hitter ranking — all of which have classic bounded-memory streaming
summaries.  This module provides the zero-dependency sketch substrate the
:mod:`repro.obs.stream` engine is built on:

* :class:`SpaceSaving` — the Metwally et al. top-K heavy-hitter summary
  (peer IDs, IPs, CIDs).  Every tracked key carries an overestimation
  bound; merging follows the parallel-Space-Saving rule (minimum-count
  floors absorb possible evicted mass), so tracked keys keep the
  classic ``error ≤ total / capacity`` guarantee across merges.
* :class:`QuantileSketch` — a KLL-style compactor hierarchy for rank /
  quantile / CCDF queries over unbounded value streams, with
  *deterministic* alternating compaction (no RNG: the same update
  sequence always yields the same state, which is what the workers=1 ≡
  workers=N parity pins rely on).  ``epsilon`` is the sketch's declared
  rank-error target; the test suite verifies observed error stays inside
  it across distributions, sizes and merge plans.
* :class:`LinearCounter` — a linear-counting bitmap for distinct-count
  estimates (how many peers are behind the traffic), mergeable by OR.
  Keys are hashed with BLAKE2b, never ``hash()``, so estimates are
  independent of ``PYTHONHASHSEED``.
* :class:`WindowedCounters` — exact per-label tallies bucketed into
  fixed time windows (the per-class request shares of §5), mergeable by
  addition.

All sketches are keyed by *stable strings* (base58 peer IDs, dotted
IPs, base32 CIDs), serialize to JSON-compatible state dicts
(``to_state`` / ``from_state``) and merge deterministically: folding
per-worker states in a fixed (crawl) order produces bit-identical merged
state no matter which process produced each part.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LinearCounter",
    "QuantileSketch",
    "SpaceSaving",
    "WindowedCounters",
]


# ---------------------------------------------------------------------------
# Space-Saving heavy hitters
# ---------------------------------------------------------------------------


class SpaceSaving:
    """Top-K heavy hitters with per-key overestimation bounds.

    Tracks at most ``capacity`` keys.  A new key arriving at a full
    summary evicts the current minimum and inherits its count as its
    error bound — the Space-Saving rule — so for every tracked key::

        true_count <= count  and  count - error <= true_count

    and for every key (tracked or not) the absolute error is bounded by
    ``total / capacity``.  Merging follows the parallel-Space-Saving
    rule: counts and error bounds add, and a key present in only one
    summary absorbs the *other* summary's minimum count (its possible
    evicted mass) into both count and error before the union is
    truncated back to ``capacity`` (largest counts first, ties broken
    by ascending error then key).  After a merge, tracked keys keep the
    invariant above with ``error ≤ total / capacity``; an untracked
    key's true count is bounded by ``2 · total / capacity``.
    """

    __slots__ = ("capacity", "total", "_counts", "_errors", "_heap", "_seq")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("SpaceSaving capacity must be >= 1")
        self.capacity = capacity
        self.total = 0
        self._counts: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        #: lazy min-heap of (count, seq, key); stale entries (count no
        #: longer current) are dropped or refreshed at eviction time.
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._counts)

    def update(self, key: str, amount: int = 1) -> None:
        self.total += amount
        counts = self._counts
        current = counts.get(key)
        if current is not None:
            counts[key] = current + amount
            return
        if len(counts) < self.capacity:
            counts[key] = amount
            self._errors[key] = 0
            self._seq += 1
            heapq.heappush(self._heap, (amount, self._seq, key))
            return
        evicted, floor = self._pop_min()
        del counts[evicted]
        del self._errors[evicted]
        counts[key] = floor + amount
        self._errors[key] = floor
        self._seq += 1
        heapq.heappush(self._heap, (floor + amount, self._seq, key))

    def _pop_min(self) -> Tuple[str, int]:
        """Pop the key with the smallest *current* count (lazy heap)."""
        heap = self._heap
        counts = self._counts
        while True:
            count, seq, key = heap[0]
            current = counts.get(key)
            if current == count:
                heapq.heappop(heap)
                return key, count
            heapq.heappop(heap)
            if current is not None:
                # refreshed entry keeps its insertion sequence so ties
                # stay deterministic
                heapq.heappush(heap, (current, seq, key))

    def count(self, key: str) -> int:
        """The (over-)estimated count for ``key`` (0 if untracked)."""
        return self._counts.get(key, 0)

    def error(self, key: str) -> int:
        return self._errors.get(key, 0)

    @property
    def max_error(self) -> float:
        """Upper bound on any key's estimation error."""
        return self.total / self.capacity if self.capacity else 0.0

    def top(self, k: int) -> List[Tuple[str, int, int]]:
        """The ``k`` largest entries as ``(key, count, error)``, ordered
        by descending count (ties: ascending error, then key)."""
        entries = [
            (key, count, self._errors[key]) for key, count in self._counts.items()
        ]
        entries.sort(key=lambda entry: (-entry[1], entry[2], entry[0]))
        return entries[:k]

    def top_sum(self, k: int) -> int:
        """Summed counts of the ``k`` largest entries."""
        return sum(count for _, count, _ in self.top(k))

    def _min_floor(self) -> int:
        """The largest count an *untracked* key could have accumulated
        in this summary: the minimum tracked count when the summary is
        full (an eviction may have absorbed the key's mass), zero when
        it never evicted (absent means never seen)."""
        if len(self._counts) < self.capacity:
            return 0
        return min(self._counts.values())

    def merge(self, other: "SpaceSaving") -> None:
        """Fold ``other`` into this summary (deterministic).

        Keys present on one side only absorb the other side's
        :meth:`_min_floor` into count and error — without it a key
        evicted from one part would merge as a plain underestimate and
        truncation could drop it while its true count still exceeded
        ``total / capacity`` (the parallel-Space-Saving correction).
        """
        self_floor = self._min_floor()
        other_floor = other._min_floor()
        counts = self._counts
        errors = self._errors
        other_counts = other._counts
        for key, count in other_counts.items():
            if key in counts:
                counts[key] += count
                errors[key] += other._errors[key]
            else:
                counts[key] = count + self_floor
                errors[key] = other._errors[key] + self_floor
        if other_floor:
            for key in counts:
                if key not in other_counts:
                    counts[key] += other_floor
                    errors[key] += other_floor
        self.total += other.total
        if len(counts) > self.capacity:
            ranked = sorted(
                counts.items(), key=lambda item: (-item[1], errors[item[0]], item[0])
            )
            keep = ranked[: self.capacity]
            self._counts = {key: count for key, count in keep}
            self._errors = {key: errors[key] for key, _ in keep}
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._seq = len(self._counts)
        self._heap = [
            (count, seq, key)
            for seq, (key, count) in enumerate(self._counts.items())
        ]
        heapq.heapify(self._heap)

    # -- state -------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "total": self.total,
            "entries": [
                [key, count, self._errors[key]]
                for key, count in self._counts.items()
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SpaceSaving":
        sketch = cls(capacity=int(state["capacity"]))
        sketch.total = int(state["total"])
        for key, count, error in state["entries"]:
            sketch._counts[key] = int(count)
            sketch._errors[key] = int(error)
        sketch._rebuild_heap()
        return sketch


# ---------------------------------------------------------------------------
# KLL-style quantile sketch (deterministic compaction)
# ---------------------------------------------------------------------------


class QuantileSketch:
    """Streaming rank/quantile summary with deterministic compaction.

    A hierarchy of compactors: level ``h`` holds items of weight
    ``2**h``.  When the sketch exceeds its size budget the fullest-over-
    budget level is sorted and every other item is promoted one level up
    (the kept parity alternates per level — deterministic, no RNG), the
    rest are discarded.  This is the KLL/MRL compaction scheme with the
    random coin replaced by strict alternation, which keeps the sketch a
    pure function of its update/merge sequence.

    ``epsilon`` is the *declared* rank-error target (a fraction of the
    stream length).  The test suite pins observed error below it across
    uniform / Zipf / sorted / constant streams and 4-way merges; callers
    treat quantile answers as ``±epsilon``-rank approximations.
    """

    __slots__ = ("k", "epsilon", "n", "levels", "_parity")

    def __init__(self, k: int = 256, epsilon: float = 0.02) -> None:
        if k < 8:
            raise ValueError("QuantileSketch k must be >= 8")
        self.k = k
        self.epsilon = epsilon
        self.n = 0
        self.levels: List[List[float]] = [[]]
        self._parity: List[bool] = [False]

    def __len__(self) -> int:
        return self.n

    # -- size bookkeeping --------------------------------------------------

    def _cap(self, level: int) -> int:
        """Capacity of ``level`` under the (2/3)-decay KLL schedule."""
        depth = len(self.levels) - 1 - level
        return max(2, int(math.ceil(self.k * (2.0 / 3.0) ** depth)))

    def _size(self) -> int:
        return sum(len(level) for level in self.levels)

    def _budget(self) -> int:
        return sum(self._cap(level) for level in range(len(self.levels)))

    def update(self, value: float) -> None:
        self.levels[0].append(value)
        self.n += 1
        if self._size() > self._budget():
            self._compress()

    def _compress(self) -> None:
        for level in range(len(self.levels)):
            if len(self.levels[level]) >= self._cap(level):
                self._compact(level)
                return

    def _compact(self, level: int) -> None:
        items = sorted(self.levels[level])
        if len(items) < 2:
            return
        if level + 1 == len(self.levels):
            self.levels.append([])
            self._parity.append(False)
        # An odd item stays behind at its own level so no weight is lost.
        leftover: List[float] = []
        if len(items) % 2:
            leftover.append(items[-1])
            items = items[:-1]
        offset = 1 if self._parity[level] else 0
        self._parity[level] = not self._parity[level]
        self.levels[level] = leftover
        self.levels[level + 1].extend(items[offset::2])

    # -- queries -----------------------------------------------------------

    def _weighted_items(self) -> List[Tuple[float, int]]:
        items: List[Tuple[float, int]] = []
        for level, values in enumerate(self.levels):
            weight = 1 << level
            items.extend((value, weight) for value in values)
        items.sort(key=lambda pair: pair[0])
        return items

    def rank(self, value: float) -> int:
        """Estimated number of stream items ``<= value``."""
        total = 0
        for level, values in enumerate(self.levels):
            weight = 1 << level
            total += weight * sum(1 for item in values if item <= value)
        return total

    def cdf(self, value: float) -> float:
        return self.rank(value) / self.n if self.n else 0.0

    def quantile(self, fraction: float) -> float:
        """The value at rank ``fraction * n`` (0 < fraction <= 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        items = self._weighted_items()
        if not items:
            return 0.0
        target = fraction * self.n
        cumulative = 0
        for value, weight in items:
            cumulative += weight
            if cumulative >= target:
                return value
        return items[-1][0]

    def quantiles(self, fractions: Sequence[float]) -> Dict[str, float]:
        """Several quantiles in one weighted pass, keyed ``"p50"``-style."""
        items = self._weighted_items()
        out: Dict[str, float] = {}
        if not items or not self.n:
            return {_fraction_label(q): 0.0 for q in fractions}
        cumulative: List[int] = []
        running = 0
        for _, weight in items:
            running += weight
            cumulative.append(running)
        for q in sorted(fractions):
            if not 0.0 < q <= 1.0:
                raise ValueError("fraction must be in (0, 1]")
            target = q * self.n
            index = bisect_left(cumulative, target)
            index = min(index, len(items) - 1)
            out[_fraction_label(q)] = items[index][0]
        return out

    # -- merge and state ---------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        while len(self.levels) < len(other.levels):
            self.levels.append([])
            self._parity.append(False)
        for level, values in enumerate(other.levels):
            self.levels[level].extend(values)
        self.n += other.n
        self.epsilon = max(self.epsilon, other.epsilon)
        while self._size() > self._budget():
            self._compress()

    def to_state(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "epsilon": self.epsilon,
            "n": self.n,
            "levels": [list(level) for level in self.levels],
            "parity": [bool(flag) for flag in self._parity],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(k=int(state["k"]), epsilon=float(state["epsilon"]))
        sketch.n = int(state["n"])
        sketch.levels = [list(level) for level in state["levels"]]
        sketch._parity = [bool(flag) for flag in state["parity"]]
        if not sketch.levels:
            sketch.levels = [[]]
            sketch._parity = [False]
        return sketch


def _fraction_label(fraction: float) -> str:
    """``0.5`` → ``"p50"``; ``0.999`` → ``"p99.9"``."""
    percent = fraction * 100.0
    if abs(percent - round(percent)) < 1e-9:
        return f"p{int(round(percent))}"
    return f"p{percent:g}"


# ---------------------------------------------------------------------------
# linear-counting distinct estimator
# ---------------------------------------------------------------------------


class LinearCounter:
    """Distinct-count estimate via a linear-counting bitmap.

    ``estimate = -m * ln(zero_bits / m)`` over an ``m``-bit map, accurate
    to ~1 % while the load factor stays moderate (distinct counts up to a
    few times ``m`` — the default 32768 bits covers the fixture-scale
    peer/IP populations; at saturation the estimate degrades, which the
    snapshot reports via ``saturated``).  Merging is bitwise OR.  Hashing
    is BLAKE2b of the key string, so estimates are reproducible across
    processes and ``PYTHONHASHSEED`` values.
    """

    __slots__ = ("bits", "_map")

    def __init__(self, bits: int = 1 << 15) -> None:
        if bits < 64 or bits & 7:
            raise ValueError("LinearCounter bits must be >= 64 and a multiple of 8")
        self.bits = bits
        self._map = bytearray(bits >> 3)

    def update(self, key: str) -> None:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        position = int.from_bytes(digest, "big") % self.bits
        self._map[position >> 3] |= 1 << (position & 7)

    def _ones(self) -> int:
        return sum(bin(byte).count("1") for byte in self._map)

    @property
    def saturated(self) -> bool:
        return self._ones() >= self.bits - max(1, self.bits // 256)

    def estimate(self) -> float:
        zeros = self.bits - self._ones()
        if zeros <= 0:
            return float(self.bits * 8)  # saturated: report a floor
        return -self.bits * math.log(zeros / self.bits)

    def merge(self, other: "LinearCounter") -> None:
        if other.bits != self.bits:
            raise ValueError("cannot merge LinearCounters of different widths")
        self._map = bytearray(a | b for a, b in zip(self._map, other._map))

    def to_state(self) -> Dict[str, object]:
        return {"bits": self.bits, "map": self._map.hex()}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LinearCounter":
        counter = cls(bits=int(state["bits"]))
        counter._map = bytearray(bytes.fromhex(state["map"]))
        return counter


# ---------------------------------------------------------------------------
# exact windowed per-label counters
# ---------------------------------------------------------------------------


class WindowedCounters:
    """Per-label tallies bucketed into fixed-width time windows.

    Exact (these are plain counts, cheap enough to keep), mergeable by
    addition, with both all-time totals and per-window slices — the
    per-class request shares of §5, reportable mid-campaign.
    """

    __slots__ = ("window_seconds", "totals", "windows")

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self.totals: Dict[str, int] = {}
        self.windows: Dict[int, Dict[str, int]] = {}

    def update(self, timestamp: float, label: str, amount: int = 1) -> None:
        index = int(timestamp // self.window_seconds)
        self.totals[label] = self.totals.get(label, 0) + amount
        window = self.windows.get(index)
        if window is None:
            window = self.windows[index] = {}
        window[label] = window.get(label, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.totals.values())

    def shares(self) -> Dict[str, float]:
        total = self.total
        if not total:
            return {}
        return {
            label: count / total for label, count in sorted(self.totals.items())
        }

    def window_shares(self, index: int) -> Dict[str, float]:
        window = self.windows.get(index, {})
        total = sum(window.values())
        if not total:
            return {}
        return {label: count / total for label, count in sorted(window.items())}

    def latest_window(self) -> Optional[int]:
        return max(self.windows) if self.windows else None

    def merge(self, other: "WindowedCounters") -> None:
        if other.window_seconds != self.window_seconds:
            raise ValueError("cannot merge WindowedCounters of different widths")
        for label, count in other.totals.items():
            self.totals[label] = self.totals.get(label, 0) + count
        for index, window in other.windows.items():
            mine = self.windows.get(index)
            if mine is None:
                mine = self.windows[index] = {}
            for label, count in window.items():
                mine[label] = mine.get(label, 0) + count

    def to_state(self) -> Dict[str, object]:
        return {
            "window_seconds": self.window_seconds,
            "totals": dict(sorted(self.totals.items())),
            "windows": [
                [index, dict(sorted(window.items()))]
                for index, window in sorted(self.windows.items())
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "WindowedCounters":
        counters = cls(window_seconds=float(state["window_seconds"]))
        counters.totals = {
            str(label): int(count) for label, count in state["totals"].items()
        }
        counters.windows = {
            int(index): {str(label): int(count) for label, count in window.items()}
            for index, window in state["windows"]
        }
        return counters
