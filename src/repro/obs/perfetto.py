"""Chrome trace-event / Perfetto JSON export for trace record streams.

Converts the flat records produced by :meth:`repro.obs.trace.Tracer.
records` into the Chrome trace-event JSON object format, which
``ui.perfetto.dev`` (and ``chrome://tracing``) open directly: each
tracer *origin* becomes a process (the campaign runner is ``main``,
every crawl task ``crawl-<id>``), each causal tree a thread track, so a
campaign renders as one lane per lookup/crawl with nested spans inside.

Timestamps are the *simulated* clock in microseconds.  Within one
origin the sim clock can stand still (a crawl task runs at a frozen
``started_at``), which would collapse spans to zero width — the
exporter therefore bumps each event at least 1 µs past its
predecessor on the same origin, preserving emission order without
touching the stored records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.obs.trace import BEGIN, END, INSTANT, Record

__all__ = ["chrome_trace", "write_chrome_trace"]

#: record type -> Chrome trace-event phase.
_PHASES = {BEGIN: "B", END: "E", INSTANT: "i"}


def chrome_trace(records: Iterable[Record]) -> Dict[str, object]:
    """Build the Chrome trace-event JSON object for a record stream."""
    events: List[Dict[str, object]] = []
    pids: Dict[str, int] = {}
    last_ts: Dict[str, int] = {}
    metadata: Dict[str, object] = {}
    for record in records:
        rtype = record.get("type")
        if rtype == "meta":
            metadata[str(record.get("origin", ""))] = {
                key: record[key]
                for key in ("emitted", "dropped", "muted", "capacity", "sample", "traces")
                if key in record
            }
            continue
        phase = _PHASES.get(rtype)
        if phase is None:
            continue
        origin = str(record.get("origin", ""))
        pid = pids.get(origin)
        if pid is None:
            pid = pids[origin] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": origin},
                }
            )
        ts = int(round(float(record.get("sim", 0.0)) * 1_000_000))
        floor = last_ts.get(origin)
        if floor is not None and ts <= floor:
            ts = floor + 1
        last_ts[origin] = ts
        event: Dict[str, object] = {
            "ph": phase,
            "name": str(record.get("name", "")),
            "pid": pid,
            "tid": record.get("trace", 0),
            "ts": ts,
            "args": dict(record.get("attrs") or {}),
        }
        if phase == "i":
            event["s"] = "t"
        events.append(event)
    trace: Dict[str, object] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        trace["otherData"] = {"tracers": metadata}
    return trace


def write_chrome_trace(records: Iterable[Record], path) -> int:
    """Write the Chrome trace-event JSON; returns the event count."""
    trace = chrome_trace(records)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with open(destination, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])
