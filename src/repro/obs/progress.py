"""Live campaign progress: a single-line heartbeat on stderr.

Paper-scale campaigns run for hours with no output until the figures
land.  :class:`ProgressReporter` gives the operator a pulse without
touching determinism: it writes a one-line, carriage-return-overwritten
status to *stderr* (stdout stays clean for piped results), throttled on
the wall clock so the tick loop pays one ``time.monotonic()`` call per
update in the common (suppressed) case::

    [simulate] day 3/8 · tick 98/288 · crawl 29/81 | 12,410 ev/s · buf 37% · eta 1m42s

The events/s rate and ring-buffer occupancy come from the campaign's
tracer when tracing is enabled; with streaming analytics on
(``--stream`` / ``--live``, see :mod:`repro.obs.stream`) the line grows
sketch-derived headline fields (running cloud share and top provider)::

    [simulate] day 3/8 · tick 98/288 | 61,021 ev · cloud 62% · top aws · eta 1m42s

With both off the heartbeat shows phase and progress only.  Nothing
here feeds back into the simulation — the stream is only *read* — no
RNG draws, no sim-clock reads — so ``--progress`` never perturbs
outputs.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, Tuple

__all__ = ["ProgressReporter", "format_duration"]


def format_duration(seconds: float) -> str:
    """``95`` → ``1m35s``; ``4000`` → ``1h06m``; sub-minute → ``42s``."""
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Render campaign progress as one overwritten stderr line.

    ``interval`` is the minimum wall-clock gap between renders;
    ``clock`` and ``stream`` are injectable for tests.
    """

    def __init__(
        self,
        stream=None,
        interval: float = 0.5,
        clock=time.monotonic,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval
        self._clock = clock
        self._started: Optional[float] = None
        self._last_render: Optional[float] = None
        self._last_emitted = 0
        self._last_emitted_at: Optional[float] = None
        self._rate: Optional[float] = None
        self._line_width = 0
        self.renders = 0

    # -- internals ---------------------------------------------------------

    def _events_per_second(self, tracer, now: float) -> Optional[float]:
        if tracer is None or not getattr(tracer, "enabled", False):
            return None
        emitted = tracer.emitted + tracer.muted
        if self._last_emitted_at is not None:
            elapsed = now - self._last_emitted_at
            if elapsed > 0:
                self._rate = (emitted - self._last_emitted) / elapsed
        self._last_emitted = emitted
        self._last_emitted_at = now
        return self._rate

    @staticmethod
    def _stream_extras(analytics) -> list:
        """Sketch-derived heartbeat fields (read-only; see module docs)."""
        if analytics is None or not getattr(analytics, "enabled", False):
            return []
        extras = []
        try:
            headline = analytics.headline()
        except Exception:  # pragma: no cover - heartbeat must never raise
            return []
        events = headline.get("events", 0)
        if events:
            extras.append(f"{events:,} ev")
        cloud = headline.get("cloud_share_by_volume")
        if cloud is not None:
            extras.append(f"cloud {cloud:.0%}")
        top = headline.get("top_provider")
        if top:
            extras.append(f"top {top}")
        return extras

    def _write(self, line: str) -> None:
        # Pad to the widest line so a shrinking status leaves no residue.
        self._line_width = max(self._line_width, len(line))
        self._stream.write("\r" + line.ljust(self._line_width))
        try:
            self._stream.flush()
        except Exception:  # pragma: no cover - stream without flush
            pass
        self.renders += 1

    # -- public API --------------------------------------------------------

    def update(
        self,
        phase: str,
        step: int,
        total: int,
        day: Optional[Tuple[int, int]] = None,
        crawls: Optional[Tuple[int, int]] = None,
        tracer=None,
        analytics=None,
        force: bool = False,
    ) -> None:
        """Report progress; renders at most once per ``interval`` seconds.

        ``step``/``total`` drive the ETA (elapsed time scaled by the
        remaining fraction); ``day`` and ``crawls`` are optional
        ``(current, total)`` pairs for the phase-specific detail;
        ``analytics`` is an optional :class:`repro.obs.stream.StreamAnalytics`
        whose headline estimates (event count, running cloud share, top
        provider) are appended when streaming is enabled.
        """
        now = self._clock()
        if self._started is None:
            self._started = now
        if (
            not force
            and self._last_render is not None
            and now - self._last_render < self._interval
        ):
            return
        self._last_render = now
        parts = [f"[{phase}]"]
        if day is not None:
            parts.append(f"day {day[0]}/{day[1]}")
        parts.append(f"tick {step}/{total}")
        if crawls is not None:
            parts.append(f"crawl {crawls[0]}/{crawls[1]}")
        detail = " · ".join(parts[1:])
        line = f"{parts[0]} {detail}" if detail else parts[0]
        rate = self._events_per_second(tracer, now)
        extras = []
        if rate is not None:
            extras.append(f"{rate:,.0f} ev/s")
            capacity = getattr(tracer, "capacity", 0)
            if capacity:
                extras.append(f"buf {len(tracer) / capacity:3.0%}")
        extras.extend(self._stream_extras(analytics))
        if step and total > step:
            eta = (now - self._started) * (total - step) / step
            extras.append(f"eta {format_duration(eta)}")
        if extras:
            line = f"{line} | {' · '.join(extras)}"
        self._write(line)

    def finish(self, message: Optional[str] = None) -> None:
        """Terminate the status line (optionally replacing it first)."""
        if message is not None:
            self._write(message)
        if self.renders:
            self._stream.write("\n")
            try:
                self._stream.flush()
            except Exception:  # pragma: no cover
                pass
