"""Metrics exporters: store-backed event streams, JSON, summary tables.

A metrics snapshot travels in three shapes:

* a **record stream** — one flat record per metric, stored through any
  :mod:`repro.store` backend (JSONL file, SQLite database, memory), so
  metrics ride the same storage substrate as the monitor logs;
* a **flat JSON snapshot** — the dict from
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, written verbatim
  to a ``.json`` file;
* a **human-readable report** — the per-phase timing tree plus counter /
  gauge / histogram tables that ``repro obs report`` prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

#: A flat JSON-compatible metric record (mirrors ``repro.store.Record``;
#: the store layer is imported lazily so ``repro.obs`` has no import-time
#: dependencies beyond the stdlib).
Record = Dict[str, object]

#: File suffixes stored as flat JSON rather than a record stream.
_FLAT_JSON_SUFFIXES = {".json"}


def _as_backend(destination):
    """``destination`` if it is a StorageBackend, else ``None``."""
    from repro.store.backend import StorageBackend

    return destination if isinstance(destination, StorageBackend) else None


def metrics_to_records(snapshot: Dict[str, object]) -> List[Record]:
    """Flatten a snapshot into one storage record per metric."""
    records: List[Record] = []
    for name, value in snapshot.get("counters", {}).items():
        records.append({"kind": "counter", "name": name, "value": value})
    for name, value in snapshot.get("gauges", {}).items():
        records.append({"kind": "gauge", "name": name, "value": value})
    for name, data in snapshot.get("histograms", {}).items():
        records.append({"kind": "histogram", "name": name, **data})
    for path, data in snapshot.get("spans", {}).items():
        records.append(
            {
                "kind": "span",
                "name": path,
                "count": data["count"],
                "seconds": data["seconds"],
                "errors": data.get("errors", 0),
            }
        )
    return records


def records_to_snapshot(records: Iterable[Record]) -> Dict[str, object]:
    """Rebuild a snapshot dict from a metric record stream."""
    snapshot: Dict[str, object] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": {},
    }
    for record in records:
        kind, name = record.get("kind"), record.get("name")
        if kind == "counter":
            snapshot["counters"][name] = record["value"]
        elif kind == "gauge":
            snapshot["gauges"][name] = record["value"]
        elif kind == "histogram":
            snapshot["histograms"][name] = {
                key: record[key]
                for key in ("buckets", "counts", "count", "sum", "min", "max")
            }
        elif kind == "span":
            snapshot["spans"][name] = {
                "count": record["count"],
                "seconds": record["seconds"],
                "errors": record.get("errors", 0),
            }
        else:
            raise ValueError(f"unknown metric record kind: {kind!r}")
    return snapshot


def write_metrics(snapshot: Dict[str, object], destination) -> int:
    """Persist a snapshot; returns the number of metrics written.

    ``destination`` is a :class:`~repro.store.backend.StorageBackend` or
    a path — ``.json`` stores the flat snapshot, ``.jsonl`` / ``.sqlite``
    / ``.db`` store the record stream through the matching backend
    (replacing any previous content, not appending to it).
    """
    records = metrics_to_records(snapshot)
    backend = _as_backend(destination)
    if backend is not None:
        backend.clear()
        backend.extend(records)
        backend.flush()
        return len(records)
    path = Path(destination)
    if path.suffix.lower() in _FLAT_JSON_SUFFIXES:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        return len(records)
    from repro.store import open_file_backend

    backend = open_file_backend(path)
    try:
        backend.clear()
        backend.extend(records)
        backend.flush()
    finally:
        backend.close()
    return len(records)


def read_metrics(source) -> Dict[str, object]:
    """Load a snapshot written by :func:`write_metrics`."""
    backend = _as_backend(source)
    if backend is not None:
        return records_to_snapshot(backend.scan())
    path = Path(source)
    if path.suffix.lower() in _FLAT_JSON_SUFFIXES:
        with open(path) as handle:
            return json.load(handle)
    from repro.store import open_file_backend

    backend = open_file_backend(path)
    try:
        return records_to_snapshot(backend.scan())
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# the human-readable report
# ---------------------------------------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:9.0f}s"
    if seconds >= 0.1:
        return f"{seconds:9.2f}s"
    return f"{seconds * 1000:8.2f}ms"


def _span_rows(spans: Dict[str, Dict[str, float]]) -> List[str]:
    """The phase-timing tree: indented by depth, with self-time.

    Self-time is a phase's total minus the time of its *direct*
    children, attributing every second to exactly one row.
    """
    children_total: Dict[str, float] = {}
    for path, data in spans.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            children_total[parent] = children_total.get(parent, 0.0) + data["seconds"]
    rows = []
    for path in sorted(spans):
        data = spans[path]
        depth = path.count("/")
        label = ("  " * depth) + path.rsplit("/", 1)[-1]
        self_seconds = data["seconds"] - children_total.get(path, 0.0)
        rows.append(
            f"  {label:<38} {data['count']:>7} {_format_seconds(data['seconds'])}"
            f" {_format_seconds(self_seconds)} {data.get('errors', 0):>7}"
        )
    return rows


def _top_names(table: Dict[str, object], key, top: "int | None") -> List[str]:
    """Row order for a metric table: by name, or by ``key`` desc when capped."""
    if top is None:
        return sorted(table)
    ranked = sorted(table, key=lambda name: (-key(table[name]), name))
    return ranked[:top]


def render_report(snapshot: Dict[str, object], top: "int | None" = None) -> str:
    """Render a snapshot as the ``repro obs report`` summary table.

    With ``top=N`` the counter/gauge/histogram tables are sorted by
    magnitude (value, value, observation count) and capped at N rows;
    the phase tree keeps its hierarchy and is never capped.
    """
    lines: List[str] = []
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("phase timings")
        lines.append(
            f"  {'phase':<38} {'count':>7} {'total':>10} {'self':>10} {'errors':>7}"
        )
        lines.extend(_span_rows(spans))
    counters = snapshot.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        lines.append("counters")
        for name in _top_names(counters, float, top):
            value = counters[name]
            text = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {name:<46} {text:>14}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges")
        for name in _top_names(gauges, float, top):
            lines.append(f"  {name:<46} {gauges[name]:>14g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms")
        lines.append(
            f"  {'name':<34} {'count':>9} {'mean':>12} {'min':>10} {'max':>10}"
        )
        for name in _top_names(histograms, lambda data: data["count"], top):
            data = histograms[name]
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            low = data["min"] if data["min"] is not None else 0.0
            high = data["max"] if data["max"] is not None else 0.0
            lines.append(
                f"  {name:<34} {count:>9} {mean:>12.2f} {low:>10.2f} {high:>10.2f}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
