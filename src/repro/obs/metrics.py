"""The metrics registry: counters, gauges, fixed-bucket histograms, spans.

A :class:`MetricsRegistry` is a plain in-process container — no threads,
no sockets, no dependencies — that instrumented code reports into through
the module-level helpers (:func:`inc`, :func:`observe`, :func:`span`,
...).  The helpers dispatch to the *active* registry, which defaults to
:data:`NULL_REGISTRY`, a null object whose operations are single no-op
method calls — cheap enough to leave the instrumentation permanently
compiled into the hot paths.  Campaigns install a real registry with
:func:`use_registry` only when :attr:`ScenarioConfig.metrics` asks for
one, so the default simulation path is observationally (and
bit-)identical to the uninstrumented code.

Snapshots are flat JSON-compatible dicts (see :meth:`MetricsRegistry.
snapshot`) and merge deterministically: merging per-task snapshots in
task order yields the same totals no matter which worker produced them —
the same contract as the sharded-log heap-merge.  Wall-clock quantities
(span timings and ``*_seconds`` histograms) are inherently
non-deterministic; :func:`deterministic_view` strips them, leaving the
portion that must be bit-identical across worker counts.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NONDETERMINISTIC_COUNTERS",
    "NULL_REGISTRY",
    "NullRegistry",
    "TIME_BUCKETS",
    "deterministic_view",
    "disable",
    "enable",
    "get_registry",
    "inc",
    "observe",
    "set_gauge",
    "set_registry",
    "span",
    "use_registry",
]

#: Default histogram buckets for count-like quantities (upper bounds;
#: one implicit overflow bucket catches everything above the last bound).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
    25_000, 50_000, 100_000,
)

#: Default buckets for durations in seconds.
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 180.0, 600.0,
)


class Counter:
    """A monotonically increasing number."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are inclusive upper bounds; ``counts`` has one extra
    trailing slot for observations above the last bound.  Fixed buckets
    keep snapshots mergeable: two histograms with the same bounds merge
    by element-wise addition.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if not self.buckets or list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram buckets must be sorted and unique: {buckets!r}")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _SpanTimer:
    """Context manager recording one wall-clock interval into a registry.

    Nested spans build a ``/``-separated phase path (``campaign/crawls``),
    so the report can attribute time hierarchically.  When the block
    raises, the interval is still recorded but tagged as an error — the
    span's error count increments, as does a per-exception-type counter
    (``span.errors.<ExcName>``) — so ``render_report`` can surface where
    failures happened, not just where time went.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_SpanTimer":
        self._registry._span_stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self._registry
        stack = registry._span_stack
        failed = exc_type is not None
        registry.record_span("/".join(stack), elapsed, errors=1 if failed else 0)
        if failed:
            registry.inc(f"span.errors.{exc_type.__name__}")
        stack.pop()


class _NullSpan:
    """The stateless no-op span (reentrant; one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """A collecting registry (see module docs)."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: phase path -> [count, total_seconds, error_count].
        self.spans: Dict[str, List[float]] = {}
        self._span_stack: List[str] = []

    # -- instrument-facing API ---------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return histogram

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.histogram(name, buckets).observe(value)

    def span(self, name: str) -> _SpanTimer:
        return _SpanTimer(self, name)

    def record_span(self, path: str, seconds: float, errors: int = 0) -> None:
        stat = self.spans.get(path)
        if stat is None:
            self.spans[path] = [1, seconds, errors]
        else:
            stat[0] += 1
            stat[1] += seconds
            stat[2] += errors

    # -- snapshots and merging ---------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The registry's state as a flat JSON-compatible dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self.histograms.items())
            },
            "spans": {
                path: {"count": stat[0], "seconds": stat[1], "errors": stat[2]}
                for path, stat in sorted(self.spans.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's snapshot into this one.

        Counters, histograms and spans add; gauges take the merged value
        (last write wins).  Merging per-task snapshots in task order is
        deterministic regardless of which worker produced each one.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for position, count in enumerate(data["counts"]):
                histogram.counts[position] += count
            histogram.count += data["count"]
            histogram.total += data["sum"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = data.get(bound)
                if theirs is not None:
                    ours = getattr(histogram, bound)
                    setattr(
                        histogram, bound, theirs if ours is None else pick(ours, theirs)
                    )
        for path, data in snapshot.get("spans", {}).items():
            stat = self.spans.get(path)
            if stat is None:
                self.spans[path] = [data["count"], data["seconds"], data.get("errors", 0)]
            else:
                stat[0] += data["count"]
                stat[1] += data["seconds"]
                stat[2] += data.get("errors", 0)


class NullRegistry:
    """The disabled registry: every operation is a bare no-op call."""

    enabled = False

    def counter(self, name: str) -> Counter:  # pragma: no cover - convenience
        return Counter()

    def gauge(self, name: str) -> Gauge:  # pragma: no cover - convenience
        return Gauge()

    def histogram(self, name, buckets=None) -> Histogram:  # pragma: no cover
        return Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, buckets=None) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, path: str, seconds: float, errors: int = 0) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        pass


#: The process-wide disabled registry (shared, stateless).
NULL_REGISTRY = NullRegistry()

_ACTIVE = NULL_REGISTRY


# -- active-registry management --------------------------------------------


def get_registry():
    """The currently active registry (:data:`NULL_REGISTRY` when disabled)."""
    return _ACTIVE


def set_registry(registry) -> object:
    """Install ``registry`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry) -> Iterator[object]:
    """Install ``registry`` for the duration of the ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable() -> MetricsRegistry:
    """Install (and return) a fresh collecting registry."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


def disable() -> None:
    """Restore the no-op null registry."""
    set_registry(NULL_REGISTRY)


# -- module-level instrumentation helpers ----------------------------------
# These are what the instrumented hot paths call.  With the null registry
# active each is one global read plus one no-op method call.


def inc(name: str, amount: float = 1) -> None:
    _ACTIVE.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    _ACTIVE.set_gauge(name, value)


def observe(name: str, value: float, buckets: Optional[Sequence[float]] = None) -> None:
    _ACTIVE.observe(name, value, buckets)


def span(name: str):
    return _ACTIVE.span(name)


# -- determinism helpers ----------------------------------------------------

#: Counters that measure run shape rather than simulation content: worker
#: crashes, retries and pool rebuilds depend on the host environment
#: (load, memory pressure), not on the seed — a retried task still
#: produces bit-identical *outputs*, but these counters record that the
#: retry happened.
NONDETERMINISTIC_COUNTERS = frozenset(
    {"exec.retries", "exec.failures", "exec.pool_rebuilds"}
)


def deterministic_view(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The portion of a snapshot that is reproducible across runs.

    Span timings, gauges, ``*_seconds`` histograms and the
    :data:`NONDETERMINISTIC_COUNTERS` measure wall clock or run shape
    (worker counts, environment-dependent retries); everything else is a
    pure function of the simulation, so it must be bit-identical at any
    worker count.
    """
    return {
        "counters": {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if name not in NONDETERMINISTIC_COUNTERS
        },
        "histograms": {
            name: data
            for name, data in snapshot.get("histograms", {}).items()
            if not name.endswith("_seconds")
        },
    }
