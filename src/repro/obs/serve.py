"""The campaign control plane: live endpoints over the sketch stream.

A running campaign with ``--live`` (or ``repro obs serve``) publishes
periodic snapshots into a :class:`StreamPublisher` — pre-encoded JSON
blobs behind a lock — and a :class:`ControlServer` (stdlib
``http.server``, one daemon thread) serves them:

* ``GET /``         — the single-page live dashboard;
* ``GET /status``   — campaign phase / progress / runtime notes;
* ``GET /metrics``  — the current metrics snapshot (when enabled);
* ``GET /sketches`` — the current sketch snapshot (render it with
  ``repro obs report URL`` or feed it back into the dashboard);
* ``GET|POST /stop`` — request a graceful early stop: the campaign
  finishes the current tick, drains submitted crawls, and returns a
  normal :class:`~repro.scenario.run.CampaignResult` with
  ``stopped_early`` set.

The serving side never touches the simulation: the campaign thread
*pushes* snapshots on a wall-clock throttle (no RNG draws, no sim-state
reads from the server thread), so ``--live`` cannot perturb outputs any
more than ``--progress`` does.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.request import urlopen

__all__ = [
    "ControlServer",
    "StreamPublisher",
    "fetch_json",
    "parse_address",
]


def parse_address(address: str) -> Tuple[str, int]:
    """``"127.0.0.1:8733"`` → ``("127.0.0.1", 8733)``; bare host → port 0
    (the OS picks a free port, reported by :attr:`ControlServer.url`)."""
    host, _, port = address.partition(":")
    return host or "127.0.0.1", int(port) if port else 0


def fetch_json(url: str, timeout: float = 5.0) -> Dict[str, object]:
    """GET ``url`` and decode the JSON body (used by ``repro obs report``
    when pointed at a live ``/sketches`` endpoint)."""
    with urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


class StreamPublisher:
    """Thread-safe mailbox between the campaign loop and the server.

    The campaign thread :meth:`publish`\\ es whole snapshots (encoded
    once, outside the lock); request handlers :meth:`get` the latest
    blob.  ``/stop`` flips an event the campaign polls once per tick.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blobs: Dict[str, bytes] = {}
        self._stop = threading.Event()

    def publish(self, name: str, payload: Dict[str, object]) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        with self._lock:
            self._blobs[name] = blob

    def get(self, name: str) -> Optional[bytes]:
        with self._lock:
            return self._blobs.get(name)

    def request_stop(self) -> None:
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()


class _ControlHandler(BaseHTTPRequestHandler):
    """Routes the endpoint set; the publisher arrives via the server."""

    server_version = "repro-obs/1"

    def _respond(self, body: bytes, content_type: str = "application/json") -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _publisher(self) -> StreamPublisher:
        return self.server.publisher  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/":
            self._respond(DASHBOARD_HTML.encode("utf-8"), "text/html; charset=utf-8")
        elif path in ("/status", "/metrics", "/sketches"):
            blob = self._publisher().get(path[1:])
            self._respond(blob if blob is not None else b"{}")
        elif path == "/stop":
            self._publisher().request_stop()
            self._respond(b'{"stopping": true}')
        else:
            self.send_error(404, "unknown endpoint")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0].rstrip("/") == "/stop":
            self._publisher().request_stop()
            self._respond(b'{"stopping": true}')
        else:
            self.send_error(404, "unknown endpoint")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep stderr clean; the heartbeat owns the terminal


class ControlServer:
    """The stdlib HTTP server wrapping a :class:`StreamPublisher`.

    Binding happens in the constructor, so :attr:`url` (including an
    OS-assigned port for ``host:0``) is known before :meth:`start`.
    """

    def __init__(self, address: str = "127.0.0.1:0", publisher: Optional[StreamPublisher] = None) -> None:
        host, port = parse_address(address)
        self.publisher = publisher if publisher is not None else StreamPublisher()
        self._server = ThreadingHTTPServer((host, port), _ControlHandler)
        self._server.daemon_threads = True
        self._server.publisher = self.publisher  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ControlServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-obs-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "ControlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the single-page dashboard
# ---------------------------------------------------------------------------
# Colors are the validated reference palette (dark mode): surface
# #1a1a19, text #ffffff / #c3c2b7 / #898781, gridline #2c2c2a, and the
# categorical order blue #3987e5 / orange #d95926 / aqua #199e70 /
# yellow #c98500.  Identity rides labels, never color alone; values and
# labels wear text tokens; marks are thin with a surface gap.

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro · live campaign</title>
<style>
  :root {
    --surface: #1a1a19; --panel: #222220; --grid: #2c2c2a;
    --text: #ffffff; --text-2: #c3c2b7; --muted: #898781;
    --blue: #3987e5; --orange: #d95926; --aqua: #199e70; --yellow: #c98500;
  }
  body { background: var(--surface); color: var(--text-2);
         font: 14px/1.45 system-ui, sans-serif; margin: 0; padding: 24px; }
  h1 { color: var(--text); font-size: 18px; font-weight: 600; margin: 0 0 4px; }
  #phase { color: var(--muted); margin-bottom: 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 24px; }
  .tile { background: var(--panel); border: 1px solid var(--grid);
          border-radius: 8px; padding: 14px 18px; min-width: 150px; }
  .tile .v { color: var(--text); font-size: 26px; font-weight: 650;
             font-variant-numeric: tabular-nums; }
  .tile .k { color: var(--muted); font-size: 12px; margin-top: 2px; }
  .charts { display: grid; grid-template-columns: repeat(auto-fit, minmax(320px, 1fr));
            gap: 20px; }
  .chart { background: var(--panel); border: 1px solid var(--grid);
           border-radius: 8px; padding: 16px 18px; }
  .chart h2 { color: var(--text); font-size: 13px; font-weight: 600;
              margin: 0 0 12px; }
  .row { display: grid; grid-template-columns: 160px 1fr 58px;
         align-items: center; gap: 10px; margin: 6px 0; }
  .row .l { color: var(--text-2); font-size: 12px; overflow: hidden;
            text-overflow: ellipsis; white-space: nowrap; }
  .row .v { color: var(--text-2); font-size: 12px; text-align: right;
            font-variant-numeric: tabular-nums; }
  .bar { height: 10px; background: var(--grid); border-radius: 4px; }
  .bar i { display: block; height: 100%; border-radius: 4px; min-width: 2px; }
  #stop { background: none; border: 1px solid var(--grid); color: var(--text-2);
          border-radius: 6px; padding: 6px 14px; cursor: pointer; float: right; }
  #stop:hover { border-color: var(--orange); color: var(--text); }
</style>
</head>
<body>
<button id="stop" onclick="fetch('/stop', {method: 'POST'}).then(poll)">stop campaign</button>
<h1>repro · live campaign analytics</h1>
<div id="phase">connecting…</div>
<div class="tiles" id="tiles"></div>
<div class="charts">
  <div class="chart"><h2>Request classes (share of DHT log)</h2><div id="classes"></div></div>
  <div class="chart"><h2>Cloud providers (share of volume)</h2><div id="providers"></div></div>
  <div class="chart"><h2>Top peers (space-saving count)</h2><div id="peers"></div></div>
  <div class="chart"><h2>Top requested CIDs</h2><div id="cids"></div></div>
</div>
<script>
const fmtPct = x => (100 * x).toFixed(1) + '%';
const fmtNum = x => Number(x).toLocaleString('en-US');
// One hue per chart: these are magnitude bars of one measure, not
// multi-series identity, so a single accent each is the correct coding.
function bars(id, rows, hue, fmt) {
  const el = document.getElementById(id);
  if (!rows.length) { el.innerHTML = '<div class="l" style="color:var(--muted)">no data yet</div>'; return; }
  const max = Math.max(...rows.map(r => r[1])) || 1;
  el.innerHTML = rows.map(r =>
    `<div class="row"><div class="l" title="${r[0]}">${r[0]}</div>` +
    `<div class="bar"><i style="width:${Math.max(1, 100 * r[1] / max)}%;background:${hue}"></i></div>` +
    `<div class="v">${fmt(r[1])}</div></div>`).join('');
}
function tile(value, label) {
  return `<div class="tile"><div class="v">${value}</div><div class="k">${label}</div></div>`;
}
async function poll() {
  try {
    const [status, sketches] = await Promise.all([
      fetch('/status').then(r => r.json()),
      fetch('/sketches').then(r => r.json()),
    ]);
    const h = sketches.headline || {};
    document.getElementById('phase').textContent =
      `${status.state || 'running'} · phase ${status.phase || '—'}` +
      (status.day ? ` · day ${status.day}` : '') +
      (status.tick ? ` · tick ${status.tick}` : '') +
      (status.crawls ? ` · crawls ${status.crawls}` : '');
    document.getElementById('tiles').innerHTML =
      tile(fmtNum(sketches.events || 0), 'monitor events') +
      tile(fmtPct(h.cloud_share_by_volume || 0), 'cloud share (volume)') +
      tile(fmtPct(h.gateway_share_by_volume || 0), 'gateway share') +
      tile(fmtPct(h.top1pct_peer_share || 0), 'top-1% peer concentration') +
      tile(h.top_provider || '—', 'top cloud provider');
    bars('classes', Object.entries(h.class_shares || {}).sort((a, b) => b[1] - a[1]),
         'var(--blue)', fmtPct);
    bars('providers', Object.entries(h.provider_shares_by_volume || {}).sort((a, b) => b[1] - a[1]),
         'var(--orange)', fmtPct);
    const top = sketches.top || {};
    bars('peers', (top.peers || []).map(e => [e[0], e[1]]), 'var(--aqua)', fmtNum);
    bars('cids', (top.cids || []).map(e => [e[0], e[1]]), 'var(--yellow)', fmtNum);
    if (status.state === 'done' || status.state === 'stopped') {
      document.getElementById('stop').disabled = true;
      return;  // final snapshot rendered; stop polling
    }
  } catch (err) {
    document.getElementById('phase').textContent = 'campaign not reachable (finished?)';
    return;
  }
  setTimeout(poll, 2000);
}
poll();
</script>
</body>
</html>
"""
