"""Structured event tracing: causal spans, ring buffers, deterministic sampling.

Where :mod:`repro.obs.metrics` aggregates (counters, histograms, phase
timers), this module records *events*: each DHT lookup, crawl and
provider fetch becomes a causal tree of typed :class:`TraceEvent`\\ s —
begin/end span pairs plus instant events — carrying both the simulated
clock and the wall clock.  The result is the event layer the paper's own
operators leaned on (Nebula's per-crawl telemetry, the Hydra
dashboards): enough to explain *why* a single lookup resolved the way it
did, to open a campaign in ``ui.perfetto.dev``, and to mechanically
audit protocol invariants after the fact (``repro obs audit``).

The design repeats the PR-4 dispatch pattern: instrumented code calls
:func:`trace_span` / :func:`trace_event`, which dispatch to the active
tracer — by default :data:`NULL_TRACER`, a null object whose operations
are bare no-op calls, so tracing-off runs stay bit-identical and inside
the perf-smoke gate.  Three properties keep tracing-on runs usable at
paper scale:

* **bounded memory** — events land in a ring buffer (``deque(maxlen)``):
  when full, the oldest events are evicted and counted as *dropped*, so
  an hour-long campaign cannot exhaust RAM.  :meth:`Tracer.meta_record`
  reports emitted/dropped so consumers know whether the stream is whole;
* **deterministic sampling** — ``sample=N`` keeps ~1/N of the causal
  trees, chosen by hashing the root-span index through
  :func:`repro.exec.seeds.derive_seed`.  The decision depends only on
  ``(seed, trace index)``, never on wall clock or worker scheduling, so
  workers=1 and workers=N sample the *same* trees;
* **deterministic identity** — trace/span ids are allocated from
  per-tracer monotonic counters in event order.  Per-crawl-task tracers
  are merged in crawl order by the campaign runner (exactly like the
  metric snapshots), and :func:`deterministic_trace_view` strips the
  wall clock plus the environment-shaped ``exec.*`` lifecycle events,
  leaving a view pinned bit-identical across worker counts.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "BEGIN",
    "END",
    "INSTANT",
    "DEFAULT_CAPACITY",
    "NONDETERMINISTIC_EVENT_PREFIXES",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "deterministic_trace_view",
    "disable_tracing",
    "enable_tracing",
    "event_to_record",
    "get_tracer",
    "read_trace",
    "record_to_event",
    "set_tracer",
    "trace_event",
    "trace_span",
    "use_tracer",
    "write_trace",
]

#: Event phases (mirroring the Chrome trace-event vocabulary).
BEGIN = "B"
END = "E"
INSTANT = "I"

#: Default ring-buffer capacity (events); a smoke campaign emits ~50 k.
DEFAULT_CAPACITY = 65536

#: A flat JSON-compatible trace record (mirrors ``repro.store.Record``).
Record = Dict[str, object]


class TraceEvent:
    """One typed event: a span begin/end or an instant.

    ``trace_id`` groups a causal tree (one per root span), ``span_id``
    identifies the span a begin/end pair belongs to (0 for instants,
    which borrow their enclosing span via ``parent_id``), and ``seq`` is
    the tracer-local emission index.  ``sim_time`` is the simulated
    clock at emission; ``wall_time`` is ``time.perf_counter()`` and is
    excluded from every determinism contract.
    """

    __slots__ = (
        "etype",
        "name",
        "origin",
        "trace_id",
        "span_id",
        "parent_id",
        "seq",
        "sim_time",
        "wall_time",
        "attrs",
    )

    def __init__(
        self,
        etype: str,
        name: str,
        origin: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        seq: int,
        sim_time: float,
        wall_time: float,
        attrs: Dict[str, object],
    ) -> None:
        self.etype = etype
        self.name = name
        self.origin = origin
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self.sim_time = sim_time
        self.wall_time = wall_time
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.etype} {self.name!r} origin={self.origin}"
            f" trace={self.trace_id} span={self.span_id}"
            f" parent={self.parent_id} sim={self.sim_time})"
        )


def event_to_record(event: TraceEvent) -> Record:
    """Flatten a :class:`TraceEvent` into a storage record."""
    return {
        "type": event.etype,
        "name": event.name,
        "origin": event.origin,
        "trace": event.trace_id,
        "span": event.span_id,
        "parent": event.parent_id,
        "seq": event.seq,
        "sim": event.sim_time,
        "wall": event.wall_time,
        "attrs": dict(event.attrs),
    }


def record_to_event(record: Record) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its storage record."""
    return TraceEvent(
        etype=record["type"],
        name=record["name"],
        origin=record.get("origin", ""),
        trace_id=record.get("trace", 0),
        span_id=record.get("span", 0),
        parent_id=record.get("parent"),
        seq=record.get("seq", 0),
        sim_time=record.get("sim", 0.0),
        wall_time=record.get("wall", 0.0),
        attrs=dict(record.get("attrs") or {}),
    )


class _TraceSpan:
    """Context manager emitting one begin/end pair into a tracer.

    Entering allocates a span id (when the enclosing tree is sampled)
    and pushes it on the tracer's span stack so nested spans and instant
    events attach to it; exiting emits the end event, tagged with
    ``error=True`` and the exception type name when the block raised.
    :meth:`note` attaches attributes to the end event — use it for
    results only known at exit (termination reason, message counts).
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_notes", "trace_id", "span_id", "_parent", "_sampled")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._notes: Optional[Dict[str, object]] = None

    def __enter__(self) -> "_TraceSpan":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            parent_id, trace_id, sampled = stack[-1]
        else:
            index = tracer._trace_count
            tracer._trace_count = index + 1
            trace_id = index + 1
            parent_id = None
            sampled = tracer._sampled(index)
        if sampled:
            span_id = tracer._next_span
            tracer._next_span = span_id + 1
        else:
            span_id = 0
            tracer.muted += 1
        self.trace_id = trace_id
        self.span_id = span_id
        self._parent = parent_id
        self._sampled = sampled
        stack.append((span_id, trace_id, sampled))
        if sampled:
            tracer._emit(BEGIN, self._name, trace_id, span_id, parent_id, self._attrs)
        return self

    def note(self, **attrs: object) -> None:
        """Attach attributes to the span's *end* event."""
        if self._notes is None:
            self._notes = attrs
        else:
            self._notes.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        if not self._sampled:
            return
        attrs = self._notes if self._notes is not None else {}
        if exc_type is not None:
            attrs = dict(attrs)
            attrs["error"] = True
            attrs["error_type"] = exc_type.__name__
        tracer._emit(END, self._name, self.trace_id, self.span_id, self._parent, attrs)


class _NullSpan:
    """The stateless no-op span (reentrant; one shared instance)."""

    __slots__ = ()
    trace_id = 0
    span_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def note(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """A collecting tracer (see module docs).

    ``origin`` names the event source (``main`` for the campaign runner,
    ``crawl-<id>`` for per-crawl-task tracers) and becomes the Perfetto
    process; ``clock`` supplies the simulated time (defaults to 0.0 so
    unit tests need no scheduler); ``seed``/``sample`` drive the
    deterministic root-span sampling; ``capacity`` bounds the ring
    buffer.
    """

    enabled = True

    def __init__(
        self,
        origin: str = "main",
        seed: int = 0,
        sample: int = 1,
        capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1: {capacity!r}")
        self.origin = origin
        self.seed = seed
        self.sample = max(1, int(sample))
        self.capacity = capacity
        self._clock = clock
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Events appended to the buffer (including ones later evicted).
        self.emitted = 0
        #: Events suppressed by sampling (never entered the buffer).
        self.muted = 0
        self._seq = 0
        self._next_span = 1
        self._trace_count = 0
        self._stack: List[Tuple[int, int, bool]] = []

    # -- sampling ----------------------------------------------------------

    def _sampled(self, trace_index: int) -> bool:
        """Whether causal tree ``trace_index`` is kept.

        Hash-based so the kept set is a stable pseudo-random 1/N of all
        trees: a pure function of ``(seed, trace_index)`` — identical at
        any worker count.
        """
        if self.sample <= 1:
            return True
        from repro.exec.seeds import derive_seed

        return derive_seed(self.seed, "trace-sample", trace_index) % self.sample == 0

    # -- emission ----------------------------------------------------------

    def _emit(
        self,
        etype: str,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        self._seq += 1
        clock = self._clock
        self._buffer.append(
            TraceEvent(
                etype,
                name,
                self.origin,
                trace_id,
                span_id,
                parent_id,
                self._seq,
                clock() if clock is not None else 0.0,
                time.perf_counter(),
                attrs,
            )
        )
        self.emitted += 1

    def span(self, name: str, **attrs: object) -> _TraceSpan:
        """A new span; root spans open a new causal tree."""
        return _TraceSpan(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """An instant event attached to the enclosing span (if any).

        Inside an unsampled tree the event is muted; outside any span it
        is always emitted (trace 0 — e.g. the exec lifecycle events,
        which have no enclosing protocol span in the parent process).
        """
        stack = self._stack
        if stack:
            span_id, trace_id, sampled = stack[-1]
            if not sampled:
                self.muted += 1
                return
            self._emit(INSTANT, name, trace_id, 0, span_id, attrs)
        else:
            self._emit(INSTANT, name, 0, 0, None, attrs)

    # -- introspection and export ------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buffer)

    def meta_record(self) -> Record:
        """Accounting for the stream: was it sampled? is it whole?"""
        return {
            "type": "meta",
            "origin": self.origin,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "muted": self.muted,
            "capacity": self.capacity,
            "sample": self.sample,
            "traces": self._trace_count,
        }

    def records(self, include_meta: bool = True) -> List[Record]:
        """The buffered events as storage records (meta record first)."""
        records: List[Record] = [self.meta_record()] if include_meta else []
        records.extend(event_to_record(event) for event in self._buffer)
        return records


class NullTracer:
    """The disabled tracer: every operation is a bare no-op call."""

    enabled = False
    origin = "null"
    sample = 1
    capacity = 0
    emitted = 0
    muted = 0
    dropped = 0

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self) -> List[TraceEvent]:
        return []

    def records(self, include_meta: bool = True) -> List[Record]:
        return []

    def meta_record(self) -> Record:  # pragma: no cover - convenience
        return {"type": "meta", "origin": self.origin, "emitted": 0, "dropped": 0,
                "muted": 0, "capacity": 0, "sample": 1, "traces": 0}


#: The process-wide disabled tracer (shared, stateless).
NULL_TRACER = NullTracer()

_ACTIVE_TRACER = NULL_TRACER


# -- active-tracer management ------------------------------------------------


def get_tracer():
    """The currently active tracer (:data:`NULL_TRACER` when disabled)."""
    return _ACTIVE_TRACER


def set_tracer(tracer) -> object:
    """Install ``tracer`` as the active one; returns the previous."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer) -> Iterator[object]:
    """Install ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def enable_tracing(**kwargs) -> Tracer:
    """Install (and return) a fresh collecting tracer."""
    tracer = Tracer(**kwargs)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op null tracer."""
    set_tracer(NULL_TRACER)


# -- module-level instrumentation helpers ------------------------------------
# What the instrumented hot paths call.  With the null tracer active each
# is one global read plus one no-op method call; sites that build attrs
# dicts per event additionally guard on ``get_tracer().enabled``.


def trace_span(name: str, **attrs: object):
    return _ACTIVE_TRACER.span(name, **attrs)


def trace_event(name: str, **attrs: object) -> None:
    _ACTIVE_TRACER.event(name, **attrs)


# -- determinism helpers -----------------------------------------------------

#: Event-name prefixes that record run *shape* rather than simulation
#: content: task completion order and retry counts depend on worker
#: scheduling and host environment, not on the seed (the exec analogue
#: of :data:`repro.obs.metrics.NONDETERMINISTIC_COUNTERS`).
NONDETERMINISTIC_EVENT_PREFIXES: Tuple[str, ...] = ("exec.",)


def deterministic_trace_view(records: Iterable[Record]) -> List[Tuple]:
    """The portion of a trace pinned bit-identical across worker counts.

    Strips wall-clock timestamps and emission sequence numbers, drops
    meta records and the environment-shaped ``exec.*`` lifecycle events,
    and keeps (origin, type, name, ids, sim time, attrs) tuples in
    stream order.  Only meaningful when no origin dropped events
    (``meta["dropped"] == 0``): eviction order inside a full ring buffer
    depends on the interleaving with nondeterministic events.
    """
    view: List[Tuple] = []
    for record in records:
        if record.get("type") == "meta":
            continue
        name = str(record.get("name", ""))
        if name.startswith(NONDETERMINISTIC_EVENT_PREFIXES):
            continue
        attrs = record.get("attrs") or {}
        view.append(
            (
                record.get("origin"),
                record.get("type"),
                name,
                record.get("trace"),
                record.get("span"),
                record.get("parent"),
                record.get("sim"),
                tuple(sorted(attrs.items())),
            )
        )
    return view


# -- persistence -------------------------------------------------------------


def write_trace(records: Iterable[Record], destination) -> int:
    """Persist a trace record stream; returns the record count.

    ``destination`` is a :class:`~repro.store.backend.StorageBackend` or
    a path routed through :func:`repro.store.open_file_backend`
    (``.trace`` and ``.jsonl`` are JSONL, ``.sqlite`` / ``.db`` SQLite).
    Any previous content is replaced.
    """
    from repro.store.backend import StorageBackend

    records = list(records)
    if isinstance(destination, StorageBackend):
        destination.clear()
        destination.extend(records)
        destination.flush()
        return len(records)
    from repro.store import open_file_backend

    backend = open_file_backend(destination)
    try:
        backend.clear()
        backend.extend(records)
        backend.flush()
    finally:
        backend.close()
    return len(records)


def read_trace(source) -> List[Record]:
    """Load a trace record stream written by :func:`write_trace`."""
    from repro.store.backend import StorageBackend

    if isinstance(source, StorageBackend):
        return list(source.scan())
    from repro.store import open_file_backend

    backend = open_file_backend(source)
    try:
        return list(backend.scan())
    finally:
        backend.close()
