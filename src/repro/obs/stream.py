"""Streaming campaign analytics over the monitor event stream.

Batch campaigns answer the paper's questions *after* the run; this
module answers them *during* it.  A :class:`StreamAnalytics` engine
consumes every Hydra DHT request and Bitswap broadcast as the monitors
log them and maintains bounded-memory summaries of the paper's headline
quantities (§4-§6):

* Space-Saving top-K heavy hitters over sender peer IDs, sender IPs and
  requested CIDs;
* a mergeable quantile sketch over per-window per-peer request volumes
  (the Fig. 10/11 Pareto tail, live) and — fed by the crawl workers —
  over per-crawled-peer routing-table out-degrees (Fig. 7's CCDF);
* windowed per-class request-share counters (§5's download /
  advertisement / other split);
* exact running estimates of the headline shares: cloud % by volume,
  per-provider split, gateway share, top-1 % concentration.

Dispatch follows the PR-4 null-object pattern exactly: the module-level
hooks (:func:`observe_hydra`, :func:`observe_bitswap`, :func:`note`)
forward to the *active* engine, which defaults to :data:`NULL_STREAM`
whose operations are bare no-op calls — streaming-off campaigns stay
bit-identical and inside the perf gate.  Campaigns install a real engine
with :func:`use_stream` when :attr:`ScenarioConfig.stream` (or
``--live``) asks for one.

Sketches are approximate *by design*; the exact batch analyses remain
the source of truth for final figures.  Their accuracy contracts —
top-10 recall 1.0 on fixture campaigns, quantile rank error within the
declared ``epsilon``, headline shares within ±0.01 of the batch
figures — are pinned by ``tests/test_stream.py`` and gated by the CI
``stream-smoke`` job.

Cross-worker determinism: the monitor-side stream runs in the campaign
process, and crawl workers return compact sketch states
(:func:`repro.core.crawler.crawl_stream_state`) that the campaign merges
in crawl order via :meth:`StreamAnalytics.merge_crawl_state` — so the
merged state is bit-identical at any worker count, mirroring the metric
snapshot and trace-record merges.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.sketch import (
    LinearCounter,
    QuantileSketch,
    SpaceSaving,
    WindowedCounters,
)

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "NULL_STREAM",
    "NullStream",
    "SKETCHES_SCHEMA",
    "StreamAnalytics",
    "deterministic_sketches_view",
    "get_stream",
    "note",
    "observe_bitswap",
    "observe_hydra",
    "render_stream_report",
    "set_stream",
    "use_stream",
]

#: Default aggregation window: one campaign tick at 4 ticks/day, the
#: same quantum as the detection features and traffic timestamps.
DEFAULT_WINDOW_SECONDS = 21_600.0

#: Schema marker on sketch snapshots, so ``repro obs report`` can tell a
#: sketches file/endpoint from a metrics snapshot.
SKETCHES_SCHEMA = "repro.obs.sketches/1"

#: Quantile fractions reported for every quantile sketch.
_REPORT_FRACTIONS = (0.5, 0.9, 0.99)


class StreamAnalytics:
    """The collecting engine (see module docs).

    :param window_seconds: width of the per-class and per-peer-rate
        aggregation windows.
    :param provider_of: ``ip -> provider slug or None`` (the cloud
        database lookup); ``None`` classifies everything non-cloud.
    :param is_gateway: ``PeerID -> bool`` classifier evaluated at
        observe time (senders are online when they send); ``None``
        classifies nothing as a gateway.
    :param topk_capacity: Space-Saving capacity per keyed summary.
        While fewer distinct keys than this have been seen, counts —
        and therefore the fixture-scale accuracy pins — are exact.
    :param quantile_k: :class:`QuantileSketch` size parameter.
    :param cardinality_bits: :class:`LinearCounter` bitmap width.
    """

    enabled = True

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        *,
        provider_of: Optional[Callable[[str], Optional[str]]] = None,
        is_gateway: Optional[Callable[[object], bool]] = None,
        topk_capacity: int = 1024,
        quantile_k: int = 256,
        cardinality_bits: int = 1 << 15,
    ) -> None:
        self.window_seconds = window_seconds
        self.topk_capacity = topk_capacity
        self._provider_of = provider_of
        self._is_gateway = is_gateway
        # -- hydra (DHT request) side -----------------------------------
        self.hydra_total = 0
        self.classes = WindowedCounters(window_seconds)
        self.provider_volumes: Dict[str, int] = {}
        self.gateway_volume = 0
        self.peer_hitters = SpaceSaving(topk_capacity)
        self.ip_hitters = SpaceSaving(topk_capacity)
        self.peer_distinct = LinearCounter(cardinality_bits)
        self.ip_distinct = LinearCounter(cardinality_bits)
        #: per-window per-peer request counts, flushed into the rate
        #: sketch when the stream crosses a window boundary.
        self.peer_rates = QuantileSketch(quantile_k)
        self._rate_window: Optional[int] = None
        self._rate_counts: Dict[str, int] = {}
        # -- bitswap (content request) side ------------------------------
        self.bitswap_total = 0
        self.cid_hitters = SpaceSaving(topk_capacity)
        self.cid_distinct = LinearCounter(cardinality_bits)
        # -- crawl side (merged from worker states) ----------------------
        self.crawl_degree = QuantileSketch(quantile_k)
        self.crawls = 0
        self.crawl_discovered = 0
        self.crawl_crawlable = 0
        # -- runtime notes (never part of the deterministic view) --------
        self.notes: Dict[str, int] = {}
        # memoised classifications: every cache is keyed by a value
        # object (str / PeerID / CID with a digest-derived hash), never
        # iterated, so PYTHONHASHSEED cannot reach any output.
        self._peer_keys: Dict[bytes, str] = {}
        self._cid_keys: Dict[object, str] = {}
        self._providers: Dict[str, str] = {}
        self._gateways: Dict[object, bool] = {}
        #: enum member -> label, saving the ``.value`` descriptor walk on
        #: the per-event hot path (enum members hash by identity).
        self._class_labels: Dict[object, str] = {}
        # Bound-method caches for the per-event hot path (observe_hydra
        # runs once per monitor event; each saves an attribute walk and
        # a method bind per call).
        self._classes_update = self.classes.update
        self._peer_hitters_update = self.peer_hitters.update
        self._ip_hitters_update = self.ip_hitters.update

    # -- event intake -----------------------------------------------------

    @property
    def events(self) -> int:
        return self.hydra_total + self.bitswap_total

    def _peer_key(self, peer) -> str:
        key = self._peer_keys.get(peer.digest)
        if key is None:
            key = self._peer_keys[peer.digest] = str(peer)
            # Linear counting is idempotent per key, so the distinct
            # sketch only needs to hash each peer once — on the memo
            # miss — which keeps the per-event hot path hash-free.
            self.peer_distinct.update(key)
        return key

    def observe_hydra(self, envelope) -> None:
        """Fold one logged DHT request (a ``MessageEnvelope``) in.

        This runs once per monitor event, so it is written flat: memo
        dicts bound to locals, slow work (``str()``, BLAKE2b hashing,
        cloud lookups, ``.value`` descriptor walks) only on memo
        misses.  The end-to-end budget (streaming-on campaign within
        1.10x of off) is gated by ``bench_obs_stream.py``.
        """
        timestamp = envelope.timestamp
        ip = envelope.sender_ip
        self.hydra_total += 1
        traffic_class = envelope.traffic_class
        label = self._class_labels.get(traffic_class)
        if label is None:
            label = self._class_labels[traffic_class] = traffic_class.value
        self._classes_update(timestamp, label)
        provider = self._providers.get(ip)
        if provider is None:
            looked_up = self._provider_of(ip) if self._provider_of else None
            provider = self._providers[ip] = looked_up or "non-cloud"
            # First sighting of this IP (see _peer_key on idempotence).
            self.ip_distinct.update(ip)
        self.provider_volumes[provider] = self.provider_volumes.get(provider, 0) + 1
        sender = envelope.sender
        gateway = self._gateways.get(sender)
        if gateway is None:
            gateway = self._gateways[sender] = bool(
                self._is_gateway(sender) if self._is_gateway else False
            )
        if gateway:
            self.gateway_volume += 1
        peer_key = self._peer_keys.get(sender.digest)
        if peer_key is None:
            peer_key = self._peer_key(sender)
        self._peer_hitters_update(peer_key)
        self._ip_hitters_update(ip)
        window = int(timestamp // self.window_seconds)
        if self._rate_window is None:
            self._rate_window = window
        elif window != self._rate_window:
            self._flush_rate_window()
            self._rate_window = window
        self._rate_counts[peer_key] = self._rate_counts.get(peer_key, 0) + 1

    def observe_bitswap(self, timestamp: float, node, cid) -> None:
        """Fold one logged Bitswap want broadcast in."""
        self.bitswap_total += 1
        key = self._cid_keys.get(cid)
        if key is None:
            key = self._cid_keys[cid] = str(cid)
            # First sighting of this CID (see _peer_key on idempotence).
            self.cid_distinct.update(key)
        self.cid_hitters.update(key)

    def _flush_rate_window(self) -> None:
        """Move the closed window's per-peer volumes into the rate sketch.

        Sorted by peer key so the sketch state is a pure function of the
        window's *contents*, independent of event arrival order within
        the window.
        """
        for key in sorted(self._rate_counts):
            self.peer_rates.update(float(self._rate_counts[key]))
        self._rate_counts.clear()

    def finalize(self, now: Optional[float] = None) -> None:
        """Flush the open aggregation window (end of campaign)."""
        if self._rate_counts:
            self._flush_rate_window()
        self._rate_window = None

    def merge_crawl_state(self, state: Dict[str, object]) -> None:
        """Fold one crawl worker's sketch state in (call in crawl order)."""
        self.crawl_degree.merge(QuantileSketch.from_state(state["degree"]))
        self.crawls += int(state.get("crawls", 1))
        self.crawl_discovered += int(state.get("discovered", 0))
        self.crawl_crawlable += int(state.get("crawlable", 0))

    def note(self, name: str, amount: int = 1) -> None:
        """Record a runtime note (surfaced on ``/status`` only; run-shape
        quantities like exec retries are environment-dependent, so notes
        never enter the deterministic snapshot view)."""
        self.notes[name] = self.notes.get(name, 0) + amount

    # -- live estimates ----------------------------------------------------

    def _top_fraction_share(
        self, hitters: SpaceSaving, distinct: LinearCounter, fraction: float
    ) -> float:
        """Estimated share of volume held by the top ``fraction`` of keys.

        While the summary is not full it tracks *every* key seen, so the
        key count — and the share — is exact, matching the batch
        :func:`repro.core.pareto.top_share` (same ceil semantics); once
        keys have been evicted the linear counter supplies the
        denominator estimate.
        """
        if not hitters.total:
            return 0.0
        if len(hitters) < hitters.capacity:
            population = len(hitters)
        else:
            population = max(len(hitters), int(round(distinct.estimate())))
        top_count = max(1, math.ceil(fraction * population - 1e-9))
        return hitters.top_sum(top_count) / hitters.total

    def top_providers(self) -> List[Tuple[str, float]]:
        """Cloud providers by volume share, descending (ties by name)."""
        total = self.hydra_total
        if not total:
            return []
        ranked = sorted(
            (
                (label, volume / total)
                for label, volume in self.provider_volumes.items()
                if label != "non-cloud"
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked

    def headline(self) -> Dict[str, object]:
        """The paper's headline shares, estimated from the stream so far.

        Read-only (no window flush), so the heartbeat and the live
        endpoints can call it freely without perturbing sketch state.
        """
        total = self.hydra_total
        providers = self.top_providers()
        non_cloud = self.provider_volumes.get("non-cloud", 0)
        return {
            "events": self.events,
            "hydra_requests": total,
            "bitswap_broadcasts": self.bitswap_total,
            "cloud_share_by_volume": (total - non_cloud) / total if total else 0.0,
            "gateway_share_by_volume": self.gateway_volume / total if total else 0.0,
            "top_provider": providers[0][0] if providers else None,
            "provider_shares_by_volume": dict(providers),
            "class_shares": self.classes.shares(),
            "top1pct_peer_share": self._top_fraction_share(
                self.peer_hitters, self.peer_distinct, 0.01
            ),
            "top1pct_ip_share": self._top_fraction_share(
                self.ip_hitters, self.ip_distinct, 0.01
            ),
            "distinct_peers_est": round(self.peer_distinct.estimate(), 1),
            "distinct_ips_est": round(self.ip_distinct.estimate(), 1),
            "distinct_cids_est": round(self.cid_distinct.estimate(), 1),
        }

    def _quantile_block(self, sketch: QuantileSketch) -> Dict[str, object]:
        block: Dict[str, object] = dict(sketch.quantiles(_REPORT_FRACTIONS))
        block["n"] = sketch.n
        block["epsilon"] = sketch.epsilon
        return block

    def snapshot(self) -> Dict[str, object]:
        """The full JSON-compatible sketch snapshot (see also
        :func:`deterministic_sketches_view`)."""
        return {
            "schema": SKETCHES_SCHEMA,
            "window_seconds": self.window_seconds,
            "events": self.events,
            "headline": self.headline(),
            "quantiles": {
                "peer_requests_per_window": self._quantile_block(self.peer_rates),
                "crawl_out_degree": self._quantile_block(self.crawl_degree),
            },
            "top": {
                "peers": [list(entry) for entry in self.peer_hitters.top(10)],
                "ips": [list(entry) for entry in self.ip_hitters.top(10)],
                "cids": [list(entry) for entry in self.cid_hitters.top(10)],
            },
            "crawl": {
                "crawls": self.crawls,
                "discovered": self.crawl_discovered,
                "crawlable": self.crawl_crawlable,
            },
            "sketches": {
                "peer_hitters": self.peer_hitters.to_state(),
                "ip_hitters": self.ip_hitters.to_state(),
                "cid_hitters": self.cid_hitters.to_state(),
                "peer_rates": self.peer_rates.to_state(),
                "crawl_degree": self.crawl_degree.to_state(),
                "classes": self.classes.to_state(),
                "peer_distinct": self.peer_distinct.to_state(),
                "ip_distinct": self.ip_distinct.to_state(),
                "cid_distinct": self.cid_distinct.to_state(),
                "provider_volumes": dict(sorted(self.provider_volumes.items())),
                "gateway_volume": self.gateway_volume,
            },
            "runtime": dict(sorted(self.notes.items())),
        }


class NullStream:
    """The disabled engine: every operation is a bare no-op call."""

    enabled = False

    def observe_hydra(self, envelope) -> None:
        pass

    def observe_bitswap(self, timestamp, node, cid) -> None:
        pass

    def note(self, name: str, amount: int = 1) -> None:
        pass

    def merge_crawl_state(self, state) -> None:
        pass

    def finalize(self, now=None) -> None:
        pass

    def headline(self) -> Dict[str, object]:
        return {}

    def snapshot(self) -> Dict[str, object]:
        return {"schema": SKETCHES_SCHEMA, "events": 0}


#: The process-wide disabled engine (shared, stateless).
NULL_STREAM = NullStream()

_ACTIVE = NULL_STREAM


# -- active-engine management ------------------------------------------------


def get_stream():
    """The currently active engine (:data:`NULL_STREAM` when disabled)."""
    return _ACTIVE


def set_stream(stream) -> object:
    """Install ``stream`` as the active engine; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = stream if stream is not None else NULL_STREAM
    return previous


@contextmanager
def use_stream(stream) -> Iterator[object]:
    """Install ``stream`` for the duration of the ``with`` block."""
    previous = set_stream(stream)
    try:
        yield stream
    finally:
        set_stream(previous)


# -- module-level hooks ------------------------------------------------------
# What the instrumented paths call.  With the null engine active each is
# one global read plus one no-op method call.


def observe_hydra(envelope) -> None:
    _ACTIVE.observe_hydra(envelope)


def observe_bitswap(timestamp, node, cid) -> None:
    _ACTIVE.observe_bitswap(timestamp, node, cid)


def note(name: str, amount: int = 1) -> None:
    _ACTIVE.note(name, amount)


# -- snapshot views and rendering -------------------------------------------


def deterministic_sketches_view(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The portion of a sketch snapshot that must be bit-identical across
    worker counts and hash seeds — everything except the ``runtime``
    notes, which record run shape (retries, pool rebuilds)."""
    return {key: value for key, value in snapshot.items() if key != "runtime"}


def _format_share(value) -> str:
    return f"{value:7.4f}" if isinstance(value, float) else f"{value!s:>7}"


def render_stream_report(snapshot: Dict[str, object]) -> str:
    """Render a sketch snapshot as the ``repro obs report`` text view.

    Accepts exactly what :meth:`StreamAnalytics.snapshot` produces — the
    same renderer serves a finished campaign's ``CampaignResult.sketches``,
    a ``--sketches-out`` file, and a live ``/sketches`` poll.
    """
    lines: List[str] = []
    window = snapshot.get("window_seconds")
    events = snapshot.get("events", 0)
    header = f"streaming sketches · {events:,} events"
    if window:
        header += f" · window {window:g}s"
    lines.append(header)
    headline = snapshot.get("headline") or {}
    if headline:
        lines.append("")
        lines.append("headline estimates")
        for key in (
            "cloud_share_by_volume",
            "gateway_share_by_volume",
            "top1pct_peer_share",
            "top1pct_ip_share",
            "distinct_peers_est",
            "distinct_ips_est",
            "distinct_cids_est",
        ):
            if key in headline:
                lines.append(f"  {key:<28} {_format_share(headline[key])}")
        top_provider = headline.get("top_provider")
        if top_provider:
            lines.append(f"  {'top_provider':<28} {top_provider:>7}")
        for label, table in (
            ("request classes", headline.get("class_shares") or {}),
            ("provider shares", headline.get("provider_shares_by_volume") or {}),
        ):
            if table:
                lines.append("")
                lines.append(label)
                for name, share in sorted(
                    table.items(), key=lambda item: (-item[1], item[0])
                ):
                    lines.append(f"  {name:<28} {share:7.4f}")
    quantiles = snapshot.get("quantiles") or {}
    if quantiles:
        lines.append("")
        lines.append("quantiles")
        for name, block in sorted(quantiles.items()):
            points = " · ".join(
                f"{key} {block[key]:g}"
                for key in sorted(k for k in block if k.startswith("p"))
            )
            lines.append(
                f"  {name:<28} {points}  (n={block.get('n', 0):,}, "
                f"ε={block.get('epsilon', 0):g})"
            )
    top = snapshot.get("top") or {}
    for kind in ("peers", "ips", "cids"):
        entries = top.get(kind) or []
        if not entries:
            continue
        lines.append("")
        lines.append(f"top {kind} (space-saving; count is an upper bound)")
        for key, count, error in entries:
            lines.append(f"  {str(key):<56} {count:>9,} (±{error:,})")
    crawl = snapshot.get("crawl") or {}
    if crawl.get("crawls"):
        lines.append("")
        lines.append(
            f"crawls merged: {crawl['crawls']} · discovered {crawl['discovered']:,}"
            f" · crawlable {crawl['crawlable']:,}"
        )
    runtime = snapshot.get("runtime") or {}
    if runtime:
        lines.append("")
        lines.append("runtime notes (non-deterministic)")
        for name, value in sorted(runtime.items()):
            lines.append(f"  {name:<28} {value:>9,}")
    return "\n".join(lines)
