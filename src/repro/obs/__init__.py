"""Campaign observability: metrics, spans and phase timings.

The paper's measurement pipelines are long-running campaigns (38 days,
101 crawls, 200 k daily CID samples at paper scale); operating — and
optimising — them requires telemetry, just like the Nebula crawler's
per-crawl metrics and the Hydra operators' dashboards the paper itself
relies on (§3, §5.1).  This package provides the zero-dependency
substrate:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
* :func:`span` — lightweight wall-time trace contexts with hierarchical
  phase attribution (``campaign/simulate/provider-fetch``);
* exporters — a record stream through any :mod:`repro.store` backend, a
  flat JSON snapshot, and the human-readable table behind
  ``repro obs report``.

Metrics are **off by default**: the active registry is a null object
whose operations are bare no-op calls, so instrumented hot paths cost
nothing measurable and campaign outputs stay bit-identical.  Enable them
per campaign with ``ScenarioConfig(metrics=True)`` (the result then
carries ``CampaignResult.metrics``), globally with :func:`enable`, or
scoped with :func:`use_registry`::

    import repro.obs as obs

    registry = obs.enable()
    with obs.span("my-phase"):
        ...
    print(obs.render_report(registry.snapshot()))

Per-worker registries (one per crawl task) are merged deterministically
in the parent via :meth:`MetricsRegistry.merge_snapshot`, mirroring the
sharded-log heap-merge; :func:`deterministic_view` is the cross-worker
bit-identical portion of a snapshot.

Since PR 5 the package also carries the *event* layer,
:mod:`repro.obs.trace`: causal per-lookup/per-crawl traces behind the
same null-object dispatch (:func:`trace_span` / :func:`trace_event`),
a Chrome trace-event / Perfetto exporter (:func:`chrome_trace`), a
trace-replaying invariant auditor (:func:`audit_trace`, surfaced as
``repro obs audit``) and the live campaign heartbeat
(:class:`ProgressReporter`, surfaced as ``repro campaign --progress``).
"""

# NOTE: metrics must be imported before trace — repro.obs.trace pulls in
# repro.exec.seeds, whose package __init__ loads the engine, which needs
# repro.obs.metrics to already be bound on this (partially initialised)
# package.
from repro.obs.export import (
    metrics_to_records,
    read_metrics,
    records_to_snapshot,
    render_report,
    write_metrics,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NONDETERMINISTIC_COUNTERS,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    deterministic_view,
    disable,
    enable,
    get_registry,
    inc,
    observe,
    set_gauge,
    set_registry,
    span,
    use_registry,
)
# stream (and its sketch substrate) is stdlib-only like metrics, so it is
# safe to bind before trace pulls in repro.exec.
from repro.obs.sketch import (
    LinearCounter,
    QuantileSketch,
    SpaceSaving,
    WindowedCounters,
)
from repro.obs.stream import (
    DEFAULT_WINDOW_SECONDS,
    NULL_STREAM,
    NullStream,
    SKETCHES_SCHEMA,
    StreamAnalytics,
    deterministic_sketches_view,
    get_stream,
    render_stream_report,
    set_stream,
    use_stream,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NONDETERMINISTIC_EVENT_PREFIXES,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    deterministic_trace_view,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
    set_tracer,
    trace_event,
    trace_span,
    use_tracer,
    write_trace,
)
from repro.obs.audit import AuditReport, audit_trace
from repro.obs.perfetto import chrome_trace, write_chrome_trace
from repro.obs.progress import ProgressReporter
from repro.obs.serve import ControlServer, StreamPublisher

__all__ = [
    "AuditReport",
    "ControlServer",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_WINDOW_SECONDS",
    "Gauge",
    "Histogram",
    "LinearCounter",
    "MetricsRegistry",
    "NONDETERMINISTIC_COUNTERS",
    "NONDETERMINISTIC_EVENT_PREFIXES",
    "NULL_REGISTRY",
    "NULL_STREAM",
    "NULL_TRACER",
    "NullRegistry",
    "NullStream",
    "NullTracer",
    "ProgressReporter",
    "QuantileSketch",
    "SKETCHES_SCHEMA",
    "SpaceSaving",
    "StreamAnalytics",
    "StreamPublisher",
    "TIME_BUCKETS",
    "TraceEvent",
    "Tracer",
    "WindowedCounters",
    "audit_trace",
    "chrome_trace",
    "deterministic_sketches_view",
    "deterministic_trace_view",
    "deterministic_view",
    "disable",
    "disable_tracing",
    "enable",
    "enable_tracing",
    "get_registry",
    "get_stream",
    "get_tracer",
    "inc",
    "metrics_to_records",
    "observe",
    "read_metrics",
    "read_trace",
    "records_to_snapshot",
    "render_report",
    "render_stream_report",
    "set_gauge",
    "set_registry",
    "set_stream",
    "set_tracer",
    "span",
    "trace_event",
    "trace_span",
    "use_registry",
    "use_stream",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics",
    "write_trace",
]
