"""Campaign observability: metrics, spans and phase timings.

The paper's measurement pipelines are long-running campaigns (38 days,
101 crawls, 200 k daily CID samples at paper scale); operating — and
optimising — them requires telemetry, just like the Nebula crawler's
per-crawl metrics and the Hydra operators' dashboards the paper itself
relies on (§3, §5.1).  This package provides the zero-dependency
substrate:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
* :func:`span` — lightweight wall-time trace contexts with hierarchical
  phase attribution (``campaign/simulate/provider-fetch``);
* exporters — a record stream through any :mod:`repro.store` backend, a
  flat JSON snapshot, and the human-readable table behind
  ``repro obs report``.

Metrics are **off by default**: the active registry is a null object
whose operations are bare no-op calls, so instrumented hot paths cost
nothing measurable and campaign outputs stay bit-identical.  Enable them
per campaign with ``ScenarioConfig(metrics=True)`` (the result then
carries ``CampaignResult.metrics``), globally with :func:`enable`, or
scoped with :func:`use_registry`::

    import repro.obs as obs

    registry = obs.enable()
    with obs.span("my-phase"):
        ...
    print(obs.render_report(registry.snapshot()))

Per-worker registries (one per crawl task) are merged deterministically
in the parent via :meth:`MetricsRegistry.merge_snapshot`, mirroring the
sharded-log heap-merge; :func:`deterministic_view` is the cross-worker
bit-identical portion of a snapshot.
"""

from repro.obs.export import (
    metrics_to_records,
    read_metrics,
    records_to_snapshot,
    render_report,
    write_metrics,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NONDETERMINISTIC_COUNTERS,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    deterministic_view,
    disable,
    enable,
    get_registry,
    inc,
    observe,
    set_gauge,
    set_registry,
    span,
    use_registry,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NONDETERMINISTIC_COUNTERS",
    "NULL_REGISTRY",
    "NullRegistry",
    "TIME_BUCKETS",
    "deterministic_view",
    "disable",
    "enable",
    "get_registry",
    "inc",
    "metrics_to_records",
    "observe",
    "read_metrics",
    "records_to_snapshot",
    "render_report",
    "set_gauge",
    "set_registry",
    "span",
    "use_registry",
    "write_metrics",
]
