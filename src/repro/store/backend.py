"""Pluggable append-only storage backends for event logs.

A campaign's hottest data structures are the monitor logs: the Hydra
DHT log and the Bitswap log grow by one record per captured message and
are then scanned (sometimes many times) by the §5 analyses.  The seed
kept them as Python lists, which caps campaigns at RAM.  A
:class:`StorageBackend` abstracts the storage so the same
:class:`~repro.store.eventlog.EventLog` facade can keep records

* in memory (the default — as fast as the original list),
* in an append-only JSONL file (streaming, human-inspectable, the same
  format :mod:`repro.core.datasets` publishes), or
* in a SQLite database (stdlib ``sqlite3``, WAL, batched inserts,
  indexed timestamps for time-window pushdown).

Backends store flat JSON-compatible dict records; object encoding and
decoding lives in :mod:`repro.store.codecs`.  All backends preserve
append order, which the analyses rely on (logs are time-ordered).
"""

from __future__ import annotations

import json
import sqlite3
from abc import ABC, abstractmethod
from itertools import islice
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

Record = Dict[str, object]

#: Records buffered before a disk backend flushes a batch.
DEFAULT_BATCH_SIZE = 2048


class StorageBackend(ABC):
    """Append-only ordered record storage."""

    #: True when the backend keeps Python objects verbatim (no codec
    #: round-trip needed).  Only the in-memory backend does.
    stores_objects = False

    @abstractmethod
    def append(self, record: Record) -> None:
        """Append one record."""

    def extend(self, records: Iterable[Record]) -> None:
        for record in records:
            self.append(record)

    @abstractmethod
    def scan(self) -> Iterator[Record]:
        """Iterate all records in append order."""

    def scan_reversed(self) -> Iterator[Record]:
        """Iterate all records newest-first (default: materialises)."""
        return iter(reversed(list(self.scan())))

    def scan_range(self, start: float, end: float) -> Iterator[Record]:
        """Records with ``start <= record["ts"] < end`` in append order.

        Backends with a timestamp index push the filter down.
        """
        for record in self.scan():
            ts = record.get("ts")
            if isinstance(ts, (int, float)) and start <= ts < end:
                yield record

    def slice(self, start: int, stop: Optional[int]) -> List[Record]:
        """Records ``start:stop`` (non-negative indices, append order)."""
        return list(islice(self.scan(), start, stop))

    @abstractmethod
    def __len__(self) -> int:
        """Number of records stored (including any unflushed buffer)."""

    def flush(self) -> None:
        """Persist any buffered records."""

    def close(self) -> None:
        self.flush()

    def clear(self) -> None:
        raise NotImplementedError(f"{type(self).__name__} cannot be cleared")


class MemoryBackend(StorageBackend):
    """A plain list — the seed's behaviour, kept as the zero-cost default."""

    stores_objects = True

    def __init__(self) -> None:
        self.records: List[Record] = []

    def append(self, record: Record) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[Record]) -> None:
        self.records.extend(records)

    def scan(self) -> Iterator[Record]:
        return iter(self.records)

    def scan_reversed(self) -> Iterator[Record]:
        return reversed(self.records)

    def slice(self, start: int, stop: Optional[int]) -> List[Record]:
        return self.records[start:stop]

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()


class JsonlBackend(StorageBackend):
    """Append-only JSON-lines file with a buffered writer.

    Opening an existing file resumes appending to it; the line format is
    exactly what :mod:`repro.core.datasets` publishes, so a campaign's
    live log *is* its published dataset.
    """

    def __init__(self, path, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.batch_size = max(1, batch_size)
        self._buffer: List[str] = []
        self._count = 0
        if self.path.exists():
            with open(self.path, "rb") as handle:
                self._count = sum(1 for _ in handle)

    def append(self, record: Record) -> None:
        self._buffer.append(json.dumps(record))
        self._count += 1
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def scan(self) -> Iterator[Record]:
        self.flush()
        with open(self.path) as handle:
            for line in handle:
                if line.strip():
                    yield json.loads(line)

    def scan_reversed(self) -> Iterator[Record]:
        self.flush()
        offsets: List[int] = []
        with open(self.path, "rb") as handle:
            position = 0
            for line in handle:
                offsets.append(position)
                position += len(line)
            for offset in reversed(offsets):
                handle.seek(offset)
                line = handle.readline().decode()
                if line.strip():
                    yield json.loads(line)

    def __len__(self) -> int:
        return self._count

    def flush(self) -> None:
        if not self._buffer:
            return
        with open(self.path, "a") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def clear(self) -> None:
        self._buffer.clear()
        self._count = 0
        if self.path.exists():
            self.path.unlink()


class SqliteBackend(StorageBackend):
    """SQLite-backed log: one table of ``(seq, ts, payload)`` rows.

    The payload is the JSON record; the timestamp is mirrored into an
    indexed column so time-window scans are pushed down to the engine.
    Inserts are buffered and written with ``executemany``.
    """

    def __init__(
        self,
        path=":memory:",
        table: str = "events",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.path = str(path)
        if not table.replace("_", "").isalnum():
            raise ValueError(f"invalid table name: {table!r}")
        self.table = table
        self.batch_size = max(1, batch_size)
        self._buffer: List[tuple] = []
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {self.table} "
            "(seq INTEGER PRIMARY KEY AUTOINCREMENT, ts REAL, payload TEXT NOT NULL)"
        )
        self._conn.execute(
            f"CREATE INDEX IF NOT EXISTS {self.table}_ts ON {self.table} (ts)"
        )
        self._count = self._conn.execute(
            f"SELECT COUNT(*) FROM {self.table}"
        ).fetchone()[0]

    def append(self, record: Record) -> None:
        ts = record.get("ts")
        self._buffer.append(
            (ts if isinstance(ts, (int, float)) else None, json.dumps(record))
        )
        self._count += 1
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def scan(self) -> Iterator[Record]:
        self.flush()
        cursor = self._conn.execute(
            f"SELECT payload FROM {self.table} ORDER BY seq"
        )
        for (payload,) in cursor:
            yield json.loads(payload)

    def scan_reversed(self) -> Iterator[Record]:
        self.flush()
        cursor = self._conn.execute(
            f"SELECT payload FROM {self.table} ORDER BY seq DESC"
        )
        for (payload,) in cursor:
            yield json.loads(payload)

    def scan_range(self, start: float, end: float) -> Iterator[Record]:
        self.flush()
        cursor = self._conn.execute(
            f"SELECT payload FROM {self.table} WHERE ts >= ? AND ts < ? ORDER BY seq",
            (start, end),
        )
        for (payload,) in cursor:
            yield json.loads(payload)

    def slice(self, start: int, stop: Optional[int]) -> List[Record]:
        self.flush()
        limit = -1 if stop is None else max(0, stop - start)
        cursor = self._conn.execute(
            f"SELECT payload FROM {self.table} ORDER BY seq LIMIT ? OFFSET ?",
            (limit, start),
        )
        return [json.loads(payload) for (payload,) in cursor]

    def __len__(self) -> int:
        return self._count

    def flush(self) -> None:
        if not self._buffer:
            return
        with self._conn:
            self._conn.executemany(
                f"INSERT INTO {self.table} (ts, payload) VALUES (?, ?)", self._buffer
            )
        self._buffer.clear()

    def close(self) -> None:
        self.flush()
        self._conn.close()

    def clear(self) -> None:
        self._buffer.clear()
        self._count = 0
        with self._conn:
            self._conn.execute(f"DELETE FROM {self.table}")
