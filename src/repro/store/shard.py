"""Hash-free sharding across several storage backends.

Writes are spread round-robin so every shard carries an equal slice of
the log (a monitor log has no natural partition key worth preserving —
the analyses always scan everything).  Each record is stamped with a
global sequence number on the way in, and a k-way merge on that number
restores exact append order on the way out, so a sharded log is
indistinguishable from a single-backend log to every consumer.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Iterator, List, Optional, Sequence

from repro.store.backend import Record, StorageBackend

#: Key under which the global sequence number travels inside records.
SEQ_FIELD = "_seq"


class ShardedBackend(StorageBackend):
    """Round-robin writes over ``shards``, order-preserving merged reads."""

    def __init__(self, shards: Sequence[StorageBackend]) -> None:
        if not shards:
            raise ValueError("a sharded backend needs at least one shard")
        if any(shard.stores_objects for shard in shards):
            # Sequence stamping mutates dict records; object-native
            # shards would leak the stamp into callers' objects.
            raise ValueError("sharding requires record (dict) backends")
        self.shards: List[StorageBackend] = list(shards)
        self._next_seq = count(sum(len(shard) for shard in self.shards))
        self._next_shard = len(self) % len(self.shards)

    def append(self, record: Record) -> None:
        stamped = dict(record)
        stamped[SEQ_FIELD] = next(self._next_seq)
        self.shards[self._next_shard].append(stamped)
        self._next_shard = (self._next_shard + 1) % len(self.shards)

    def _merge(self, iterators: List[Iterator[Record]], reverse: bool) -> Iterator[Record]:
        streams = [
            (((-r[SEQ_FIELD] if reverse else r[SEQ_FIELD]), r) for r in iterator)
            for iterator in iterators
        ]
        for _, record in heapq.merge(*streams):
            clean = dict(record)
            clean.pop(SEQ_FIELD, None)
            yield clean

    def scan(self) -> Iterator[Record]:
        return self._merge([shard.scan() for shard in self.shards], reverse=False)

    def scan_reversed(self) -> Iterator[Record]:
        return self._merge(
            [shard.scan_reversed() for shard in self.shards], reverse=True
        )

    def scan_range(self, start: float, end: float) -> Iterator[Record]:
        return self._merge(
            [shard.scan_range(start, end) for shard in self.shards], reverse=False
        )

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def clear(self) -> None:
        for shard in self.shards:
            shard.clear()
        self._next_seq = count(0)
        self._next_shard = 0
