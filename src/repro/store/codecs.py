"""Event ↔ record codecs for the monitor logs.

One codec per log type maps the analysis-facing dataclass onto the flat
JSON record the storage backends (and the published datasets of
:mod:`repro.core.datasets`) use.  The record shapes extend the seed's
JSONL formats backwards-compatibly: decoders tolerate missing optional
fields, so files written by older code still load.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, MessageType
from repro.monitors.bitswap_monitor import BitswapLogEntry
from repro.store.backend import Record


class EventCodec(Protocol):
    """Encode events to JSON records and back."""

    def encode(self, event) -> Record: ...

    def decode(self, record: Record) -> object: ...

    def timestamp(self, event) -> float: ...


class HydraMessageCodec:
    """:class:`MessageEnvelope` ↔ the ``hydra.jsonl`` record shape."""

    def encode(self, event: MessageEnvelope) -> Record:
        return {
            "ts": event.timestamp,
            "sender": event.sender.to_base58(),
            "ip": event.sender_ip,
            "type": event.message_type.value,
            "cid": event.target_cid.to_base32() if event.target_cid else None,
            # FIND_NODE targets are raw keys with no CID; keep them as hex
            # so the disk round trip preserves the full envelope.
            "key": format(event.target_key, "x") if event.target_key is not None else None,
            "via_relay": event.via_relay.to_base58() if event.via_relay else None,
        }

    def decode(self, record: Record) -> MessageEnvelope:
        cid = CID.from_base32(record["cid"]) if record.get("cid") else None
        key_text = record.get("key")
        if key_text is not None:
            target_key: Optional[int] = int(key_text, 16)
        else:
            target_key = cid.dht_key if cid is not None else None
        return MessageEnvelope(
            timestamp=record["ts"],
            sender=PeerID.from_base58(record["sender"]),
            sender_ip=record["ip"],
            message_type=MessageType(record["type"]),
            target_key=target_key,
            target_cid=cid,
            via_relay=(
                PeerID.from_base58(record["via_relay"])
                if record.get("via_relay")
                else None
            ),
        )

    def timestamp(self, event: MessageEnvelope) -> float:
        return event.timestamp


class BitswapEntryCodec:
    """:class:`BitswapLogEntry` ↔ the ``bitswap.jsonl`` record shape."""

    def encode(self, event: BitswapLogEntry) -> Record:
        return {
            "ts": event.timestamp,
            "sender": event.sender.to_base58(),
            "ip": event.sender_ip,
            "cid": event.cid.to_base32(),
        }

    def decode(self, record: Record) -> BitswapLogEntry:
        return BitswapLogEntry(
            timestamp=record["ts"],
            sender=PeerID.from_base58(record["sender"]),
            sender_ip=record["ip"],
            cid=CID.from_base32(record["cid"]),
        )

    def timestamp(self, event: BitswapLogEntry) -> float:
        return event.timestamp


class TraceEventCodec:
    """:class:`~repro.obs.trace.TraceEvent` ↔ the ``.trace`` record shape.

    The record shape is what :func:`repro.obs.trace.event_to_record`
    writes plus the backends' ``ts`` index key (set to the simulated
    clock, which keeps windowed queries ``log.window(t0, t1)`` aligned
    with every other campaign log).  Decoding tolerates records without
    ``ts``, so an :class:`~repro.store.eventlog.EventLog` built on this
    codec also reads files produced by
    :func:`repro.obs.trace.write_trace` (skip the leading ``meta``
    records when scanning raw backends — the event-log route only ever
    sees events).
    """

    def encode(self, event) -> Record:
        from repro.obs.trace import event_to_record

        record = event_to_record(event)
        record["ts"] = event.sim_time
        return record

    def decode(self, record: Record):
        from repro.obs.trace import record_to_event

        return record_to_event(record)

    def timestamp(self, event) -> float:
        return event.sim_time


class GroundTruthCodec:
    """:class:`~repro.attack.ground_truth.GroundTruthEntry` ↔ ``attack.jsonl``."""

    def encode(self, event) -> Record:
        return {
            "ts": event.timestamp,
            "attack": event.attack,
            "event": event.event,
            "peer": event.peer.to_base58() if event.peer else None,
            "cid": event.cid.to_base32() if event.cid else None,
            "end": event.end,
        }

    def decode(self, record: Record):
        from repro.attack.ground_truth import GroundTruthEntry

        return GroundTruthEntry(
            timestamp=record["ts"],
            attack=record["attack"],
            event=record["event"],
            peer=PeerID.from_base58(record["peer"]) if record.get("peer") else None,
            cid=CID.from_base32(record["cid"]) if record.get("cid") else None,
            end=record.get("end"),
        )

    def timestamp(self, event) -> float:
        return event.timestamp


HYDRA_CODEC = HydraMessageCodec()
BITSWAP_CODEC = BitswapEntryCodec()
TRACE_CODEC = TraceEventCodec()
ATTACK_CODEC = GroundTruthCodec()
