"""Storage subsystem: pluggable, shardable event-log backends.

Spec strings name a backend; :func:`parse_spec` is the single parser and
:func:`open_store` the single factory everything routes through
(``ScenarioConfig.storage``, the monitors' ``store=`` parameters, sweep
task rebasing and the CLI)::

    memory                      # Python objects in RAM (the default)
    jsonl:/data/hydra.jsonl     # append-only JSON lines
    sqlite:/data/hydra.sqlite   # stdlib sqlite3, WAL, indexed timestamps
    sqlite::memory:             # sqlite without a file
    sharded:4:sqlite:/data/hydra.sqlite   # round-robin over 4 shards

``campaign_stores`` maps one spec onto the per-log backends a
measurement campaign needs (treating the spec's path as a directory).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.store.backend import (
    JsonlBackend,
    MemoryBackend,
    Record,
    SqliteBackend,
    StorageBackend,
)
from repro.store.codecs import (
    ATTACK_CODEC,
    BITSWAP_CODEC,
    HYDRA_CODEC,
    TRACE_CODEC,
    BitswapEntryCodec,
    GroundTruthCodec,
    HydraMessageCodec,
    TraceEventCodec,
)
from repro.store.eventlog import EventLog
from repro.store.shard import ShardedBackend

__all__ = [
    "ATTACK_CODEC",
    "BITSWAP_CODEC",
    "BitswapEntryCodec",
    "EventLog",
    "GroundTruthCodec",
    "HYDRA_CODEC",
    "HydraMessageCodec",
    "JsonlBackend",
    "MemoryBackend",
    "Record",
    "ShardedBackend",
    "SqliteBackend",
    "StorageBackend",
    "StorageSpec",
    "TRACE_CODEC",
    "TraceEventCodec",
    "campaign_stores",
    "copy_records",
    "open_backend",
    "open_file_backend",
    "open_store",
    "parse_spec",
    "task_storage_spec",
]

#: File suffixes understood by path-based auto-detection (``.trace`` is
#: the conventional extension for JSONL trace-record streams).
_SUFFIX_KINDS = {".jsonl": "jsonl", ".sqlite": "sqlite", ".db": "sqlite", ".trace": "jsonl"}

#: Spec kinds that store records in files (shardable, rebasable).
_FILE_KINDS = ("jsonl", "sqlite")


@dataclass(frozen=True)
class StorageSpec:
    """A parsed storage spec (see module docs for the string forms).

    ``kind`` is ``memory``, ``jsonl`` or ``sqlite``; ``shards > 1``
    round-robins over that many backends of the same kind.  ``path`` is
    ``None`` for the memory backend and may be SQLite's anonymous
    ``:memory:`` marker.
    """

    kind: str
    path: Optional[str] = None
    shards: int = 1

    @property
    def is_memory(self) -> bool:
        return self.kind == "memory"

    @property
    def on_disk(self) -> bool:
        """Whether the spec names actual files (shardable, rebasable)."""
        return self.kind in _FILE_KINDS and self.path != ":memory:"

    def with_path(self, path) -> "StorageSpec":
        return replace(self, path=str(path))

    def to_string(self) -> str:
        """The canonical spec string (round-trips through parse_spec)."""
        if self.is_memory:
            return "memory"
        if self.shards > 1:
            return f"sharded:{self.shards}:{self.kind}:{self.path}"
        return f"{self.kind}:{self.path}"


def parse_spec(spec: Union[str, StorageSpec]) -> StorageSpec:
    """Parse a storage spec string into a :class:`StorageSpec`.

    The single place spec syntax is understood; raises ``ValueError`` on
    malformed specs.  Already-parsed specs pass through unchanged.
    """
    if isinstance(spec, StorageSpec):
        return spec
    kind, _, rest = spec.partition(":")
    if kind == "memory":
        if rest:
            raise ValueError(f"memory backend takes no path: {spec!r}")
        return StorageSpec(kind="memory")
    if kind in _FILE_KINDS:
        if not rest:
            raise ValueError(f"{kind} backend needs a path: {spec!r}")
        if rest == ":memory:" and kind != "sqlite":
            raise ValueError(f"only sqlite supports :memory:: {spec!r}")
        return StorageSpec(kind=kind, path=rest)
    if kind == "sharded":
        count_text, _, inner = rest.partition(":")
        try:
            shards = int(count_text)
        except ValueError:
            raise ValueError(f"sharded spec needs a shard count: {spec!r}") from None
        if shards < 1 or not inner:
            raise ValueError(f"bad sharded spec: {spec!r}")
        parsed = parse_spec(inner)
        if parsed.kind not in _FILE_KINDS:
            raise ValueError(f"cannot shard backend spec: {inner!r}")
        return replace(parsed, shards=shards)
    raise ValueError(f"unknown storage backend spec: {spec!r}")


def _sharded_path(path: str, shard: int) -> str:
    pure = Path(path)
    return str(pure.with_name(f"{pure.stem}-shard{shard}{pure.suffix}"))


def open_store(
    spec: Union[str, StorageSpec, StorageBackend, None] = None,
) -> StorageBackend:
    """The one storage factory: spec string, parsed spec, or pass-through.

    ``None`` opens a fresh in-memory backend; an existing
    :class:`StorageBackend` is returned unchanged, so every ``store=``
    parameter can accept either a backend instance or a spec string.
    """
    if spec is None:
        return MemoryBackend()
    if isinstance(spec, StorageBackend):
        return spec
    parsed = parse_spec(spec)
    if parsed.is_memory:
        return MemoryBackend()
    opener = JsonlBackend if parsed.kind == "jsonl" else SqliteBackend
    if parsed.shards > 1:
        if parsed.path == ":memory:":
            return ShardedBackend([SqliteBackend(":memory:") for _ in range(parsed.shards)])
        return ShardedBackend(
            [opener(_sharded_path(parsed.path, i)) for i in range(parsed.shards)]
        )
    return opener(parsed.path)


def open_backend(spec: str) -> StorageBackend:
    """Build a storage backend from a spec string (see module docs)."""
    return open_store(parse_spec(spec))


def open_file_backend(path) -> StorageBackend:
    """Open an existing log file, picking the backend from its suffix."""
    suffix = Path(path).suffix.lower()
    kind = _SUFFIX_KINDS.get(suffix)
    if kind is None:
        raise ValueError(
            f"cannot infer backend from suffix {suffix!r} (expected one of "
            f"{sorted(_SUFFIX_KINDS)})"
        )
    return open_store(StorageSpec(kind=kind, path=str(path)))


def task_storage_spec(spec: str, task: object) -> str:
    """Rebase a campaign storage spec into a per-task subdirectory.

    A sweep runs many campaigns against one storage spec; writing them
    all into the same directory would interleave unrelated logs.  Each
    task therefore gets ``<dir>/task-<id>``::

        task_storage_spec("sqlite:out/run", 3)  ->  "sqlite:out/run/task-3"

    ``memory`` passes through unchanged (nothing to collide on).
    """
    parsed = parse_spec(spec)
    if parsed.is_memory:
        return parsed.to_string()
    if not parsed.on_disk:
        raise ValueError(f"cannot rebase storage spec per task: {spec!r}")
    return parsed.with_path(Path(parsed.path) / f"task-{task}").to_string()


def campaign_stores(
    spec: Union[str, StorageSpec],
    names: Tuple[str, ...] = ("hydra", "bitswap"),
    workers: int = 1,
) -> Dict[str, StorageBackend]:
    """Per-log backends for a campaign from a single storage spec.

    ``memory`` yields independent in-memory backends; for disk specs the
    path is a *directory* and each log gets its own file in it, e.g.
    ``sqlite:out/run1`` → ``out/run1/hydra.sqlite`` and
    ``out/run1/bitswap.sqlite``.

    ``workers > 1`` shards each disk-backed log ``workers`` ways (one
    file per worker slot); readers see the single ordered log through
    the :class:`~repro.store.shard.ShardedBackend` heap-merge, so a
    parallel campaign's stored state is indistinguishable from a serial
    one.  Already-sharded and in-memory specs are left untouched.
    """
    parsed = parse_spec(spec)
    if workers > 1 and parsed.shards == 1 and parsed.on_disk:
        parsed = replace(parsed, shards=workers)
    if parsed.is_memory:
        return {name: MemoryBackend() for name in names}
    if parsed.path == ":memory:":
        return {name: open_store(parsed) for name in names}
    suffix = "jsonl" if parsed.kind == "jsonl" else "sqlite"
    return {
        name: open_store(parsed.with_path(Path(parsed.path) / f"{name}.{suffix}"))
        for name in names
    }


def copy_records(source: StorageBackend, destination: StorageBackend) -> int:
    """Stream every record from one backend into another; returns count."""
    copied = 0
    batch = []
    for record in source.scan():
        batch.append(record)
        copied += 1
        if len(batch) >= 4096:
            destination.extend(batch)
            batch.clear()
    if batch:
        destination.extend(batch)
    destination.flush()
    return copied
