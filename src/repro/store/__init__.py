"""Storage subsystem: pluggable, shardable event-log backends.

``open_backend`` turns a spec string into a backend::

    memory                      # Python objects in RAM (the default)
    jsonl:/data/hydra.jsonl     # append-only JSON lines
    sqlite:/data/hydra.sqlite   # stdlib sqlite3, WAL, indexed timestamps
    sqlite::memory:             # sqlite without a file
    sharded:4:sqlite:/data/hydra.sqlite   # round-robin over 4 shards

``campaign_stores`` maps one spec onto the per-log backends a
measurement campaign needs (treating the spec's path as a directory).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

from repro.store.backend import (
    JsonlBackend,
    MemoryBackend,
    Record,
    SqliteBackend,
    StorageBackend,
)
from repro.store.codecs import BITSWAP_CODEC, HYDRA_CODEC, BitswapEntryCodec, HydraMessageCodec
from repro.store.eventlog import EventLog
from repro.store.shard import ShardedBackend

__all__ = [
    "BITSWAP_CODEC",
    "BitswapEntryCodec",
    "EventLog",
    "HYDRA_CODEC",
    "HydraMessageCodec",
    "JsonlBackend",
    "MemoryBackend",
    "Record",
    "ShardedBackend",
    "SqliteBackend",
    "StorageBackend",
    "campaign_stores",
    "copy_records",
    "open_backend",
    "task_storage_spec",
]

#: File suffixes understood by path-based auto-detection.
_SUFFIX_KINDS = {".jsonl": "jsonl", ".sqlite": "sqlite", ".db": "sqlite"}


def _sharded_path(path: str, shard: int) -> str:
    pure = Path(path)
    return str(pure.with_name(f"{pure.stem}-shard{shard}{pure.suffix}"))


def open_backend(spec: str) -> StorageBackend:
    """Build a storage backend from a spec string (see module docs)."""
    kind, _, rest = spec.partition(":")
    if kind == "memory":
        if rest:
            raise ValueError(f"memory backend takes no path: {spec!r}")
        return MemoryBackend()
    if kind == "jsonl":
        if not rest:
            raise ValueError(f"jsonl backend needs a path: {spec!r}")
        return JsonlBackend(rest)
    if kind == "sqlite":
        if not rest:
            raise ValueError(f"sqlite backend needs a path or :memory:: {spec!r}")
        return SqliteBackend(rest)
    if kind == "sharded":
        count_text, _, inner = rest.partition(":")
        try:
            shards = int(count_text)
        except ValueError:
            raise ValueError(f"sharded spec needs a shard count: {spec!r}") from None
        if shards < 1 or not inner:
            raise ValueError(f"bad sharded spec: {spec!r}")
        inner_kind, _, inner_path = inner.partition(":")
        if inner_kind == "sqlite" and inner_path == ":memory:":
            return ShardedBackend([SqliteBackend(":memory:") for _ in range(shards)])
        if inner_kind in ("jsonl", "sqlite") and inner_path:
            opener = JsonlBackend if inner_kind == "jsonl" else SqliteBackend
            return ShardedBackend(
                [opener(_sharded_path(inner_path, i)) for i in range(shards)]
            )
        raise ValueError(f"cannot shard backend spec: {inner!r}")
    raise ValueError(f"unknown storage backend spec: {spec!r}")


def open_file_backend(path) -> StorageBackend:
    """Open an existing log file, picking the backend from its suffix."""
    suffix = Path(path).suffix.lower()
    kind = _SUFFIX_KINDS.get(suffix)
    if kind is None:
        raise ValueError(
            f"cannot infer backend from suffix {suffix!r} (expected one of "
            f"{sorted(_SUFFIX_KINDS)})"
        )
    return open_backend(f"{kind}:{path}")


def task_storage_spec(spec: str, task: object) -> str:
    """Rebase a campaign storage spec into a per-task subdirectory.

    A sweep runs many campaigns against one storage spec; writing them
    all into the same directory would interleave unrelated logs.  Each
    task therefore gets ``<dir>/task-<id>``::

        task_storage_spec("sqlite:out/run", 3)  ->  "sqlite:out/run/task-3"

    ``memory`` passes through unchanged (nothing to collide on).
    """
    kind, _, rest = spec.partition(":")
    if kind == "memory":
        return spec
    if kind == "sharded":
        count_text, _, inner = rest.partition(":")
        inner_kind, _, inner_path = inner.partition(":")
        if inner_kind not in ("jsonl", "sqlite") or not inner_path or inner_path == ":memory:":
            raise ValueError(f"cannot rebase storage spec per task: {spec!r}")
        return f"sharded:{count_text}:{inner_kind}:{Path(inner_path) / f'task-{task}'}"
    if kind in ("jsonl", "sqlite") and rest and rest != ":memory:":
        return f"{kind}:{Path(rest) / f'task-{task}'}"
    raise ValueError(f"cannot rebase storage spec per task: {spec!r}")


def campaign_stores(
    spec: str, names: Tuple[str, ...] = ("hydra", "bitswap"), workers: int = 1
) -> Dict[str, StorageBackend]:
    """Per-log backends for a campaign from a single storage spec.

    ``memory`` yields independent in-memory backends; for disk specs the
    path is a *directory* and each log gets its own file in it, e.g.
    ``sqlite:out/run1`` → ``out/run1/hydra.sqlite`` and
    ``out/run1/bitswap.sqlite``.

    ``workers > 1`` shards each disk-backed log ``workers`` ways (one
    file per worker slot); readers see the single ordered log through
    the :class:`~repro.store.shard.ShardedBackend` heap-merge, so a
    parallel campaign's stored state is indistinguishable from a serial
    one.  Already-sharded and in-memory specs are left untouched.
    """
    kind, _, rest = spec.partition(":")
    if (
        workers > 1
        and kind in ("jsonl", "sqlite")
        and rest
        and rest != ":memory:"
    ):
        spec = f"sharded:{workers}:{spec}"
        kind, _, rest = spec.partition(":")
    if kind == "memory":
        return {name: MemoryBackend() for name in names}
    if kind in ("jsonl", "sqlite"):
        if not rest or rest == ":memory:":
            if kind == "sqlite" and rest == ":memory:":
                return {name: SqliteBackend(":memory:") for name in names}
            raise ValueError(f"campaign storage spec needs a directory: {spec!r}")
        suffix = "jsonl" if kind == "jsonl" else "sqlite"
        return {
            name: open_backend(f"{kind}:{Path(rest) / f'{name}.{suffix}'}")
            for name in names
        }
    if kind == "sharded":
        count_text, _, inner = rest.partition(":")
        inner_kind, _, inner_path = inner.partition(":")
        if inner_kind not in ("jsonl", "sqlite") or not inner_path:
            raise ValueError(f"bad sharded campaign spec: {spec!r}")
        suffix = "jsonl" if inner_kind == "jsonl" else "sqlite"
        return {
            name: open_backend(
                f"sharded:{count_text}:{inner_kind}:{Path(inner_path) / f'{name}.{suffix}'}"
            )
            for name in names
        }
    raise ValueError(f"unknown storage backend spec: {spec!r}")


def copy_records(source: StorageBackend, destination: StorageBackend) -> int:
    """Stream every record from one backend into another; returns count."""
    copied = 0
    batch = []
    for record in source.scan():
        batch.append(record)
        copied += 1
        if len(batch) >= 4096:
            destination.extend(batch)
            batch.clear()
    if batch:
        destination.extend(batch)
    destination.flush()
    return copied
