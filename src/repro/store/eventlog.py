"""The typed, list-compatible facade over a storage backend.

The monitors (and everything downstream of them) treat their logs as
ordered sequences: ``len(log)``, ``log[pos:]``, ``for e in log``,
``reversed(log)``, ``log.append(e)``.  :class:`EventLog` keeps exactly
that contract while delegating storage to any
:class:`~repro.store.backend.StorageBackend` — in memory the objects are
stored verbatim (zero overhead versus the seed's plain list); on disk
they round-trip through the log's codec.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional

from repro.store.backend import MemoryBackend, StorageBackend


class EventLog:
    """Sequence-like append-only log of typed events."""

    def __init__(self, codec, backend: Optional[StorageBackend] = None) -> None:
        self.codec = codec
        self.backend = backend if backend is not None else MemoryBackend()
        self._native = self.backend.stores_objects

    # -- writes -------------------------------------------------------------

    def append(self, event) -> None:
        if self._native:
            self.backend.append(event)
        else:
            self.backend.append(self.codec.encode(event))

    def extend(self, events) -> None:
        if self._native:
            self.backend.extend(events)
        else:
            self.backend.extend(self.codec.encode(event) for event in events)

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.backend)

    def __iter__(self) -> Iterator:
        if self._native:
            return iter(self.backend.scan())
        return (self.codec.decode(record) for record in self.backend.scan())

    def __reversed__(self) -> Iterator:
        if self._native:
            return iter(self.backend.scan_reversed())
        return (self.codec.decode(record) for record in self.backend.scan_reversed())

    def __getitem__(self, index):
        if isinstance(index, slice):
            if index.step not in (None, 1):
                return list(self)[index]
            start, stop, _ = index.indices(len(self))
            rows = self.backend.slice(start, stop)
            if self._native:
                return list(rows)
            return [self.codec.decode(record) for record in rows]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("EventLog index out of range")
        rows = self.backend.slice(index, index + 1)
        if not rows:
            raise IndexError("EventLog index out of range")
        return rows[0] if self._native else self.codec.decode(rows[0])

    def window(self, start: float, end: float) -> Iterator:
        """Events with ``start <= timestamp < end``.

        Disk backends push the filter down to their timestamp index; the
        in-memory log walks backwards from the tail and stops early,
        matching the seed's hot loop (logs are append-ordered by time).
        """
        if not self._native:
            return (
                self.codec.decode(record)
                for record in self.backend.scan_range(start, end)
            )

        def backwards() -> Iterator:
            collected: List = []
            for event in self.backend.scan_reversed():
                ts = self.codec.timestamp(event)
                if ts < start:
                    break
                if ts < end:
                    collected.append(event)
            return iter(reversed(collected))

        return backwards()

    def tail(self, count: int) -> List:
        """The newest ``count`` events, oldest-first."""
        if count <= 0:
            return []
        newest = list(islice(self.backend.scan_reversed(), count))
        if not self._native:
            newest = [self.codec.decode(record) for record in newest]
        newest.reverse()
        return newest

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()
