"""Passive churn analysis from crawl snapshots.

The paper's §4 explanation of the counting divergence — "non-cloud IPFS
nodes tend to be short-lived and frequently change their IP addresses" —
is itself measurable from the crawl dataset, the way Daniel & Tschorsch
(ICDCSW '22, cited as [13]) measure IPFS churn passively.  This module
estimates per-peer uptime, session structure and inter-crawl IP
stability, split by any peer-level label (cloud status in practice).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.crawler import CrawlDataset
from repro.ids.peerid import PeerID


@dataclass
class PeerPresence:
    """One peer's appearances across a crawl campaign."""

    peer: PeerID
    crawls_seen: List[int] = field(default_factory=list)
    ips_per_crawl: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def appearances(self) -> int:
        return len(self.crawls_seen)

    def uptime(self, total_crawls: int) -> float:
        """Fraction of snapshots the peer was present in."""
        if total_crawls <= 0:
            return 0.0
        return self.appearances / total_crawls

    def sessions(self) -> List[Tuple[int, int]]:
        """Maximal runs of consecutive crawls the peer was present in,
        as (first_crawl, last_crawl) pairs."""
        if not self.crawls_seen:
            return []
        ordered = sorted(self.crawls_seen)
        sessions: List[Tuple[int, int]] = []
        start = previous = ordered[0]
        for crawl in ordered[1:]:
            if crawl == previous + 1:
                previous = crawl
                continue
            sessions.append((start, previous))
            start = previous = crawl
        sessions.append((start, previous))
        return sessions

    def ip_changes(self) -> int:
        """How many times the announced IP set changed between
        consecutive appearances."""
        ordered = sorted(self.crawls_seen)
        changes = 0
        for earlier, later in zip(ordered, ordered[1:]):
            if set(self.ips_per_crawl[earlier]) != set(self.ips_per_crawl[later]):
                changes += 1
        return changes


def peer_presences(dataset: CrawlDataset) -> Dict[PeerID, PeerPresence]:
    """Index every peer's appearances across the campaign."""
    presences: Dict[PeerID, PeerPresence] = {}
    for snapshot in dataset.snapshots:
        for obs in snapshot.observations.values():
            presence = presences.get(obs.peer)
            if presence is None:
                presence = presences[obs.peer] = PeerPresence(obs.peer)
            presence.crawls_seen.append(snapshot.crawl_id)
            presence.ips_per_crawl[snapshot.crawl_id] = obs.ips
    return presences


@dataclass
class ChurnReport:
    """Aggregate churn statistics for one peer group."""

    peers: int
    mean_uptime: float
    median_session_crawls: float
    single_appearance_share: float
    ip_change_rate: float  # IP changes per consecutive-appearance pair

    @staticmethod
    def empty() -> "ChurnReport":
        return ChurnReport(0, 0.0, 0.0, 0.0, 0.0)


def churn_report(
    dataset: CrawlDataset,
    include: Optional[Callable[[PeerPresence], bool]] = None,
) -> ChurnReport:
    """Churn statistics over (a filtered subset of) the crawl dataset."""
    total_crawls = len(dataset)
    presences = [
        presence
        for presence in peer_presences(dataset).values()
        if include is None or include(presence)
    ]
    if not presences or total_crawls == 0:
        return ChurnReport.empty()
    uptimes = [presence.uptime(total_crawls) for presence in presences]
    session_lengths: List[int] = []
    for presence in presences:
        for start, end in presence.sessions():
            session_lengths.append(end - start + 1)
    session_lengths.sort()
    median_session = float(session_lengths[len(session_lengths) // 2])
    singles = sum(1 for presence in presences if presence.appearances == 1)
    pairs = sum(max(0, presence.appearances - 1) for presence in presences)
    changes = sum(presence.ip_changes() for presence in presences)
    return ChurnReport(
        peers=len(presences),
        mean_uptime=sum(uptimes) / len(uptimes),
        median_session_crawls=median_session,
        single_appearance_share=singles / len(presences),
        ip_change_rate=changes / pairs if pairs else 0.0,
    )


def churn_by_label(
    dataset: CrawlDataset,
    label_of_ip: Callable[[str], str],
) -> Dict[str, ChurnReport]:
    """Churn reports split by a peer-level (majority-vote) label —
    cloud vs non-cloud in the paper's usage."""
    presences = peer_presences(dataset)
    labels: Dict[PeerID, str] = {}
    for peer, presence in presences.items():
        votes: Dict[str, int] = defaultdict(int)
        for ips in presence.ips_per_crawl.values():
            for ip in ips:
                votes[label_of_ip(ip)] += 1
        if votes:
            top = max(votes.values())
            labels[peer] = min(label for label, count in votes.items() if count == top)
    reports: Dict[str, ChurnReport] = {}
    for label in sorted(set(labels.values())):
        reports[label] = churn_report(
            dataset, include=lambda presence, want=label: labels.get(presence.peer) == want
        )
    return reports
