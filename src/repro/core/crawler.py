"""The DHT crawler (paper §3).

It is possible to enumerate all DHT connections of a node through crafted
FIND_NODE messages, sweeping the address space towards the target node's
own address.  The crawler BFS-walks the network from bootstrap peers; for
every connectable peer it sweeps each k-bucket with a crafted key and
unions the responses, yielding the peer's complete outbound DHT view.
Unconnectable peers remain in the snapshot as discovered-but-uncrawlable
leaves.

The crawl itself is factored into two halves so that repeated crawls can
run on a process pool (see :mod:`repro.exec`):

* :func:`freeze_crawl_task` captures the overlay state a crawl can
  observe into a compact, picklable :class:`CrawlTask` (peers are
  interned to integer indices; only digests, DHT keys, addresses,
  dialability and routing-table edges travel);
* :func:`execute_crawl_task` is a *pure function* of that task.  All
  randomness comes from the task's own derived seed, and every internal
  set holds ``int`` indices (whose iteration order, unlike ``bytes``
  hashes, does not depend on ``PYTHONHASHSEED``), so the resulting
  snapshot is bit-identical no matter which process executes it.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exec.seeds import derive_seed
from repro.ids.keys import KEY_BITS, random_key_in_bucket
from repro.ids.peerid import PeerID
from repro.netsim.network import Overlay
from repro.obs import metrics as obs
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.sketch import QuantileSketch
from repro.obs.trace import DEFAULT_CAPACITY, Tracer, use_tracer

#: The paper's crawl connection timeout (3 minutes).
DEFAULT_TIMEOUT = 180.0

#: Concurrent connection workers modelled for the duration estimate.
CRAWL_PARALLELISM = 1000


@dataclass
class CrawlObservation:
    """One peer as seen in one crawl."""

    peer: PeerID
    ips: Tuple[str, ...]
    crawlable: bool


@dataclass
class CrawlSnapshot:
    """One full sweep of the DHT."""

    crawl_id: int
    started_at: float
    duration: float = 0.0
    observations: Dict[PeerID, CrawlObservation] = field(default_factory=dict)
    #: outgoing DHT edges of every *crawled* peer.
    edges: Dict[PeerID, Tuple[PeerID, ...]] = field(default_factory=dict)
    requests_sent: int = 0

    @property
    def num_discovered(self) -> int:
        return len(self.observations)

    @property
    def num_crawlable(self) -> int:
        return sum(1 for obs in self.observations.values() if obs.crawlable)

    def peer_ip_rows(self) -> Iterator[Tuple[int, PeerID, str]]:
        """(crawl_id, peer, ip) rows — the Table 1 dataset shape."""
        for obs in self.observations.values():
            for ip in obs.ips:
                yield self.crawl_id, obs.peer, ip


@dataclass
class CrawlDataset:
    """All snapshots of a crawling campaign."""

    snapshots: List[CrawlSnapshot] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.snapshots)

    def add(self, snapshot: CrawlSnapshot) -> None:
        self.snapshots.append(snapshot)

    @classmethod
    def merge(cls, shards: Iterable[Sequence[CrawlSnapshot]]) -> "CrawlDataset":
        """K-way merge of per-worker snapshot shards into crawl order.

        Each shard must be internally ordered by ``crawl_id`` (true for
        any worker that processed tasks in submission order); the merge
        then restores the global campaign order exactly, mirroring the
        sequence-number heap-merge of
        :class:`repro.store.shard.ShardedBackend`.
        """
        merged = heapq.merge(*shards, key=lambda snapshot: snapshot.crawl_id)
        return cls(snapshots=list(merged))

    def rows(self) -> Iterator[Tuple[int, PeerID, str]]:
        for snapshot in self.snapshots:
            yield from snapshot.peer_ip_rows()

    # -- §3 summary statistics ------------------------------------------------

    def avg_discovered(self) -> float:
        if not self.snapshots:
            return 0.0
        return sum(s.num_discovered for s in self.snapshots) / len(self.snapshots)

    def avg_crawlable(self) -> float:
        if not self.snapshots:
            return 0.0
        return sum(s.num_crawlable for s in self.snapshots) / len(self.snapshots)

    def unique_peer_ids(self) -> int:
        peers: Set[PeerID] = set()
        for snapshot in self.snapshots:
            peers.update(snapshot.observations)
        return len(peers)

    def unique_ips(self) -> int:
        ips: Set[str] = set()
        for snapshot in self.snapshots:
            for obs in snapshot.observations.values():
                ips.update(obs.ips)
        return len(ips)

    def avg_ips_per_peer(self) -> float:
        """Average number of distinct non-local IPs a peer announced
        across all crawls (the paper reports 1.82)."""
        per_peer: Dict[PeerID, Set[str]] = {}
        for snapshot in self.snapshots:
            for obs in snapshot.observations.values():
                per_peer.setdefault(obs.peer, set()).update(obs.ips)
        if not per_peer:
            return 0.0
        return sum(len(ips) for ips in per_peer.values()) / len(per_peer)


# ---------------------------------------------------------------------------
# the pure crawl task
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrawlTask:
    """Everything one crawl can observe, frozen into picklable plain data.

    Peers are interned: index ``i`` everywhere refers to the peer with
    digest ``peer_digests[i]`` and Kademlia key ``dht_keys[i]``.
    """

    crawl_id: int
    #: per-crawl derived seed (never shared RNG state).
    seed: int
    started_at: float
    timeout: float
    bootstrap_size: int
    k: int
    #: online DHT-server count at freeze time (drives the sweep depth).
    oracle_size: int
    peer_digests: Tuple[bytes, ...]
    dht_keys: Tuple[int, ...]
    #: last-announced non-circuit IPs per peer (stale peers keep theirs).
    ips: Tuple[Tuple[str, ...], ...]
    #: online DHT servers: index -> (reachable, response latency).
    servers: Dict[int, Tuple[bool, float]]
    #: routing-table contents of every online DHT server.
    tables: Dict[int, Tuple[int, ...]]
    #: bootstrap candidates: stable (platform) servers, and all servers.
    stable_pool: Tuple[int, ...]
    server_pool: Tuple[int, ...]


def freeze_crawl_task(
    overlay: Overlay,
    crawl_id: int,
    *,
    seed: int,
    timeout: float = DEFAULT_TIMEOUT,
    bootstrap_size: int = 8,
) -> CrawlTask:
    """Capture the crawl-observable overlay state at the current instant.

    Pure read — the overlay is not mutated and no shared RNG is drawn,
    so freezing is insensitive to how many crawls ran before.
    """
    index_of: Dict[PeerID, int] = {}
    peers: List[PeerID] = []

    def intern(peer: PeerID) -> int:
        index = index_of.get(peer)
        if index is None:
            index = len(peers)
            index_of[peer] = index
            peers.append(peer)
        return index

    servers: Dict[int, Tuple[bool, float]] = {}
    tables: Dict[int, Tuple[int, ...]] = {}
    stable_pool: List[int] = []
    server_pool: List[int] = []
    for node in overlay.online_servers():
        index = intern(node.peer)
        server_pool.append(index)
        if node.spec.platform is not None:
            stable_pool.append(index)
        servers[index] = (node.reachable, node.response_latency)
        table = node.routing_table
        tables[index] = (
            tuple(intern(peer) for peer in table.peers()) if table is not None else ()
        )

    # ``peers`` keeps growing while tables intern stale entries, so the
    # address pass runs over the final interning.
    ips: List[Tuple[str, ...]] = []
    for peer in peers:
        info = overlay.last_info(peer)
        if info is None:
            ips.append(())
        else:
            ips.append(
                tuple(sorted({addr.ip for addr in info.addrs if not addr.is_circuit}))
            )

    return CrawlTask(
        crawl_id=crawl_id,
        seed=seed,
        started_at=overlay.now,
        timeout=timeout,
        bootstrap_size=bootstrap_size,
        k=overlay.k,
        oracle_size=len(overlay.oracle),
        peer_digests=tuple(peer.digest for peer in peers),
        dht_keys=tuple(peer.dht_key for peer in peers),
        ips=tuple(ips),
        servers=servers,
        tables=tables,
        stable_pool=tuple(stable_pool),
        server_pool=tuple(server_pool),
    )


def execute_crawl_task(task: CrawlTask) -> CrawlSnapshot:
    """Run one crawl as a pure function of its frozen task.

    BFS and bucket sweeps operate entirely on integer peer indices;
    :class:`PeerID` objects are only materialised for the final snapshot.
    """
    rng = random.Random(task.seed)
    keys = task.dht_keys
    pool = (
        task.stable_pool
        if len(task.stable_pool) >= task.bootstrap_size
        else task.server_pool
    )
    bootstrap = rng.sample(pool, min(task.bootstrap_size, len(pool))) if pool else []

    queue = deque(bootstrap)
    seen: Set[int] = set(bootstrap)
    #: index -> crawlable, in BFS discovery order.
    observations: Dict[int, bool] = {}
    edges: Dict[int, Tuple[int, ...]] = {}
    requests_sent = 0
    responsive_work = 0.0
    timeouts = 0
    had_unresponsive = False
    depth = int(math.log2(max(task.oracle_size, 2))) + 6

    tracer = trace.get_tracer()
    with tracer.span("crawl", crawl=task.crawl_id) as crawl_span:
        while queue:
            index = queue.popleft()
            requests_sent += 1
            server = task.servers.get(index)
            if server is None or not server[0] or server[1] > task.timeout:
                had_unresponsive = True
                timeouts += 1
                observations[index] = False
                if tracer.enabled:
                    tracer.event("crawl.peer", index=index, crawlable=False)
                continue
            responsive_work += server[1]
            own_key = keys[index]
            table = task.tables.get(index, ())
            neighbors: Set[int] = set()
            previous_size = -1
            for bucket_idx in range(min(depth, KEY_BITS)):
                crafted = random_key_in_bucket(own_key, bucket_idx, rng)
                for neighbor in sorted(table, key=lambda t: keys[t] ^ crafted)[: task.k]:
                    neighbors.add(neighbor)
                if len(neighbors) == previous_size and bucket_idx > depth - 4:
                    break
                previous_size = len(neighbors)
            neighbors.discard(index)
            requests_sent += max(1, len(neighbors) // task.k)
            observations[index] = True
            edges[index] = tuple(neighbors)
            if tracer.enabled:
                tracer.event(
                    "crawl.peer", index=index, crawlable=True, neighbors=len(neighbors)
                )
            for neighbor in edges[index]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        if tracer.enabled:
            crawl_span.note(
                discovered=len(observations),
                crawlable=len(edges),
                requests=requests_sent,
                timeouts=timeouts,
            )

    snapshot = CrawlSnapshot(crawl_id=task.crawl_id, started_at=task.started_at)
    peer_cache: Dict[int, PeerID] = {}

    def peer_at(index: int) -> PeerID:
        peer = peer_cache.get(index)
        if peer is None:
            peer = PeerID(task.peer_digests[index])
            peer_cache[index] = peer
        return peer

    for index, crawlable in observations.items():
        peer = peer_at(index)
        snapshot.observations[peer] = CrawlObservation(peer, task.ips[index], crawlable)
    for index, neighbor_indices in edges.items():
        snapshot.edges[peer_at(index)] = tuple(
            peer_at(neighbor) for neighbor in neighbor_indices
        )
    snapshot.requests_sent = requests_sent
    # Duration model: responsive work spreads over the worker pool; the
    # final worker batch waits out one full timeout on unresponsive
    # peers (matching the paper's "latter half spent waiting").
    snapshot.duration = responsive_work / CRAWL_PARALLELISM + (
        task.timeout if had_unresponsive else 0.0
    )
    crawlable = len(edges)
    obs.inc("crawl.crawls")
    obs.inc("crawl.requests", requests_sent)
    obs.inc("crawl.timeouts", timeouts)
    obs.inc("crawl.discovered", len(observations))
    obs.inc("crawl.crawlable", crawlable)
    obs.observe("crawl.contacted_peers", crawlable + timeouts)
    return snapshot


def execute_crawl_task_observed(task: CrawlTask):
    """Run one crawl, collecting its metrics into a private registry.

    Returns ``(snapshot, metrics_snapshot)``.  A fresh registry is
    installed for the duration of the crawl, so metrics collected on a
    worker process never mix with whatever registry the worker inherited
    at fork; the parent merges the per-task snapshots in ``crawl_id``
    order, which makes the totals independent of worker count and
    completion order (the same contract as the sharded-log heap-merge).
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        snapshot = execute_crawl_task(task)
    return snapshot, registry.snapshot()


def execute_crawl_task_traced(
    task: CrawlTask, sample: int = 1, capacity: int = DEFAULT_CAPACITY
):
    """Run one crawl with both metrics and tracing collected privately.

    Returns ``(snapshot, metrics_snapshot, trace_records)``.  The tracer
    is per-task — origin ``crawl-<id>``, seed derived from the task's own
    seed, sim clock frozen at the task's freeze instant — so its event
    stream is a pure function of the task, independent of which worker
    runs it; the parent concatenates the per-task record lists in
    ``crawl_id`` order, exactly like the metric snapshots.
    """
    registry = MetricsRegistry()
    tracer = Tracer(
        origin=f"crawl-{task.crawl_id}",
        seed=derive_seed(task.seed, "trace"),
        sample=sample,
        capacity=capacity,
        clock=lambda: task.started_at,
    )
    with use_registry(registry), use_tracer(tracer):
        snapshot = execute_crawl_task(task)
    return snapshot, registry.snapshot(), tracer.records()


def crawl_stream_state(
    snapshot: CrawlSnapshot, quantile_k: int = 256
) -> Dict[str, object]:
    """One crawl's contribution to the streaming sketches, as plain state.

    The out-degree sketch (Fig. 7's CCDF quantity) is built in BFS
    discovery order — the iteration order of ``snapshot.edges`` — so the
    state is a pure function of the snapshot; the campaign merges the
    per-crawl states in crawl order
    (:meth:`repro.obs.stream.StreamAnalytics.merge_crawl_state`), making
    the merged sketch bit-identical at any worker count.
    """
    degree = QuantileSketch(quantile_k)
    for neighbors in snapshot.edges.values():
        degree.update(float(len(neighbors)))
    return {
        "degree": degree.to_state(),
        "crawls": 1,
        "discovered": snapshot.num_discovered,
        "crawlable": len(snapshot.edges),
    }


def execute_crawl_task_streamed(
    task: CrawlTask,
    with_metrics: bool = False,
    with_trace: bool = False,
    sample: int = 1,
    capacity: int = DEFAULT_CAPACITY,
):
    """Run one crawl and additionally return its streaming sketch state.

    Returns ``(snapshot, metrics_snapshot | None, trace_records | None,
    stream_state)``.  The sketch state is derived from the finished
    snapshot *after* the crawl — no extra randomness, no change to the
    crawl itself — so streaming-on campaigns keep bit-identical crawl
    datasets.
    """
    metrics_snapshot = None
    trace_records = None
    if with_trace:
        snapshot, metrics_snapshot, trace_records = execute_crawl_task_traced(
            task, sample, capacity
        )
    elif with_metrics:
        snapshot, metrics_snapshot = execute_crawl_task_observed(task)
    else:
        snapshot = execute_crawl_task(task)
    return snapshot, metrics_snapshot, trace_records, crawl_stream_state(snapshot)


class DHTCrawler:
    """Crawls the simulated overlay exactly like the trudi-group crawler.

    Every crawl draws from its own RNG stream derived as
    ``derive_seed(root_seed, crawl_id)``, so crawl ``i`` is independent
    of how many crawls ran before it — the property that lets a campaign
    fan crawls out over worker processes without changing the science.
    """

    def __init__(
        self,
        overlay: Overlay,
        timeout: float = DEFAULT_TIMEOUT,
        bootstrap_size: int = 8,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.overlay = overlay
        self.timeout = timeout
        self.bootstrap_size = bootstrap_size
        if seed is None:
            # Back-compat: callers that passed an rng get a root seed
            # drawn from it once; the default ties to the world seed.
            seed = (
                rng.getrandbits(64)
                if rng is not None
                else overlay.world.profile.seed + 9
            )
        self.seed = seed

    def task(self, crawl_id: int) -> CrawlTask:
        """Freeze the crawl task for ``crawl_id`` at the current instant."""
        return freeze_crawl_task(
            self.overlay,
            crawl_id,
            seed=derive_seed(self.seed, "crawl", crawl_id),
            timeout=self.timeout,
            bootstrap_size=self.bootstrap_size,
        )

    def crawl(self, crawl_id: int) -> CrawlSnapshot:
        """One snapshot: BFS from the bootstrap peers."""
        return execute_crawl_task(self.task(crawl_id))

    def campaign(
        self, num_crawls: int, interval_seconds: float, run_between=None
    ) -> CrawlDataset:
        """Run ``num_crawls`` crawls spaced ``interval_seconds`` apart.

        ``run_between(crawl_index)`` lets the caller advance the simulated
        world between snapshots (churn, traffic, ...).
        """
        dataset = CrawlDataset()
        for index in range(num_crawls):
            dataset.add(self.crawl(index))
            if index < num_crawls - 1:
                if run_between is not None:
                    run_between(index)
                else:
                    self.overlay.scheduler.run_until(self.overlay.now + interval_seconds)
        return dataset
