"""The DHT crawler (paper §3).

It is possible to enumerate all DHT connections of a node through crafted
FIND_NODE messages, sweeping the address space towards the target node's
own address.  The crawler BFS-walks the network from bootstrap peers; for
every connectable peer it sweeps each k-bucket with a crafted key and
unions the responses, yielding the peer's complete outbound DHT view.
Unconnectable peers remain in the snapshot as discovered-but-uncrawlable
leaves.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ids.keys import KEY_BITS, random_key_in_bucket
from repro.ids.peerid import PeerID
from repro.netsim.network import Overlay

#: The paper's crawl connection timeout (3 minutes).
DEFAULT_TIMEOUT = 180.0

#: Concurrent connection workers modelled for the duration estimate.
CRAWL_PARALLELISM = 1000


@dataclass
class CrawlObservation:
    """One peer as seen in one crawl."""

    peer: PeerID
    ips: Tuple[str, ...]
    crawlable: bool


@dataclass
class CrawlSnapshot:
    """One full sweep of the DHT."""

    crawl_id: int
    started_at: float
    duration: float = 0.0
    observations: Dict[PeerID, CrawlObservation] = field(default_factory=dict)
    #: outgoing DHT edges of every *crawled* peer.
    edges: Dict[PeerID, Tuple[PeerID, ...]] = field(default_factory=dict)
    requests_sent: int = 0

    @property
    def num_discovered(self) -> int:
        return len(self.observations)

    @property
    def num_crawlable(self) -> int:
        return sum(1 for obs in self.observations.values() if obs.crawlable)

    def peer_ip_rows(self) -> Iterator[Tuple[int, PeerID, str]]:
        """(crawl_id, peer, ip) rows — the Table 1 dataset shape."""
        for obs in self.observations.values():
            for ip in obs.ips:
                yield self.crawl_id, obs.peer, ip


@dataclass
class CrawlDataset:
    """All snapshots of a crawling campaign."""

    snapshots: List[CrawlSnapshot] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.snapshots)

    def add(self, snapshot: CrawlSnapshot) -> None:
        self.snapshots.append(snapshot)

    def rows(self) -> Iterator[Tuple[int, PeerID, str]]:
        for snapshot in self.snapshots:
            yield from snapshot.peer_ip_rows()

    # -- §3 summary statistics ------------------------------------------------

    def avg_discovered(self) -> float:
        if not self.snapshots:
            return 0.0
        return sum(s.num_discovered for s in self.snapshots) / len(self.snapshots)

    def avg_crawlable(self) -> float:
        if not self.snapshots:
            return 0.0
        return sum(s.num_crawlable for s in self.snapshots) / len(self.snapshots)

    def unique_peer_ids(self) -> int:
        peers: Set[PeerID] = set()
        for snapshot in self.snapshots:
            peers.update(snapshot.observations)
        return len(peers)

    def unique_ips(self) -> int:
        ips: Set[str] = set()
        for snapshot in self.snapshots:
            for obs in snapshot.observations.values():
                ips.update(obs.ips)
        return len(ips)

    def avg_ips_per_peer(self) -> float:
        """Average number of distinct non-local IPs a peer announced
        across all crawls (the paper reports 1.82)."""
        per_peer: Dict[PeerID, Set[str]] = {}
        for snapshot in self.snapshots:
            for obs in snapshot.observations.values():
                per_peer.setdefault(obs.peer, set()).update(obs.ips)
        if not per_peer:
            return 0.0
        return sum(len(ips) for ips in per_peer.values()) / len(per_peer)


class DHTCrawler:
    """Crawls the simulated overlay exactly like the trudi-group crawler."""

    def __init__(
        self,
        overlay: Overlay,
        timeout: float = DEFAULT_TIMEOUT,
        bootstrap_size: int = 8,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.overlay = overlay
        self.timeout = timeout
        self.bootstrap_size = bootstrap_size
        self.rng = rng or random.Random(overlay.world.profile.seed + 9)

    def _bootstrap_peers(self) -> List[PeerID]:
        servers = self.overlay.online_servers()
        if not servers:
            return []
        # Bootstrap via stable, well-known nodes when available.
        stable = [node for node in servers if node.spec.platform is not None]
        pool = stable if len(stable) >= self.bootstrap_size else servers
        sample = self.rng.sample(pool, min(self.bootstrap_size, len(pool)))
        return [node.peer for node in sample]

    def _sweep_buckets(self, peer: PeerID, node) -> Set[PeerID]:
        """Enumerate the target's table with crafted per-bucket keys."""
        own_key = peer.dht_key
        depth = int(math.log2(max(len(self.overlay.oracle), 2))) + 6
        neighbors: Set[PeerID] = set()
        previous_size = -1
        for bucket_idx in range(min(depth, KEY_BITS)):
            crafted = random_key_in_bucket(own_key, bucket_idx, self.rng)
            for info in node.handle_find_node(crafted, self.overlay.k):
                neighbors.add(info.peer)
            if len(neighbors) == previous_size and bucket_idx > depth - 4:
                break
            previous_size = len(neighbors)
        neighbors.discard(peer)
        return neighbors

    def crawl(self, crawl_id: int) -> CrawlSnapshot:
        """One snapshot: BFS from the bootstrap peers."""
        snapshot = CrawlSnapshot(crawl_id=crawl_id, started_at=self.overlay.now)
        queue = deque(self._bootstrap_peers())
        seen: Set[PeerID] = set(queue)
        responsive_work = 0.0
        had_unresponsive = False
        while queue:
            peer = queue.popleft()
            infos = self.overlay.peer_infos([peer])
            ips = tuple(sorted({addr.ip for addr in infos[0].addrs if not addr.is_circuit}))
            node = self.overlay.dial(peer, self.timeout)
            snapshot.requests_sent += 1
            if node is None:
                had_unresponsive = True
                snapshot.observations[peer] = CrawlObservation(peer, ips, crawlable=False)
                continue
            responsive_work += node.response_latency
            neighbors = self._sweep_buckets(peer, node)
            snapshot.requests_sent += max(1, len(neighbors) // self.overlay.k)
            snapshot.observations[peer] = CrawlObservation(peer, ips, crawlable=True)
            snapshot.edges[peer] = tuple(neighbors)
            for neighbor in neighbors:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        # Duration model: responsive work spreads over the worker pool; the
        # final worker batch waits out one full timeout on unresponsive
        # peers (matching the paper's "latter half spent waiting").
        snapshot.duration = responsive_work / CRAWL_PARALLELISM + (
            self.timeout if had_unresponsive else 0.0
        )
        return snapshot

    def campaign(
        self, num_crawls: int, interval_seconds: float, run_between=None
    ) -> CrawlDataset:
        """Run ``num_crawls`` crawls spaced ``interval_seconds`` apart.

        ``run_between(crawl_index)`` lets the caller advance the simulated
        world between snapshots (churn, traffic, ...).
        """
        dataset = CrawlDataset()
        for index in range(num_crawls):
            dataset.add(self.crawl(index))
            if index < num_crawls - 1:
                if run_between is not None:
                    run_between(index)
                else:
                    self.overlay.scheduler.run_until(self.overlay.now + interval_seconds)
        return dataset
