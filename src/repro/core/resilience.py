"""Node-removal resilience experiments (paper §4, Fig. 8).

Two removal strategies over the undirected snapshot graph: *random*
(uniform node) and *targeted* (highest current degree).  After each
removal the share of remaining nodes inside the largest connected
component is recorded.  Random removal barely dents the network (scale-
free robustness); targeted removal fully partitions it after ≈60 % of
nodes are gone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import networkx as nx


@dataclass
class RemovalTrace:
    """LCC share after each removal step.

    :ivar removed_fraction: x-axis, fraction of original nodes removed.
    :ivar lcc_share: fraction of *remaining* nodes in the largest
        component (the paper's y-axis).
    """

    removed_fraction: List[float] = field(default_factory=list)
    lcc_share: List[float] = field(default_factory=list)

    def share_at(self, fraction: float) -> float:
        """LCC share at the removal fraction closest below ``fraction``."""
        best = 1.0
        for x, y in zip(self.removed_fraction, self.lcc_share):
            if x <= fraction:
                best = y
            else:
                break
        return best

    def partition_point(self, threshold: float = 0.05) -> float:
        """First removal fraction at which the LCC share drops below
        ``threshold`` (≈ complete partitioning); 1.0 if never."""
        for x, y in zip(self.removed_fraction, self.lcc_share):
            if y < threshold:
                return x
        return 1.0


def _lcc_share(graph: nx.Graph) -> float:
    remaining = graph.number_of_nodes()
    if remaining == 0:
        return 0.0
    largest = max((len(c) for c in nx.connected_components(graph)), default=0)
    return largest / remaining


def _run_removal(
    graph: nx.Graph, order_fn, record_every: int
) -> RemovalTrace:
    total = graph.number_of_nodes()
    trace = RemovalTrace()
    removed = 0
    trace.removed_fraction.append(0.0)
    trace.lcc_share.append(_lcc_share(graph))
    while graph.number_of_nodes() > 1:
        victim = order_fn(graph)
        if victim is None:
            break
        graph.remove_node(victim)
        removed += 1
        if removed % record_every == 0 or graph.number_of_nodes() <= 1:
            trace.removed_fraction.append(removed / total)
            trace.lcc_share.append(_lcc_share(graph))
    return trace


def random_removal(
    graph: nx.Graph, rng: Optional[random.Random] = None, record_every: Optional[int] = None
) -> RemovalTrace:
    """Remove uniformly random nodes until the graph is exhausted."""
    rng = rng or random.Random(0)
    work = graph.copy()
    step = record_every or max(1, work.number_of_nodes() // 100)

    def pick(current: nx.Graph):
        nodes = list(current.nodes)
        return rng.choice(nodes) if nodes else None

    return _run_removal(work, pick, step)


def targeted_removal(graph: nx.Graph, record_every: Optional[int] = None) -> RemovalTrace:
    """Repeatedly remove the node with the highest current degree."""
    work = graph.copy()
    step = record_every or max(1, work.number_of_nodes() // 100)

    def pick(current: nx.Graph):
        if current.number_of_nodes() == 0:
            return None
        return max(current.degree, key=lambda item: item[1])[0]

    return _run_removal(work, pick, step)


def random_removal_with_ci(
    graph: nx.Graph,
    repetitions: int = 10,
    rng: Optional[random.Random] = None,
    record_every: Optional[int] = None,
) -> Tuple[List[float], List[float], List[float]]:
    """The paper's protocol: repeat random removal 10 times and report a
    95 % confidence interval around the mean LCC share.

    Returns ``(fractions, mean_share, halfwidth_95)`` aligned per step.
    """
    rng = rng or random.Random(0)
    traces = [
        random_removal(graph, random.Random(rng.randrange(2**32)), record_every)
        for _ in range(repetitions)
    ]
    length = min(len(trace.lcc_share) for trace in traces)
    fractions = traces[0].removed_fraction[:length]
    means: List[float] = []
    halfwidths: List[float] = []
    for index in range(length):
        values = [trace.lcc_share[index] for trace in traces]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
        std_error = (variance / len(values)) ** 0.5
        means.append(mean)
        halfwidths.append(1.96 * std_error)
    return fractions, means, halfwidths
