"""Content-provider analyses (paper §6, Figs. 14-16).

Operates on the exhaustive provider-record observations: provider
classification (NAT-ed / cloud / non-cloud / hybrid), relay usage of
NAT-ed providers, provider popularity concentration, and per-CID cloud
reliance.  Following the paper, unreachable providers are ignored.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.pareto import pareto_curve, top_share
from repro.ids.peerid import PeerID
from repro.kademlia.providers import ProviderRecord
from repro.monitors.provider_fetcher import ProviderObservation
from repro.world.clouddb import CloudIPDatabase


class ProviderClass(enum.Enum):
    """Fig. 14 peer categories."""

    NAT_ED = "nat-ed"
    CLOUD = "cloud"
    NON_CLOUD = "non-cloud"
    HYBRID = "hybrid"


def classify_addrs(records: Iterable[ProviderRecord], cloud_db: CloudIPDatabase) -> ProviderClass:
    """Classify one provider from all its observed records.

    A provider advertising only circuit addresses is NAT-ed; public-IP
    providers are cloud / non-cloud / hybrid by their address mix.
    """
    saw_direct_cloud = False
    saw_direct_noncloud = False
    saw_circuit = False
    for record in records:
        for addr in record.addrs:
            if addr.is_circuit:
                saw_circuit = True
            elif cloud_db.is_cloud(addr.ip):
                saw_direct_cloud = True
            else:
                saw_direct_noncloud = True
    if not (saw_direct_cloud or saw_direct_noncloud):
        return ProviderClass.NAT_ED
    if saw_direct_cloud and saw_direct_noncloud:
        return ProviderClass.HYBRID
    return ProviderClass.CLOUD if saw_direct_cloud else ProviderClass.NON_CLOUD


def _records_by_provider(
    observations: Sequence[ProviderObservation], reachable_only: bool = True
) -> Dict[PeerID, List[ProviderRecord]]:
    by_provider: Dict[PeerID, List[ProviderRecord]] = defaultdict(list)
    for observation in observations:
        records = observation.reachable if reachable_only else observation.records
        for record in records:
            by_provider[record.provider].append(record)
    return by_provider


# ---------------------------------------------------------------------------
# Fig. 14: provider classification + relay distribution
# ---------------------------------------------------------------------------


@dataclass
class ProviderClassification:
    class_shares: Dict[str, float]
    #: share of NAT-ed providers whose relay sits in the cloud (bottom
    #: panel of Fig. 14).
    relay_cloud_share: float
    relay_provider_shares: Dict[str, float] = field(default_factory=dict)
    total_providers: int = 0


def classify_providers(
    observations: Sequence[ProviderObservation],
    cloud_db: CloudIPDatabase,
    reachable_only: bool = True,
) -> ProviderClassification:
    by_provider = _records_by_provider(observations, reachable_only)
    classes: Dict[PeerID, ProviderClass] = {
        provider: classify_addrs(records, cloud_db)
        for provider, records in by_provider.items()
    }
    total = len(classes)
    tallies = Counter(cls.value for cls in classes.values())
    # Relays of NAT-ed providers: the transport IP of a circuit address is
    # the relay's address.
    relay_total = 0
    relay_cloud = 0
    relay_providers: Counter = Counter()
    for provider, records in by_provider.items():
        if classes[provider] is not ProviderClass.NAT_ED:
            continue
        relay_ips = {
            addr.ip for record in records for addr in record.addrs if addr.is_circuit
        }
        for ip in relay_ips:
            relay_total += 1
            slug = cloud_db.lookup(ip)
            relay_providers[slug or "non-cloud"] += 1
            if slug is not None:
                relay_cloud += 1
    return ProviderClassification(
        class_shares={label: count / total for label, count in tallies.items()} if total else {},
        relay_cloud_share=relay_cloud / relay_total if relay_total else 0.0,
        relay_provider_shares={
            label: count / relay_total for label, count in relay_providers.items()
        }
        if relay_total
        else {},
        total_providers=total,
    )


# ---------------------------------------------------------------------------
# Fig. 15: provider popularity
# ---------------------------------------------------------------------------


@dataclass
class ProviderPopularity:
    curve: List[Tuple[float, float]]
    top1pct_record_share: float
    #: share of all (cid, provider) record appearances by provider class.
    record_shares_by_class: Dict[str, float] = field(default_factory=dict)


def provider_popularity(
    observations: Sequence[ProviderObservation],
    cloud_db: CloudIPDatabase,
    reachable_only: bool = True,
) -> ProviderPopularity:
    """How often each provider appears across the collected records."""
    by_provider = _records_by_provider(observations, reachable_only)
    appearances: Dict[PeerID, float] = {
        provider: float(len(records)) for provider, records in by_provider.items()
    }
    total_appearances = sum(appearances.values())
    shares_by_class: Counter = Counter()
    for provider, records in by_provider.items():
        cls = classify_addrs(records, cloud_db)
        shares_by_class[cls.value] += len(records)
    return ProviderPopularity(
        curve=pareto_curve(appearances),
        top1pct_record_share=top_share(appearances, 0.01),
        record_shares_by_class={
            label: count / total_appearances for label, count in shares_by_class.items()
        }
        if total_appearances
        else {},
    )


# ---------------------------------------------------------------------------
# Fig. 16: per-CID cloud reliance
# ---------------------------------------------------------------------------


@dataclass
class CidCloudReliance:
    """Fig. 16 aggregates; NAT-ed providers count as non-cloud."""

    at_least_one_cloud: float
    majority_cloud: float
    cloud_only: float
    at_least_one_noncloud: float
    #: CDF points: (cloud-provider share threshold, fraction of CIDs with
    #: cloud share >= threshold).
    cloud_share_distribution: List[Tuple[float, float]] = field(default_factory=list)
    total_cids: int = 0


def cid_cloud_reliance(
    observations: Sequence[ProviderObservation],
    cloud_db: CloudIPDatabase,
    reachable_only: bool = True,
) -> CidCloudReliance:
    per_cid_cloud_share: List[float] = []
    for observation in observations:
        records = observation.reachable if reachable_only else observation.records
        if not records:
            continue
        cloud = 0
        for record in records:
            cls = classify_addrs([record], cloud_db)
            if cls is ProviderClass.CLOUD or cls is ProviderClass.HYBRID:
                cloud += 1
        per_cid_cloud_share.append(cloud / len(records))
    total = len(per_cid_cloud_share)
    if total == 0:
        return CidCloudReliance(0.0, 0.0, 0.0, 0.0, [], 0)
    at_least_one = sum(1 for share in per_cid_cloud_share if share > 0) / total
    majority = sum(1 for share in per_cid_cloud_share if share >= 0.5) / total
    cloud_only = sum(1 for share in per_cid_cloud_share if share == 1.0) / total
    distribution = [
        (threshold / 10.0, sum(1 for s in per_cid_cloud_share if s >= threshold / 10.0) / total)
        for threshold in range(0, 11)
    ]
    return CidCloudReliance(
        at_least_one_cloud=at_least_one,
        majority_cloud=majority,
        cloud_only=cloud_only,
        at_least_one_noncloud=1.0 - cloud_only,
        cloud_share_distribution=distribution,
        total_cids=total,
    )
