"""Overlay topology reconstruction and degree analysis (paper §4, Fig. 7).

From a crawl snapshot we learn the complete k-buckets (all outgoing DHT
connections) of every crawled node; in-degree is estimated by a node's
presence in other peers' buckets, which undercounts because not every
node is crawlable.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.crawler import CrawlSnapshot
from repro.ids.peerid import PeerID


def build_digraph(snapshot: CrawlSnapshot) -> nx.DiGraph:
    """The directed DHT graph of one snapshot.

    Nodes: every discovered peer.  Edges: the outgoing bucket entries of
    every crawled peer.  Uncrawlable peers appear as leaves with only
    estimated in-edges — exactly the paper's graph.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(snapshot.observations)
    for peer, neighbors in snapshot.edges.items():
        for neighbor in neighbors:
            graph.add_edge(peer, neighbor)
    return graph


def build_undirected(snapshot: CrawlSnapshot) -> nx.Graph:
    """The undirected interpretation used by the resilience experiment
    (all observable connections usable for communication, §4)."""
    return build_digraph(snapshot).to_undirected()


def out_degrees(snapshot: CrawlSnapshot) -> Dict[PeerID, int]:
    """Out-degree of every *crawled* node (complete buckets)."""
    return {peer: len(neighbors) for peer, neighbors in snapshot.edges.items()}


def estimated_in_degrees(snapshot: CrawlSnapshot) -> Dict[PeerID, int]:
    """In-degree estimated from presence in crawled peers' buckets."""
    counts: Counter = Counter()
    for neighbors in snapshot.edges.values():
        counts.update(neighbors)
    return {peer: counts.get(peer, 0) for peer in snapshot.observations}


def degree_cdf(degrees: Sequence[int]) -> List[Tuple[int, float]]:
    """``(degree, P[X <= degree])`` points of the empirical CDF."""
    if not degrees:
        return []
    ordered = sorted(degrees)
    total = len(ordered)
    cdf: List[Tuple[int, float]] = []
    for index, value in enumerate(ordered, start=1):
        if index == total or ordered[index] != value:
            cdf.append((value, index / total))
    return cdf


def percentile(degrees: Sequence[int], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of a degree sample."""
    if not degrees:
        raise ValueError("empty degree sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(degrees)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return float(ordered[index])


def degree_summary(snapshot: CrawlSnapshot) -> Dict[str, float]:
    """The Fig. 7 headline numbers for one snapshot."""
    outs = list(out_degrees(snapshot).values())
    ins = list(estimated_in_degrees(snapshot).values())
    return {
        "out_mean": sum(outs) / len(outs) if outs else 0.0,
        "out_p10": percentile(outs, 0.10) if outs else 0.0,
        "out_p90": percentile(outs, 0.90) if outs else 0.0,
        "in_median": percentile(ins, 0.50) if ins else 0.0,
        "in_p90": percentile(ins, 0.90) if ins else 0.0,
        "in_max": float(max(ins)) if ins else 0.0,
    }
