"""Entry-point analyses (paper §7, Figs. 17-20).

* DNSLink: cloud-provider distribution of the A-record IPs behind
  DNSLink domains, and their overlap with public-gateway IPs (Fig. 17),
* Gateways: cloud and geo distributions of HTTP-frontend IPs (from
  passive DNS) versus overlay-node IPs (from the probing campaign)
  (Figs. 18-19),
* ENS: cloud and geo distributions of the unique provider IPs behind
  ENS-referenced CIDs (Fig. 20).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.providers_analysis import ProviderClass, classify_addrs
from repro.monitors.gateway_probe import GatewayProbeReport
from repro.monitors.provider_fetcher import ProviderObservation
from repro.world.clouddb import CloudIPDatabase
from repro.world.geodb import GeoIPDatabase

NON_CLOUD = "non-cloud"


def _provider_distribution(ips: Iterable[str], cloud_db: CloudIPDatabase) -> Dict[str, float]:
    tallies: Counter = Counter(cloud_db.lookup(ip) or NON_CLOUD for ip in set(ips))
    total = sum(tallies.values())
    return {label: count / total for label, count in tallies.items()} if total else {}


def _country_distribution(ips: Iterable[str], geo_db: GeoIPDatabase) -> Dict[str, float]:
    tallies: Counter = Counter(geo_db.lookup(ip) or "??" for ip in set(ips))
    total = sum(tallies.values())
    return {label: count / total for label, count in tallies.items()} if total else {}


# ---------------------------------------------------------------------------
# Fig. 17: DNSLink
# ---------------------------------------------------------------------------


@dataclass
class DNSLinkReport:
    num_records: int
    num_unique_ips: int
    provider_shares: Dict[str, float]
    noncloud_share: float
    #: share of DNSLink IPs that are also public-gateway frontend IPs.
    public_gateway_ip_share: float


def dnslink_report(
    scan_result,
    cloud_db: CloudIPDatabase,
    public_gateway_ips: Set[str],
) -> DNSLinkReport:
    """Fig. 17 from an :class:`~repro.dns.scanner.DNSLinkScanResult`."""
    ips = set(scan_result.all_ips)
    providers = _provider_distribution(ips, cloud_db)
    overlap = len(ips & public_gateway_ips) / len(ips) if ips else 0.0
    return DNSLinkReport(
        num_records=len(scan_result.dnslink_records),
        num_unique_ips=len(ips),
        provider_shares=providers,
        noncloud_share=providers.get(NON_CLOUD, 0.0),
        public_gateway_ip_share=overlap,
    )


# ---------------------------------------------------------------------------
# Figs. 18-19: gateway frontends vs overlay nodes
# ---------------------------------------------------------------------------


@dataclass
class GatewaySidesReport:
    frontend_provider_shares: Dict[str, float]
    overlay_provider_shares: Dict[str, float]
    frontend_country_shares: Dict[str, float]
    overlay_country_shares: Dict[str, float]
    num_frontend_ips: int
    num_overlay_ips: int
    num_functional_endpoints: int
    num_overlay_ids: int


def gateway_sides_report(
    probe_reports: Dict[str, GatewayProbeReport],
    frontend_ips: Set[str],
    cloud_db: CloudIPDatabase,
    geo_db: GeoIPDatabase,
) -> GatewaySidesReport:
    """Figs. 18-19 plus the §3 gateway counts."""
    overlay_ips: Set[str] = set()
    overlay_ids = set()
    functional = 0
    for report in probe_reports.values():
        if report.functional:
            functional += 1
        overlay_ips.update(report.overlay_ips)
        overlay_ids.update(report.overlay_ids)
    return GatewaySidesReport(
        frontend_provider_shares=_provider_distribution(frontend_ips, cloud_db),
        overlay_provider_shares=_provider_distribution(overlay_ips, cloud_db),
        frontend_country_shares=_country_distribution(frontend_ips, geo_db),
        overlay_country_shares=_country_distribution(overlay_ips, geo_db),
        num_frontend_ips=len(frontend_ips),
        num_overlay_ips=len(overlay_ips),
        num_functional_endpoints=functional,
        num_overlay_ids=len(overlay_ids),
    )


# ---------------------------------------------------------------------------
# Fig. 20: ENS-referenced content
# ---------------------------------------------------------------------------


@dataclass
class ENSProvidersReport:
    num_cids: int
    num_provider_records: int
    num_unique_ips: int
    provider_shares: Dict[str, float]
    country_shares: Dict[str, float]
    cloud_share: float
    us_de_share: float


def ens_providers_report(
    observations: Sequence[ProviderObservation],
    cloud_db: CloudIPDatabase,
    geo_db: GeoIPDatabase,
    reachable_only: bool = True,
) -> ENSProvidersReport:
    """Fig. 20: attribute the unique provider IPs behind ENS CIDs.

    Circuit (relayed) addresses attribute to the relay's IP, matching
    what an address-level observer sees.
    """
    ips: Set[str] = set()
    record_count = 0
    for observation in observations:
        records = observation.reachable if reachable_only else observation.records
        record_count += len(records)
        for record in records:
            for addr in record.addrs:
                ips.add(addr.ip)
    providers = _provider_distribution(ips, cloud_db)
    countries = _country_distribution(ips, geo_db)
    return ENSProvidersReport(
        num_cids=len(observations),
        num_provider_records=record_count,
        num_unique_ips=len(ips),
        provider_shares=providers,
        country_shares=countries,
        cloud_share=1.0 - providers.get(NON_CLOUD, 0.0),
        us_de_share=countries.get("US", 0.0) + countries.get("DE", 0.0),
    )
