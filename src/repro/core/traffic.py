"""Traffic analyses (paper §5, Figs. 9-13).

Operates on the Hydra-booster DHT log and the Bitswap monitor log:
traffic classification, identifier lifetimes, centralization Pareto
charts, cloud shares by count and by volume, and platform attribution
through reverse DNS.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.pareto import pareto_curve, top_share
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, TrafficClass
from repro.monitors.bitswap_monitor import BitswapLogEntry
from repro.netsim.clock import SECONDS_PER_DAY
from repro.world.clouddb import CloudIPDatabase
from repro.world.rdns import ReverseDNS

# ---------------------------------------------------------------------------
# §5 headline: message-class split
# ---------------------------------------------------------------------------


def traffic_class_shares(log: Iterable[MessageEnvelope]) -> Dict[str, float]:
    """Download / advertisement / other shares of the DHT log."""
    tallies = Counter(entry.traffic_class.value for entry in log)
    total = sum(tallies.values())
    if not total:
        return {}
    return {label: count / total for label, count in tallies.items()}


@dataclass
class TrafficSummary:
    """Every per-entry aggregate of the DHT log, computed in one pass.

    The figure reports each re-scan the log; with a disk-backed
    :class:`~repro.store.eventlog.EventLog` every scan streams from
    storage, so computing the shared aggregates together matters.
    """

    total: int = 0
    class_counts: Counter = field(default_factory=Counter)
    peerid_volumes: Counter = field(default_factory=Counter)
    ip_volumes: Counter = field(default_factory=Counter)
    unique_cids: int = 0
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None

    @property
    def class_shares(self) -> Dict[str, float]:
        if not self.total:
            return {}
        return {label: count / self.total for label, count in self.class_counts.items()}


def summarize_traffic(log: Iterable[MessageEnvelope]) -> TrafficSummary:
    """Single-pass streaming summary of a (possibly disk-backed) log."""
    summary = TrafficSummary()
    cids: Set = set()
    for entry in log:
        summary.total += 1
        summary.class_counts[entry.traffic_class.value] += 1
        summary.peerid_volumes[entry.sender] += 1
        summary.ip_volumes[entry.sender_ip] += 1
        if entry.target_cid is not None:
            cids.add(entry.target_cid)
        if summary.first_timestamp is None:
            summary.first_timestamp = entry.timestamp
        summary.last_timestamp = entry.timestamp
    summary.unique_cids = len(cids)
    return summary


# ---------------------------------------------------------------------------
# Figs. 10-11: centralization Pareto charts
# ---------------------------------------------------------------------------


def peerid_volumes(log: Sequence[MessageEnvelope]) -> Dict[PeerID, float]:
    volumes: Counter = Counter(entry.sender for entry in log)
    return dict(volumes)


def ip_volumes(log: Sequence[MessageEnvelope]) -> Dict[str, float]:
    volumes: Counter = Counter(entry.sender_ip for entry in log)
    return dict(volumes)


def bitswap_peerid_volumes(log: Sequence[BitswapLogEntry]) -> Dict[PeerID, float]:
    return dict(Counter(entry.sender for entry in log))


def bitswap_ip_volumes(log: Sequence[BitswapLogEntry]) -> Dict[str, float]:
    return dict(Counter(entry.sender_ip for entry in log))


@dataclass
class ParetoReport:
    """One curve of Fig. 10/11 plus its headline aggregates."""

    curve: List[Tuple[float, float]]
    top5_share: float
    #: share of total volume from the highlighted subgroup (gateways in
    #: Fig. 10, cloud IPs in Fig. 11).
    subgroup_share: float


def peerid_pareto(
    volumes: Dict[PeerID, float], gateway_peers: Set[PeerID]
) -> ParetoReport:
    total = sum(volumes.values())
    gateway_volume = sum(v for peer, v in volumes.items() if peer in gateway_peers)
    return ParetoReport(
        curve=pareto_curve(volumes),
        top5_share=top_share(volumes, 0.05),
        subgroup_share=gateway_volume / total if total else 0.0,
    )


def ip_pareto(volumes: Dict[str, float], cloud_db: CloudIPDatabase) -> ParetoReport:
    total = sum(volumes.values())
    cloud_volume = sum(v for ip, v in volumes.items() if cloud_db.is_cloud(ip))
    return ParetoReport(
        curve=pareto_curve(volumes),
        top5_share=top_share(volumes, 0.05),
        subgroup_share=cloud_volume / total if total else 0.0,
    )


# ---------------------------------------------------------------------------
# Fig. 9: identifier lifetimes (days seen)
# ---------------------------------------------------------------------------


def _day_of(timestamp: float) -> int:
    return int(timestamp // SECONDS_PER_DAY)


def days_seen_histogram(
    log: Sequence[MessageEnvelope], identifier: str
) -> Dict[int, int]:
    """days-seen → number of identifiers (x-axis of Fig. 9).

    ``identifier`` is one of ``"cid"``, ``"ip"``, ``"peerid"``.
    """
    days_by_id: Dict[object, Set[int]] = defaultdict(set)
    for entry in log:
        if identifier == "cid":
            if entry.target_cid is None:
                continue
            key = entry.target_cid
        elif identifier == "ip":
            key = entry.sender_ip
        elif identifier == "peerid":
            key = entry.sender
        else:
            raise ValueError(f"unknown identifier kind: {identifier}")
        days_by_id[key].add(_day_of(entry.timestamp))
    histogram: Counter = Counter(len(days) for days in days_by_id.values())
    return dict(histogram)


def ip_days_seen_cloud_share(
    log: Sequence[MessageEnvelope], cloud_db: CloudIPDatabase
) -> Dict[int, float]:
    """Cloud share among IPs seen exactly N days — the Fig. 9 overlay
    showing that long-lived IPs skew cloud."""
    days_by_ip: Dict[str, Set[int]] = defaultdict(set)
    for entry in log:
        days_by_ip[entry.sender_ip].add(_day_of(entry.timestamp))
    totals: Counter = Counter()
    cloud: Counter = Counter()
    for ip, days in days_by_ip.items():
        bucket = len(days)
        totals[bucket] += 1
        if cloud_db.is_cloud(ip):
            cloud[bucket] += 1
    return {bucket: cloud[bucket] / totals[bucket] for bucket in totals}


# ---------------------------------------------------------------------------
# Fig. 12: cloud per traffic type, by IP count and by volume
# ---------------------------------------------------------------------------


@dataclass
class CloudTrafficReport:
    """The two panels of Fig. 12 for one traffic subset."""

    cloud_share_by_ip_count: float
    cloud_share_by_volume: float
    provider_shares_by_ip_count: Dict[str, float] = field(default_factory=dict)
    provider_shares_by_volume: Dict[str, float] = field(default_factory=dict)


def _report_from_ip_volumes(
    volume_by_ip: Dict[str, float], provider_by_ip: Dict[str, str]
) -> CloudTrafficReport:
    total_ips = len(volume_by_ip)
    total_volume = sum(volume_by_ip.values())
    if total_ips == 0:
        return CloudTrafficReport(0.0, 0.0)
    by_count: Counter = Counter(provider_by_ip[ip] for ip in volume_by_ip)
    by_volume: Counter = Counter()
    for ip, volume in volume_by_ip.items():
        by_volume[provider_by_ip[ip]] += volume
    return CloudTrafficReport(
        cloud_share_by_ip_count=1.0 - by_count["non-cloud"] / total_ips,
        cloud_share_by_volume=1.0 - by_volume["non-cloud"] / total_volume,
        provider_shares_by_ip_count={
            provider: count / total_ips for provider, count in by_count.items()
        },
        provider_shares_by_volume={
            provider: volume / total_volume for provider, volume in by_volume.items()
        },
    )


def cloud_traffic_report(
    log: Iterable[MessageEnvelope],
    cloud_db: CloudIPDatabase,
    traffic_class: Optional[TrafficClass] = None,
) -> CloudTrafficReport:
    """Cloud and per-provider shares of the (optionally filtered) log."""
    provider_by_ip: Dict[str, str] = {}
    volume_by_ip: Counter = Counter()
    for entry in log:
        if traffic_class is not None and entry.traffic_class is not traffic_class:
            continue
        volume_by_ip[entry.sender_ip] += 1
        if entry.sender_ip not in provider_by_ip:
            provider_by_ip[entry.sender_ip] = cloud_db.lookup(entry.sender_ip) or "non-cloud"
    return _report_from_ip_volumes(volume_by_ip, provider_by_ip)


def cloud_traffic_reports_by_class(
    log: Iterable[MessageEnvelope], cloud_db: CloudIPDatabase
) -> Dict[Optional[TrafficClass], CloudTrafficReport]:
    """The overall report plus one per traffic class, in a single pass.

    Equivalent to calling :func:`cloud_traffic_report` once per class
    (keyed ``None`` for the unfiltered report) but scanning the log —
    and resolving each IP against the cloud database — only once, which
    is what Fig. 12 wants from a disk-backed log.
    """
    provider_by_ip: Dict[str, str] = {}
    volumes: Dict[Optional[TrafficClass], Counter] = defaultdict(Counter)
    for entry in log:
        if entry.sender_ip not in provider_by_ip:
            provider_by_ip[entry.sender_ip] = cloud_db.lookup(entry.sender_ip) or "non-cloud"
        volumes[None][entry.sender_ip] += 1
        volumes[entry.traffic_class][entry.sender_ip] += 1
    return {
        key: _report_from_ip_volumes(volume_by_ip, provider_by_ip)
        for key, volume_by_ip in volumes.items()
    }


# ---------------------------------------------------------------------------
# Fig. 13: platform attribution via reverse DNS
# ---------------------------------------------------------------------------

#: rDNS suffix → platform label, in match order.
PLATFORM_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("web3.storage", "web3-storage"),
    ("nft.storage", "nft-storage"),
    ("pinata.cloud", "pinata"),
    ("filebase.com", "filebase"),
    ("ipfs-bank.io", "ipfs-bank"),
    ("amazonaws.com", "amazon-aws-other"),
)


def attribute_platform(
    ip: str,
    sender: Optional[PeerID],
    rdns: ReverseDNS,
    hydra_peers: Set[PeerID],
) -> str:
    """The paper's §5 attribution: Hydra peer IDs first, then reverse DNS."""
    if sender is not None and sender in hydra_peers:
        return "hydra"
    hostname = rdns.lookup(ip)
    if hostname is None:
        return "other"
    for suffix, label in PLATFORM_SUFFIXES:
        if hostname.endswith(suffix):
            return label
    return "other"


def platform_traffic_shares(
    log: Sequence[MessageEnvelope],
    rdns: ReverseDNS,
    hydra_peers: Set[PeerID],
    traffic_class: Optional[TrafficClass] = None,
) -> Dict[str, float]:
    """Share of (class-filtered) DHT traffic per platform."""
    entries = [e for e in log if traffic_class is None or e.traffic_class is traffic_class]
    if not entries:
        return {}
    tallies: Counter = Counter(
        attribute_platform(entry.sender_ip, entry.sender, rdns, hydra_peers)
        for entry in entries
    )
    total = sum(tallies.values())
    return {label: count / total for label, count in tallies.items()}


def bitswap_platform_shares(
    log: Sequence[BitswapLogEntry], rdns: ReverseDNS, hydra_peers: Set[PeerID]
) -> Dict[str, float]:
    """Platform shares of the Bitswap monitor traffic."""
    if not log:
        return {}
    tallies: Counter = Counter(
        attribute_platform(entry.sender_ip, entry.sender, rdns, hydra_peers)
        for entry in log
    )
    total = sum(tallies.values())
    return {label: count / total for label, count in tallies.items()}
