"""Cloud attribution of crawl datasets (paper §4, Figs. 3-5).

Attribution uses the Udger-like database: an IP with no entry is
non-cloud.  Peer-level status uses the BOTH rule for mixed announcements;
peer-level provider uses the majority provider.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core import counting
from repro.core.counting import CountingMethod, CrawlRow
from repro.world.clouddb import CloudIPDatabase

NON_CLOUD_LABEL = "non-cloud"


def cloud_status_property(cloud_db: CloudIPDatabase):
    """IP → ``cloud`` / ``non-cloud``."""

    def prop(ip: str) -> str:
        return counting.CLOUD if cloud_db.is_cloud(ip) else counting.NON_CLOUD

    return prop


def provider_property(cloud_db: CloudIPDatabase):
    """IP → provider slug, or ``non-cloud``."""

    def prop(ip: str) -> str:
        return cloud_db.lookup(ip) or NON_CLOUD_LABEL

    return prop


def cloud_status_shares(
    rows: Sequence[CrawlRow],
    cloud_db: CloudIPDatabase,
    method: CountingMethod,
    num_crawls=None,
) -> Dict[str, float]:
    """Fig. 3: shares of cloud / non-cloud / both under a methodology.

    Under G-IP the unit is an address, so BOTH cannot occur; under the
    node-level methodologies mixed announcers get the BOTH label.
    """
    return counting.shares(
        counting.counts(
            rows,
            cloud_status_property(cloud_db),
            method,
            combine=counting.cloud_status_combine,
            num_crawls=num_crawls,
        )
    )


def provider_shares(
    rows: Sequence[CrawlRow],
    cloud_db: CloudIPDatabase,
    method: CountingMethod,
    num_crawls=None,
) -> Dict[str, float]:
    """Fig. 5: share of nodes (or IPs) per cloud provider."""
    return counting.shares(
        counting.counts(
            rows,
            provider_property(cloud_db),
            method,
            num_crawls=num_crawls,
        )
    )


def top_provider_concentration(
    provider_share_map: Dict[str, float], top_n: int = 3
) -> Tuple[List[Tuple[str, float]], float]:
    """The ``top_n`` cloud providers and their combined share of all
    nodes (the paper: choopa 29.3 %, top-3 51.9 %)."""
    ranked = sorted(
        (
            (provider, share)
            for provider, share in provider_share_map.items()
            if provider != NON_CLOUD_LABEL and provider != counting.BOTH
        ),
        key=lambda item: item[1],
        reverse=True,
    )
    top = ranked[:top_n]
    return top, sum(share for _, share in top)


def cloud_ratio_series(
    rows: Sequence[CrawlRow], cloud_db: CloudIPDatabase, method: CountingMethod
) -> List[Tuple[int, float]]:
    """Fig. 4: cloud:non-cloud ratio vs number of aggregated crawls."""
    return counting.cumulative_ratio_series(
        rows,
        cloud_status_property(cloud_db),
        method,
        numerator_label=counting.CLOUD,
        denominator_label=counting.NON_CLOUD,
        combine=counting.cloud_status_combine,
    )
