"""Counting methodologies (paper §3, Table 1).

Nodes announce multiple IP addresses which may differ in the derived
property (cloud provider, country).  The paper contrasts:

* **G-IP** (*Global, Unique IP*): count unique IPs and their mappings
  over the entire dataset — the methodology of Trautwein et al.  It
  overcounts peers with multiple or rotating IPs and includes churners.
* **G-N** (*Global, Unique Nodes*): assign each *peer* a single value by
  majority vote and count peers over all crawls — still overcounts
  peer-ID regenerators and churners.
* **A-N** (*Average over Crawls, Unique Nodes*): assign each peer a value
  per crawl and average the per-crawl counts over all crawls — the
  paper's proposal, which estimates a *typical* snapshot.

For the paper's Table 1 example (two crawls, peers ``p1``/``p2``), G-IP
yields ``DE=2, US=2`` while A-N yields ``DE=0.5, US=1``.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ids.peerid import PeerID


@dataclass(frozen=True)
class CrawlRow:
    """One (crawl, peer, ip) observation — the dataset shape of Table 1."""

    crawl_id: int
    peer: PeerID
    ip: str


class CountingMethod(enum.Enum):
    G_IP = "G-IP"
    G_N = "G-N"
    A_N = "A-N"


PropertyFn = Callable[[str], str]
CombineFn = Callable[[Sequence[str]], str]


def majority_vote(labels: Sequence[str]) -> str:
    """The most frequent label; ties break lexicographically (stable)."""
    if not labels:
        raise ValueError("cannot vote over an empty label sequence")
    tallies = Counter(labels)
    top_count = max(tallies.values())
    # Deterministic tie-break: highest count, then smallest label.
    return min(label for label, count in tallies.items() if count == top_count)


def make_rows(observations: Iterable[Tuple[int, PeerID, str]]) -> List[CrawlRow]:
    return [CrawlRow(crawl_id, peer, ip) for crawl_id, peer, ip in observations]


# ---------------------------------------------------------------------------
# The three methodologies
# ---------------------------------------------------------------------------


def g_ip_counts(rows: Sequence[CrawlRow], property_of_ip: PropertyFn) -> Dict[str, float]:
    """Unique IPs over the whole dataset, attributed individually."""
    seen_ips: Dict[str, str] = {}
    for row in rows:
        if row.ip not in seen_ips:
            seen_ips[row.ip] = property_of_ip(row.ip)
    counts: Counter = Counter(seen_ips.values())
    return {label: float(count) for label, count in counts.items()}


def g_n_counts(
    rows: Sequence[CrawlRow],
    property_of_ip: PropertyFn,
    combine: CombineFn = majority_vote,
) -> Dict[str, float]:
    """Unique peers over the whole dataset, one label each."""
    labels_by_peer: Dict[PeerID, List[str]] = defaultdict(list)
    seen: set = set()
    for row in rows:
        key = (row.peer, row.ip)
        if key in seen:
            continue
        seen.add(key)
        labels_by_peer[row.peer].append(property_of_ip(row.ip))
    counts: Counter = Counter(combine(labels) for labels in labels_by_peer.values())
    return {label: float(count) for label, count in counts.items()}


def a_n_counts(
    rows: Sequence[CrawlRow],
    property_of_ip: PropertyFn,
    combine: CombineFn = majority_vote,
    num_crawls: Optional[int] = None,
) -> Dict[str, float]:
    """Per-crawl peer labels, averaged over all crawls (the paper's A-N).

    ``num_crawls`` defaults to the number of distinct crawl IDs present;
    pass it explicitly when some crawls contain no rows.
    """
    by_crawl: Dict[int, Dict[PeerID, List[str]]] = defaultdict(lambda: defaultdict(list))
    for row in rows:
        by_crawl[row.crawl_id][row.peer].append(property_of_ip(row.ip))
    crawls = num_crawls if num_crawls is not None else len(by_crawl)
    if crawls == 0:
        return {}
    totals: Counter = Counter()
    for peers in by_crawl.values():
        totals.update(combine(labels) for labels in peers.values())
    return {label: count / crawls for label, count in totals.items()}


def counts(
    rows: Sequence[CrawlRow],
    property_of_ip: PropertyFn,
    method: CountingMethod,
    combine: CombineFn = majority_vote,
    num_crawls: Optional[int] = None,
) -> Dict[str, float]:
    """Dispatch to the chosen methodology."""
    if method is CountingMethod.G_IP:
        return g_ip_counts(rows, property_of_ip)
    if method is CountingMethod.G_N:
        return g_n_counts(rows, property_of_ip, combine)
    return a_n_counts(rows, property_of_ip, combine, num_crawls)


def shares(count_map: Dict[str, float]) -> Dict[str, float]:
    """Normalize counts to shares (empty map stays empty)."""
    total = sum(count_map.values())
    if total <= 0:
        return {}
    return {label: value / total for label, value in count_map.items()}


# ---------------------------------------------------------------------------
# Cloud-status combiner (the BOTH label of Fig. 3)
# ---------------------------------------------------------------------------

CLOUD = "cloud"
NON_CLOUD = "non-cloud"
BOTH = "both"


def cloud_status_combine(labels: Sequence[str]) -> str:
    """Peer-level cloud status: any mix of cloud and non-cloud → BOTH."""
    has_cloud = any(label == CLOUD for label in labels)
    has_non_cloud = any(label == NON_CLOUD for label in labels)
    if has_cloud and has_non_cloud:
        return BOTH
    return CLOUD if has_cloud else NON_CLOUD


# ---------------------------------------------------------------------------
# Fig. 4: ratio as a function of cumulative crawls
# ---------------------------------------------------------------------------


def cumulative_ratio_series(
    rows: Sequence[CrawlRow],
    property_of_ip: PropertyFn,
    method: CountingMethod,
    numerator_label: str = CLOUD,
    denominator_label: str = NON_CLOUD,
    combine: CombineFn = majority_vote,
) -> List[Tuple[int, float]]:
    """``(k, ratio)`` using only the first ``k`` crawls, for each ``k``.

    Under G-IP the ratio drifts as rotating-IP churners accumulate; under
    A-N it stays flat (paper Fig. 4).
    """
    crawl_ids = sorted({row.crawl_id for row in rows})
    series: List[Tuple[int, float]] = []
    for index, last_crawl in enumerate(crawl_ids, start=1):
        subset = [row for row in rows if row.crawl_id <= last_crawl]
        result = counts(subset, property_of_ip, method, combine, num_crawls=index)
        denominator = result.get(denominator_label, 0.0)
        numerator = result.get(numerator_label, 0.0)
        series.append((index, numerator / denominator if denominator else float("inf")))
    return series
