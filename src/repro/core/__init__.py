"""The paper's measurement and analysis toolchain.

* :mod:`repro.core.crawler` — the DHT crawler and crawl datasets (§3),
* :mod:`repro.core.counting` — the counting methodologies: G-IP, G-N and
  the paper's A-N proposal (§3, Table 1),
* :mod:`repro.core.cloud` / :mod:`repro.core.geo` — cloud-provider and
  country attribution under each methodology (§4, Figs. 3-6),
* :mod:`repro.core.topology` — overlay graph and degree analysis (Fig. 7),
* :mod:`repro.core.resilience` — node-removal experiments (Fig. 8),
* :mod:`repro.core.pareto` — concentration curves shared by the traffic
  and provider analyses,
* :mod:`repro.core.traffic` — traffic classification, centralization and
  platform attribution (§5, Figs. 9-13),
* :mod:`repro.core.providers_analysis` — provider classification and
  content-level cloud reliance (§6, Figs. 14-16),
* :mod:`repro.core.entrypoints` — DNSLink, gateway and ENS entry-point
  analyses (§7, Figs. 17-20).
"""

from repro.core.counting import CountingMethod, CrawlRow
from repro.core.crawler import CrawlDataset, CrawlSnapshot, DHTCrawler

__all__ = [
    "CountingMethod",
    "CrawlDataset",
    "CrawlRow",
    "CrawlSnapshot",
    "DHTCrawler",
]
