"""Geolocation of crawl datasets (paper §4, Fig. 6).

Countries are attributed per IP with the MaxMind-like database; node-level
labels use the majority country.  The comparison of methodologies shows
the paper's point: short-lived rotating IPs in under-represented countries
inflate their share under G-IP counting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core import counting
from repro.core.counting import CountingMethod, CrawlRow
from repro.world.geodb import GeoIPDatabase

UNKNOWN_COUNTRY = "??"


def country_property(geo_db: GeoIPDatabase):
    def prop(ip: str) -> str:
        return geo_db.lookup(ip) or UNKNOWN_COUNTRY

    return prop


def country_shares(
    rows: Sequence[CrawlRow],
    geo_db: GeoIPDatabase,
    method: CountingMethod,
    num_crawls=None,
) -> Dict[str, float]:
    """Fig. 6: share of nodes (or IPs) per country."""
    return counting.shares(
        counting.counts(rows, country_property(geo_db), method, num_crawls=num_crawls)
    )


def top_countries(
    share_map: Dict[str, float], top_n: int = 10
) -> Tuple[List[Tuple[str, float]], float]:
    """Ranked top countries plus the share falling outside the top-N
    (the paper: 13.3 % outside the top 10 under A-N, 22.9 % under G-IP)."""
    ranked = sorted(share_map.items(), key=lambda item: item[1], reverse=True)
    top = ranked[:top_n]
    outside = sum(share for _, share in ranked[top_n:])
    return top, outside
