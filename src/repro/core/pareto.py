"""Concentration (simplified Pareto) curves.

The paper's Figs. 10, 11 and 15 plot "simplified Pareto charts": actors
sorted by activity, x = top fraction of actors, y = cumulative share of
activity they account for.  Shared by the traffic and provider analyses.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple


def pareto_curve(volumes: Dict[Hashable, float], points: int = 100) -> List[Tuple[float, float]]:
    """``(top fraction of actors, cumulative share of volume)`` samples.

    Actors are ranked by descending volume; the curve is sampled at
    ``points`` evenly spaced actor fractions (plus the exact end point).
    """
    if not volumes:
        return []
    ordered = sorted(volumes.values(), reverse=True)
    total = sum(ordered)
    if total <= 0:
        return [(1.0, 0.0)]
    cumulative = []
    running = 0.0
    for value in ordered:
        running += value
        cumulative.append(running / total)
    count = len(ordered)
    curve: List[Tuple[float, float]] = []
    for step in range(1, points + 1):
        index = max(1, round(step / points * count))
        curve.append((index / count, cumulative[index - 1]))
    if curve[-1][0] != 1.0:
        curve.append((1.0, 1.0))
    return curve


def top_share(volumes: Dict[Hashable, float], fraction: float) -> float:
    """Share of total volume contributed by the top ``fraction`` actors
    (e.g. the paper's "top 5 % of peer IDs generate 97 % of traffic")."""
    if not volumes:
        return 0.0
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(volumes.values(), reverse=True)
    total = sum(ordered)
    if total <= 0:
        return 0.0
    # Ceil (with a float-noise guard), not round: "the top f of actors"
    # must cover at least f·n of them, otherwise a uniform distribution
    # would report top_share(f) < f.
    top_count = max(1, math.ceil(fraction * len(ordered) - 1e-9))
    return sum(ordered[:top_count]) / total


def gini_coefficient(volumes: Dict[Hashable, float]) -> float:
    """Gini coefficient of the volume distribution (0 = equal, →1 =
    fully concentrated); a scalar summary for the ablation benches."""
    values = sorted(value for value in volumes.values() if value >= 0)
    count = len(values)
    total = sum(values)
    if count == 0 or total == 0:
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(values, start=1))
    return (2.0 * weighted) / (count * total) - (count + 1.0) / count
