"""Dataset export and import.

The paper publishes its processing code and datasets; this module gives
the reproduction the same property.  Crawl datasets, monitor logs and
provider observations serialize to line-oriented formats (CSV for the
tabular crawl rows — the Table 1 shape — and JSONL for the richer
records) and round-trip back into the analysis-facing types.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.counting import CrawlRow
from repro.core.crawler import CrawlDataset, CrawlObservation, CrawlSnapshot
from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope
from repro.kademlia.providers import ProviderRecord
from repro.monitors.bitswap_monitor import BitswapLogEntry
from repro.monitors.provider_fetcher import ProviderObservation
from repro.store.codecs import BITSWAP_CODEC, HYDRA_CODEC

# ---------------------------------------------------------------------------
# Crawl datasets (CSV rows + JSONL edges)
# ---------------------------------------------------------------------------

CRAWL_CSV_HEADER = ("crawl_id", "peer", "ip", "crawlable")


def write_crawl_csv(dataset: CrawlDataset, path) -> int:
    """Write the (crawl, peer, ip) rows; returns rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CRAWL_CSV_HEADER)
        for snapshot in dataset.snapshots:
            for obs in snapshot.observations.values():
                for ip in obs.ips:
                    writer.writerow(
                        (snapshot.crawl_id, obs.peer.to_base58(), ip, int(obs.crawlable))
                    )
                    count += 1
    return count


def read_crawl_rows(path) -> List[CrawlRow]:
    """Read rows back in the shape the counting methodologies consume."""
    rows: List[CrawlRow] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for record in reader:
            rows.append(
                CrawlRow(
                    crawl_id=int(record["crawl_id"]),
                    peer=PeerID.from_base58(record["peer"]),
                    ip=record["ip"],
                )
            )
    return rows


def write_crawl_jsonl(dataset: CrawlDataset, path) -> int:
    """Full snapshots (observations + edges) as one JSON object per crawl."""
    with open(path, "w") as handle:
        for snapshot in dataset.snapshots:
            payload = {
                "crawl_id": snapshot.crawl_id,
                "started_at": snapshot.started_at,
                "duration": snapshot.duration,
                "requests_sent": snapshot.requests_sent,
                "observations": [
                    {
                        "peer": obs.peer.to_base58(),
                        "ips": list(obs.ips),
                        "crawlable": obs.crawlable,
                    }
                    for obs in snapshot.observations.values()
                ],
                "edges": {
                    peer.to_base58(): [n.to_base58() for n in neighbors]
                    for peer, neighbors in snapshot.edges.items()
                },
            }
            handle.write(json.dumps(payload) + "\n")
    return len(dataset.snapshots)


def read_crawl_jsonl(path) -> CrawlDataset:
    dataset = CrawlDataset()
    with open(path) as handle:
        for line in handle:
            payload = json.loads(line)
            snapshot = CrawlSnapshot(
                crawl_id=payload["crawl_id"],
                started_at=payload["started_at"],
                duration=payload["duration"],
                requests_sent=payload["requests_sent"],
            )
            for obs in payload["observations"]:
                peer = PeerID.from_base58(obs["peer"])
                snapshot.observations[peer] = CrawlObservation(
                    peer=peer, ips=tuple(obs["ips"]), crawlable=obs["crawlable"]
                )
            for peer_text, neighbors in payload["edges"].items():
                snapshot.edges[PeerID.from_base58(peer_text)] = tuple(
                    PeerID.from_base58(n) for n in neighbors
                )
            dataset.add(snapshot)
    return dataset


# ---------------------------------------------------------------------------
# Monitor logs (JSONL)
# ---------------------------------------------------------------------------


def _write_log_jsonl(log: Iterable, codec, path) -> int:
    count = 0
    with open(path, "w") as handle:
        for entry in log:
            handle.write(json.dumps(codec.encode(entry)) + "\n")
            count += 1
    return count


def _read_log_jsonl(path, codec) -> List:
    with open(path) as handle:
        return [codec.decode(json.loads(line)) for line in handle if line.strip()]


def write_hydra_jsonl(log: Iterable[MessageEnvelope], path) -> int:
    return _write_log_jsonl(log, HYDRA_CODEC, path)


def read_hydra_jsonl(path) -> List[MessageEnvelope]:
    return _read_log_jsonl(path, HYDRA_CODEC)


def write_bitswap_jsonl(log: Iterable[BitswapLogEntry], path) -> int:
    return _write_log_jsonl(log, BITSWAP_CODEC, path)


def read_bitswap_jsonl(path) -> List[BitswapLogEntry]:
    return _read_log_jsonl(path, BITSWAP_CODEC)


def convert_log(source_path, destination_path, codec) -> int:
    """Convert a stored log between backends (by file suffix).

    Streams through the codec, so e.g. a published ``hydra.jsonl`` can be
    loaded into an indexed ``hydra.sqlite`` (or back) without ever
    materialising the log in memory.  Returns the records copied.
    """
    from repro.store import EventLog, open_file_backend

    source = EventLog(codec, open_file_backend(source_path))
    destination = EventLog(codec, open_file_backend(destination_path))
    count = 0
    for entry in source:
        destination.append(entry)
        count += 1
    destination.close()
    source.close()
    return count


# ---------------------------------------------------------------------------
# Provider observations (JSONL)
# ---------------------------------------------------------------------------


def _record_to_json(record: ProviderRecord) -> Dict:
    return {
        "provider": record.provider.to_base58(),
        "addrs": [str(addr) for addr in record.addrs],
        "published_at": record.published_at,
    }


def _record_from_json(cid: CID, payload: Dict) -> ProviderRecord:
    return ProviderRecord(
        cid=cid,
        provider=PeerID.from_base58(payload["provider"]),
        addrs=tuple(Multiaddr.parse(text) for text in payload["addrs"]),
        published_at=payload["published_at"],
    )


def write_provider_observations_jsonl(
    observations: Iterable[ProviderObservation], path
) -> int:
    count = 0
    with open(path, "w") as handle:
        for observation in observations:
            reachable = {record.provider.to_base58() for record in observation.reachable}
            handle.write(
                json.dumps(
                    {
                        "cid": observation.cid.to_base32(),
                        "collected_at": observation.collected_at,
                        "resolvers_queried": observation.resolvers_queried,
                        "walk_messages": observation.walk_messages,
                        "records": [_record_to_json(r) for r in observation.records],
                        "reachable": sorted(reachable),
                    }
                )
                + "\n"
            )
            count += 1
    return count


def read_provider_observations_jsonl(path) -> List[ProviderObservation]:
    observations: List[ProviderObservation] = []
    with open(path) as handle:
        for line in handle:
            payload = json.loads(line)
            cid = CID.from_base32(payload["cid"])
            records = tuple(_record_from_json(cid, r) for r in payload["records"])
            reachable_set = set(payload["reachable"])
            observations.append(
                ProviderObservation(
                    cid=cid,
                    collected_at=payload["collected_at"],
                    records=records,
                    reachable=tuple(
                        r for r in records if r.provider.to_base58() in reachable_set
                    ),
                    resolvers_queried=payload["resolvers_queried"],
                    walk_messages=payload["walk_messages"],
                )
            )
    return observations


def export_campaign(result, directory) -> Dict[str, int]:
    """Export every campaign dataset into ``directory``.

    Returns counts per artifact, mirroring the paper's published-dataset
    structure (crawls, Hydra log, Bitswap log, provider records).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        "crawl_rows": write_crawl_csv(result.crawls, directory / "crawls.csv"),
        "crawl_snapshots": write_crawl_jsonl(result.crawls, directory / "crawls.jsonl"),
        "hydra_messages": write_hydra_jsonl(result.hydra.log, directory / "hydra.jsonl"),
        "bitswap_messages": write_bitswap_jsonl(
            result.bitswap_monitor.log, directory / "bitswap.jsonl"
        ),
        "provider_observations": write_provider_observations_jsonl(
            result.provider_observations, directory / "providers.jsonl"
        ),
    }
