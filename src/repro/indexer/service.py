"""The indexer service: a cloud-hosted, single-operator resolution API.

Providers announce their content to the indexer (the interplanetary
network indexer ingests storage-deal and advertisement feeds); clients
resolve a CID with one round trip instead of a multi-hop DHT walk.
Because one entity operates it, it can also *refuse* to resolve content
— the §9 censorship concern this module makes measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ids.cid import CID
from repro.kademlia.providers import ProviderRecord
from repro.netsim.network import Overlay


@dataclass
class IndexerStats:
    queries: int = 0
    hits: int = 0
    blocked: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0


class IndexerService:
    """A centralized index over the network's provider records.

    :ivar coverage: fraction of advertisements the indexer ingests
        (large operators feed it directly; fringe publishers may not).
    :ivar rtt_seconds: single round-trip latency of an indexer query.
    """

    def __init__(
        self,
        overlay: Overlay,
        coverage: float = 0.95,
        rtt_seconds: float = 0.08,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be a probability")
        self.overlay = overlay
        self.coverage = coverage
        self.rtt_seconds = rtt_seconds
        self.rng = rng or random.Random(0x1D0)
        self.stats = IndexerStats()
        self._blocklist: Set[CID] = set()
        #: CIDs the ingest pipeline missed (sampled lazily, persistent).
        self._missed: Dict[CID, bool] = {}

    # -- operator controls ----------------------------------------------------

    def block(self, cid: CID) -> None:
        """Censor a CID: the operator refuses to resolve it (§9)."""
        self._blocklist.add(cid)

    def unblock(self, cid: CID) -> None:
        self._blocklist.discard(cid)

    @property
    def blocked_cids(self) -> Set[CID]:
        return set(self._blocklist)

    # -- resolution -------------------------------------------------------------

    def _ingested(self, cid: CID) -> bool:
        if cid not in self._missed:
            self._missed[cid] = self.rng.random() < self.coverage
        return self._missed[cid]

    def resolve(self, cid: CID) -> List[ProviderRecord]:
        """One-shot resolution against the index.

        Returns the records the index knows about; empty for blocked,
        non-ingested or genuinely unprovided content.
        """
        self.stats.queries += 1
        if cid in self._blocklist:
            self.stats.blocked += 1
            return []
        if not self._ingested(cid):
            return []
        records = self.overlay.providers.get(cid, self.overlay.now)
        if records:
            self.stats.hits += 1
        return list(records)
