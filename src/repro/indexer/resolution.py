"""Combined indexer + DHT resolution, with latency accounting.

§9: "cloud-based resolution is always faster than decentralised lookup…
we strongly advise keeping the DHT as a fallback resolution mechanism to
maintain the decentralization of the network."  The combined resolver
makes the trade-off measurable: latency, success rate and — under
censorship — availability, per strategy.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.ids.cid import CID
from repro.indexer.service import IndexerService
from repro.kademlia.lookup import iterative_find_providers
from repro.kademlia.providers import ProviderRecord
from repro.netsim.network import Overlay

#: Modelled per-hop latency of a DHT walk step (connect + query).
DHT_HOP_SECONDS = 0.25


class ResolutionStrategy(enum.Enum):
    DHT_ONLY = "dht-only"
    INDEXER_ONLY = "indexer-only"
    INDEXER_WITH_DHT_FALLBACK = "indexer+dht-fallback"


@dataclass
class ResolutionOutcome:
    """One resolution attempt."""

    cid: CID
    strategy: ResolutionStrategy
    records: List[ProviderRecord]
    latency_seconds: float
    used_fallback: bool = False

    @property
    def resolved(self) -> bool:
        return bool(self.records)


class CombinedResolver:
    """Resolves CIDs via the indexer, the DHT, or indexer-with-fallback."""

    def __init__(
        self,
        overlay: Overlay,
        indexer: IndexerService,
        rng: Optional[random.Random] = None,
        bootstrap_size: int = 8,
    ) -> None:
        self.overlay = overlay
        self.indexer = indexer
        self.rng = rng or random.Random(0x1D1)
        self.bootstrap_size = bootstrap_size

    def _dht_resolve(self, cid: CID):
        servers = self.overlay.online_servers()
        start = [
            node.peer_info()
            for node in self.rng.sample(servers, min(self.bootstrap_size, len(servers)))
        ]
        result = iterative_find_providers(
            cid, start, self.overlay.get_providers_query(timeout=60.0)
        )
        # Walk latency: alpha=3 concurrent queries per round.
        rounds = max(1, (result.messages + 2) // 3)
        return list(result.providers), rounds * DHT_HOP_SECONDS

    def resolve(self, cid: CID, strategy: ResolutionStrategy) -> ResolutionOutcome:
        if strategy is ResolutionStrategy.DHT_ONLY:
            records, latency = self._dht_resolve(cid)
            return ResolutionOutcome(cid, strategy, records, latency)
        if strategy is ResolutionStrategy.INDEXER_ONLY:
            records = self.indexer.resolve(cid)
            return ResolutionOutcome(cid, strategy, records, self.indexer.rtt_seconds)
        # Indexer with DHT fallback: try the fast path, walk on failure.
        records = self.indexer.resolve(cid)
        latency = self.indexer.rtt_seconds
        used_fallback = False
        if not records:
            dht_records, dht_latency = self._dht_resolve(cid)
            records = dht_records
            latency += dht_latency
            used_fallback = True
        return ResolutionOutcome(cid, strategy, records, latency, used_fallback)

    def batch(self, cids, strategy: ResolutionStrategy) -> List[ResolutionOutcome]:
        return [self.resolve(cid, strategy) for cid in cids]


def availability(outcomes: List[ResolutionOutcome]) -> float:
    """Fraction of attempts that found at least one provider."""
    if not outcomes:
        return 0.0
    return sum(1 for outcome in outcomes if outcome.resolved) / len(outcomes)


def mean_latency(outcomes: List[ResolutionOutcome]) -> float:
    if not outcomes:
        return 0.0
    return sum(outcome.latency_seconds for outcome in outcomes) / len(outcomes)
