"""Network indexers — centralized, cloud-hosted content resolution.

§9 of the paper flags the introduction of network indexers (entirely
cloud-hosted services that know about all content and resolve much
faster than DHT lookups) as a concerning centralization vector: whoever
controls resolution can block content.  The paper advises keeping the
DHT as a fallback resolution mechanism.

This subpackage implements that future: an indexer service, a resolver
that combines indexer and DHT paths, latency models for both, and the
censorship experiment the discussion implies.
"""

from repro.indexer.service import IndexerService
from repro.indexer.resolution import (
    CombinedResolver,
    ResolutionOutcome,
    ResolutionStrategy,
)

__all__ = [
    "CombinedResolver",
    "IndexerService",
    "ResolutionOutcome",
    "ResolutionStrategy",
]
