"""Content identifiers (CIDs).

A CID for item ``d`` is derived by hashing the content, ``CID(d) = h(d)``
(paper §2).  We implement CIDv1 with the ``raw`` codec and a sha2-256
multihash, rendered base32 with the ``b`` multibase prefix — the format
modern IPFS defaults to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import total_ordering

from repro.ids.encoding import base32_encode
from repro.ids.keys import Key, key_from_bytes

_CID_VERSION = b"\x01"
_CODEC_RAW = b"\x55"
_MULTIHASH_SHA256 = b"\x12\x20"


@total_ordering
@dataclass(frozen=True)
class CID:
    """A CIDv1 (raw codec, sha2-256).

    :ivar digest: 32-byte sha2-256 digest of the content.
    """

    digest: bytes
    _dht_key: Key = field(init=False, repr=False, compare=False)
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("CID digest must be 32 bytes")
        object.__setattr__(self, "_dht_key", key_from_bytes(self.multihash))
        # CIDs key provider registries and workload maps; hash once.
        object.__setattr__(self, "_hash", hash(self.digest))

    @classmethod
    def for_data(cls, data: bytes) -> "CID":
        """The CID identifying ``data`` (content addressing)."""
        return cls(hashlib.sha256(data).digest())

    @classmethod
    def generate(cls, rng) -> "CID":
        """Mint a CID for unique synthetic content.

        Used by workload generators and the gateway prober, which only need
        distinct identifiers, not actual bytes.
        """
        return cls(rng.getrandbits(256).to_bytes(32, "big"))

    @property
    def multihash(self) -> bytes:
        """The binary multihash of the content."""
        return _MULTIHASH_SHA256 + self.digest

    @property
    def binary(self) -> bytes:
        """The binary CID (version, codec, multihash)."""
        return _CID_VERSION + _CODEC_RAW + self.multihash

    @property
    def dht_key(self) -> Key:
        """Position of this CID in the Kademlia keyspace.

        Provider records for the CID live on the ``k`` peers whose DHT keys
        are closest (XOR) to this value.
        """
        return self._dht_key

    def to_base32(self) -> str:
        """CIDv1 string form: multibase prefix ``b`` plus base32 body."""
        return "b" + base32_encode(self.binary)

    @classmethod
    def from_base32(cls, text: str) -> "CID":
        """Parse a CIDv1 base32 string back into a :class:`CID`.

        Raises :class:`ValueError` for anything that is not a
        raw-codec/sha2-256 CIDv1 produced by this package.
        """
        from repro.ids.encoding import base32_decode

        if not text.startswith("b"):
            raise ValueError(f"missing multibase prefix: {text!r}")
        binary = base32_decode(text[1:])
        if len(binary) != 36 or binary[:2] != _CID_VERSION + _CODEC_RAW or binary[2:4] != _MULTIHASH_SHA256:
            raise ValueError(f"not a raw/sha2-256 CIDv1: {text!r}")
        return cls(binary[4:])

    def __str__(self) -> str:
        return self.to_base32()

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        # ``hash(bytes)`` is salted per process: a cached hash must never
        # cross a pickle boundary (worker pools ship CIDs around).
        return self.digest

    def __setstate__(self, digest: bytes) -> None:
        object.__setattr__(self, "digest", digest)
        object.__setattr__(self, "_dht_key", key_from_bytes(_MULTIHASH_SHA256 + digest))
        object.__setattr__(self, "_hash", hash(digest))

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, CID):
            return NotImplemented
        return self._dht_key < other._dht_key


def cid_for_data(data: bytes) -> CID:
    """Convenience alias for :meth:`CID.for_data`."""
    return CID.for_data(data)
