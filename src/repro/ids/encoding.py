"""Base58btc and RFC 4648 base32 encodings.

Peer IDs are conventionally rendered base58btc (the Bitcoin alphabet),
CIDv1 strings base32 lower-case without padding.  Implemented from scratch
so the reproduction has no dependency beyond the standard library.
"""

from __future__ import annotations

_B58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_B58_INDEX = {char: value for value, char in enumerate(_B58_ALPHABET)}

_B32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"
_B32_INDEX = {char: value for value, char in enumerate(_B32_ALPHABET)}


def base58_encode(data: bytes) -> str:
    """Encode bytes as a base58btc string."""
    # Leading zero bytes encode as leading '1' characters.
    leading_zeros = len(data) - len(data.lstrip(b"\x00"))
    number = int.from_bytes(data, "big")
    digits = []
    while number > 0:
        number, remainder = divmod(number, 58)
        digits.append(_B58_ALPHABET[remainder])
    return "1" * leading_zeros + "".join(reversed(digits))


def base58_decode(text: str) -> bytes:
    """Decode a base58btc string back to bytes.

    Raises :class:`ValueError` on characters outside the alphabet.
    """
    leading_ones = len(text) - len(text.lstrip("1"))
    number = 0
    for char in text:
        try:
            number = number * 58 + _B58_INDEX[char]
        except KeyError:
            raise ValueError(f"invalid base58 character: {char!r}") from None
    body = number.to_bytes((number.bit_length() + 7) // 8, "big") if number else b""
    return b"\x00" * leading_ones + body


def base32_encode(data: bytes) -> str:
    """Encode bytes as lower-case, unpadded RFC 4648 base32."""
    bits = 0
    bit_count = 0
    output = []
    for byte in data:
        bits = (bits << 8) | byte
        bit_count += 8
        while bit_count >= 5:
            bit_count -= 5
            output.append(_B32_ALPHABET[(bits >> bit_count) & 0x1F])
    if bit_count:
        output.append(_B32_ALPHABET[(bits << (5 - bit_count)) & 0x1F])
    return "".join(output)


def base32_decode(text: str) -> bytes:
    """Decode lower-case unpadded base32 back to bytes.

    Raises :class:`ValueError` on characters outside the alphabet.
    """
    bits = 0
    bit_count = 0
    output = bytearray()
    for char in text:
        try:
            bits = (bits << 5) | _B32_INDEX[char]
        except KeyError:
            raise ValueError(f"invalid base32 character: {char!r}") from None
        bit_count += 5
        if bit_count >= 8:
            bit_count -= 8
            output.append((bits >> bit_count) & 0xFF)
    return bytes(output)
