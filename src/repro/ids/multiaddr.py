"""Multiaddresses.

A provider record maps a CID to *multiaddresses* — a self-describing
address format, e.g. ``/ip4/1.10.20.30/tcp/29087/p2p/<peer ID>`` — that
embeds the provider's connectivity information and peer ID (paper §6).

NAT-ed peers advertise *circuit* addresses which route through a relay:

    /ip4/<relay IP>/tcp/<port>/p2p/<relay ID>/p2p-circuit/p2p/<peer ID>

The analyses in the paper key off exactly two things: the transport IP
(for cloud/geo attribution) and whether the address is a circuit address
(for NAT-ed classification), so this implementation focuses on those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ids.peerid import PeerID


@dataclass(frozen=True)
class Multiaddr:
    """A parsed multiaddress.

    :ivar ip: the transport IP address (the relay's IP for circuit
        addresses — this matches what an on-the-wire observer sees and is
        exactly the attribution subtlety §6 of the paper discusses).
    :ivar port: TCP port.
    :ivar peer: the peer the address ultimately identifies.
    :ivar relay: the relay peer for circuit addresses, else ``None``.
    """

    ip: str
    port: int
    peer: PeerID
    relay: Optional[PeerID] = None

    @property
    def is_circuit(self) -> bool:
        """Whether this is a ``p2p-circuit`` (relayed / NAT-ed) address."""
        return self.relay is not None

    @classmethod
    def direct(cls, ip: str, port: int, peer: PeerID) -> "Multiaddr":
        """A plain publicly-dialable address."""
        return cls(ip=ip, port=port, peer=peer)

    @classmethod
    def circuit(cls, relay_ip: str, relay_port: int, relay: PeerID, peer: PeerID) -> "Multiaddr":
        """A relayed address for a NAT-ed peer behind ``relay``."""
        return cls(ip=relay_ip, port=relay_port, peer=peer, relay=relay)

    def __str__(self) -> str:
        base = f"/ip4/{self.ip}/tcp/{self.port}"
        if self.relay is not None:
            return f"{base}/p2p/{self.relay.to_base58()}/p2p-circuit/p2p/{self.peer.to_base58()}"
        return f"{base}/p2p/{self.peer.to_base58()}"

    @classmethod
    def parse(cls, text: str, peer_lookup=None) -> "Multiaddr":
        """Parse the string form produced by :meth:`__str__`.

        Because peer IDs are not invertible from base58 alone without the
        digest, ``peer_lookup`` maps a base58 string back to a
        :class:`PeerID`; by default the digest is recovered from the
        multihash bytes, which is always possible.
        """
        from repro.ids.encoding import base58_decode

        def decode_peer(b58: str) -> PeerID:
            if peer_lookup is not None:
                return peer_lookup(b58)
            multihash = base58_decode(b58)
            if len(multihash) != 34 or multihash[:2] != b"\x12\x20":
                raise ValueError(f"not a sha2-256 multihash peer ID: {b58}")
            return PeerID(multihash[2:])

        parts = text.strip("/").split("/")
        if len(parts) < 6 or parts[0] != "ip4" or parts[2] != "tcp" or parts[4] != "p2p":
            raise ValueError(f"unsupported multiaddr: {text}")
        ip = parts[1]
        port = int(parts[3])
        first_peer = decode_peer(parts[5])
        if len(parts) == 6:
            return cls.direct(ip, port, first_peer)
        if len(parts) == 9 and parts[6] == "p2p-circuit" and parts[7] == "p2p":
            target = decode_peer(parts[8])
            return cls.circuit(ip, port, first_peer, target)
        raise ValueError(f"unsupported multiaddr: {text}")
