"""The 256-bit Kademlia keyspace and the XOR metric.

IPFS places both peers and content into a shared 256-bit keyspace: a peer's
DHT key is ``SHA-256(peer ID bytes)``, and a CID's DHT key is
``SHA-256(multihash bytes)``.  Distance between keys is the XOR metric of
Maymounkov & Mazieres (Kademlia, IPTPS '02).

Keys are represented as plain ``int`` for speed; helper functions provide
the derived quantities that the routing table and crawler need.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left

#: Width of the keyspace in bits (SHA-256 output).
KEY_BITS = 256

#: Maximum key value (inclusive upper bound is ``KEY_SPACE - 1``).
KEY_SPACE = 1 << KEY_BITS

#: Type alias for readability; keys are ints in ``[0, KEY_SPACE)``.
Key = int


def key_from_bytes(data: bytes) -> Key:
    """Hash arbitrary bytes onto the 256-bit Kademlia keyspace.

    This mirrors go-libp2p-kad-dht, which uses SHA-256 of the binary
    identifier (peer ID or multihash) as the DHT key.
    """
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def xor_distance(a: Key, b: Key) -> int:
    """XOR distance between two keys (the Kademlia metric)."""
    return a ^ b


def common_prefix_len(a: Key, b: Key) -> int:
    """Number of leading bits shared by ``a`` and ``b``.

    Equal keys share all :data:`KEY_BITS` bits.
    """
    distance = a ^ b
    if distance == 0:
        return KEY_BITS
    return KEY_BITS - distance.bit_length()


def bucket_index(own: Key, other: Key) -> int:
    """Index of the k-bucket in which ``own`` stores ``other``.

    Bucket ``i`` holds peers whose common prefix length with ``own`` is
    exactly ``i``; equivalently, peers at XOR distance in
    ``[2^(255-i), 2^(256-i))``.  Raises :class:`ValueError` for
    ``own == other`` because a node never stores itself.
    """
    if own == other:
        raise ValueError("a node does not occupy a bucket of its own table")
    return common_prefix_len(own, other)


def select_closest(sorted_keys, target: Key, count: int):
    """The ``count`` keys XOR-closest to ``target``, from a sorted list.

    Exploits a property of the metric: every key sharing at least ``p``
    leading bits with the target is strictly closer (XOR) than any key
    sharing fewer, so the smallest *aligned binary subtree* (prefix
    range) around the target still holding ``count`` keys is guaranteed
    to contain the true closest set — and prefix ranges are contiguous
    in sorted order, so the subtree is one slice.

    :param sorted_keys: keys in ascending order (no duplicates).
    :returns: the closest ``count`` keys, ordered by XOR distance.
    """
    keys = sorted_keys
    if not keys or count <= 0:
        return []
    want = min(len(keys), count)
    low, high = 0, len(keys)
    # Shrink the aligned range while it still holds enough keys.
    for prefix_len in range(1, KEY_BITS + 1):
        shift = KEY_BITS - prefix_len
        range_base = (target >> shift) << shift
        new_low = bisect_left(keys, range_base, low, high)
        new_high = bisect_left(keys, range_base + (1 << shift), low, high)
        if new_high - new_low < want:
            break
        low, high = new_low, new_high
    candidates = keys[low:high]
    candidates.sort(key=target.__xor__)
    return candidates[:count]


def key_to_hex(key: Key) -> str:
    """Render a key as a fixed-width hex string (for logs and debugging)."""
    return f"{key:064x}"


def random_key_in_bucket(own: Key, index: int, rng) -> Key:
    """Draw a uniform random key that falls into bucket ``index`` of ``own``.

    Used by the crawler and by bucket-refresh maintenance: the returned key
    shares exactly ``index`` leading bits with ``own`` (the bit at position
    ``index`` is flipped, lower bits are random).

    :param own: the key whose bucket layout is used.
    :param index: bucket index in ``[0, KEY_BITS)``.
    :param rng: a :class:`random.Random`-like source with ``getrandbits``.
    """
    if not 0 <= index < KEY_BITS:
        raise ValueError(f"bucket index out of range: {index}")
    # Keep the `index` high bits of `own`, flip bit `index`, randomize rest.
    shift = KEY_BITS - index
    prefix = (own >> shift) << shift if index > 0 else 0
    flipped_bit = ((own >> (shift - 1)) & 1) ^ 1
    low_bits = shift - 1
    suffix = rng.getrandbits(low_bits) if low_bits > 0 else 0
    return prefix | (flipped_bit << (shift - 1)) | suffix
