"""Identifiers used throughout the IPFS reproduction.

This subpackage implements the identifier formats of the libp2p/IPFS
ecosystem that the paper's measurements revolve around:

* 256-bit keyspace with the Kademlia XOR metric (:mod:`repro.ids.keys`),
* peer IDs derived from key pairs (:mod:`repro.ids.peerid`),
* content identifiers / CIDs (:mod:`repro.ids.cid`),
* multiaddresses, including ``p2p-circuit`` relay addresses
  (:mod:`repro.ids.multiaddr`),
* base58btc / base32 encodings (:mod:`repro.ids.encoding`).
"""

from repro.ids.cid import CID, cid_for_data
from repro.ids.encoding import base32_decode, base32_encode, base58_decode, base58_encode
from repro.ids.keys import KEY_BITS, Key, bucket_index, common_prefix_len, key_from_bytes, xor_distance
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID

__all__ = [
    "CID",
    "KEY_BITS",
    "Key",
    "Multiaddr",
    "PeerID",
    "base32_decode",
    "base32_encode",
    "base58_decode",
    "base58_encode",
    "bucket_index",
    "cid_for_data",
    "common_prefix_len",
    "key_from_bytes",
    "xor_distance",
]
