"""Peer identifiers.

An IPFS node is identified by its *peer ID*, derived from the public key of
a unique key pair (paper §2).  We model the key pair by 32 random bytes
(standing in for an Ed25519 public key) and derive the peer ID as the
multihash of those bytes, rendered base58btc with the conventional ``12D3``
/ ``Qm``-style structure abstracted to a simple ``sha2-256`` multihash.

Peer IDs are value objects: hashable, ordered by their DHT key, and cheap
to create in bulk (the simulator mints tens of thousands).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import total_ordering

from repro.ids.encoding import base58_encode
from repro.ids.keys import Key, key_from_bytes

_MULTIHASH_SHA256 = b"\x12\x20"  # code 0x12 (sha2-256), length 32


@total_ordering
@dataclass(frozen=True)
class PeerID:
    """A libp2p peer identifier.

    :ivar digest: 32-byte multihash digest of the (modelled) public key.
    """

    digest: bytes
    _dht_key: Key = field(init=False, repr=False, compare=False)
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("peer ID digest must be 32 bytes")
        object.__setattr__(self, "_dht_key", key_from_bytes(self.multihash))
        # Peer IDs are dict keys on every hot path; hash once at mint time.
        object.__setattr__(self, "_hash", hash(self.digest))

    @classmethod
    def from_public_key(cls, public_key: bytes) -> "PeerID":
        """Derive the peer ID for a public key (sha2-256 multihash)."""
        return cls(hashlib.sha256(public_key).digest())

    @classmethod
    def generate(cls, rng) -> "PeerID":
        """Mint a fresh peer ID from a random key pair.

        :param rng: a :class:`random.Random`-like source.
        """
        public_key = rng.getrandbits(256).to_bytes(32, "big")
        return cls.from_public_key(public_key)

    @property
    def multihash(self) -> bytes:
        """The binary multihash (``0x12 0x20`` prefix plus digest)."""
        return _MULTIHASH_SHA256 + self.digest

    @property
    def dht_key(self) -> Key:
        """Position of this peer in the Kademlia keyspace."""
        return self._dht_key

    def to_base58(self) -> str:
        """Conventional base58btc rendering (``Qm...`` style)."""
        return base58_encode(self.multihash)

    @classmethod
    def from_base58(cls, text: str) -> "PeerID":
        """Parse a base58btc peer ID string back into a :class:`PeerID`.

        Raises :class:`ValueError` unless the string decodes to a
        sha2-256 multihash.
        """
        from repro.ids.encoding import base58_decode

        multihash = base58_decode(text)
        if len(multihash) != 34 or multihash[:2] != _MULTIHASH_SHA256:
            raise ValueError(f"not a sha2-256 multihash peer ID: {text!r}")
        return cls(multihash[2:])

    def __str__(self) -> str:
        return self.to_base58()

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        # ``hash(bytes)`` is salted per process: a cached hash must never
        # cross a pickle boundary (worker pools ship peer IDs around).
        return self.digest

    def __setstate__(self, digest: bytes) -> None:
        object.__setattr__(self, "digest", digest)
        object.__setattr__(self, "_dht_key", key_from_bytes(_MULTIHASH_SHA256 + digest))
        object.__setattr__(self, "_hash", hash(digest))

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, PeerID):
            return NotImplemented
        return self._dht_key < other._dht_key
