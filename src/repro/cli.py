"""Command-line interface.

    python -m repro campaign --preset smoke --figures fig3 fig14
    python -m repro campaign --servers 800 --days 4 --export out/
    python -m repro campaign --storage sqlite:out/logs --figures sec5
    python -m repro campaign --preset paper-horizon --workers 4
    python -m repro campaign --metrics --metrics-out out/metrics.jsonl
    python -m repro sweep --seeds 1 2 3 --servers 300 500 --workers 4
    python -m repro crawl --servers 500 --crawls 3 --workers 4
    python -m repro campaign --trace --trace-out out/run.trace --progress
    python -m repro store stats out/hydra.jsonl --kind hydra
    python -m repro store convert out/hydra.jsonl out/hydra.sqlite
    python -m repro obs report out/metrics.jsonl --format json --top 10
    python -m repro campaign --stream --sketches-out out/sketches.json
    python -m repro campaign --live --progress
    python -m repro obs serve --addr 127.0.0.1:0 --announce out/url.txt
    python -m repro obs report http://127.0.0.1:8377 --watch 2
    python -m repro obs audit out/run.trace
    python -m repro obs trace-export out/run.trace --perfetto out/run.json
    python -m repro campaign --attack sybil-eclipse --detect
    python -m repro campaign --storage sqlite:out/adv --attack bitswap-flood:broadcasts_per_hour=900
    python -m repro detect score out/adv
    python -m repro detect attacks
    python -m repro table1

The CLI is a thin shell over :mod:`repro.scenario`; everything it prints
comes from the same report functions the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.scenario import report as figure_reports
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.viz import bar_chart
from repro.world.profiles import WorldProfile

FIGURE_CHOICES = (
    "crawl_stats", "fig3", "fig5", "fig6", "fig7", "sec5",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18_19", "fig20",
)

_REPORT_FUNCTIONS = {
    "crawl_stats": figure_reports.crawl_stats_report,
    "fig3": figure_reports.fig3_report,
    "fig5": figure_reports.fig5_report,
    "fig6": figure_reports.fig6_report,
    "fig7": figure_reports.fig7_report,
    "sec5": figure_reports.sec5_report,
    "fig10": figure_reports.fig10_report,
    "fig11": figure_reports.fig11_report,
    "fig12": figure_reports.fig12_report,
    "fig13": figure_reports.fig13_report,
    "fig14": figure_reports.fig14_report,
    "fig15": figure_reports.fig15_report,
    "fig16": figure_reports.fig16_report,
    "fig17": figure_reports.fig17_report,
    "fig18_19": figure_reports.fig18_19_report,
    "fig20": figure_reports.fig20_report,
}


def _exec_options() -> argparse.ArgumentParser:
    """Shared ``--workers`` / ``--storage`` flags (one definition, used as
    an argparse parent by campaign, sweep and crawl so help can't drift)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 runs inline; results are identical at any count)",
    )
    common.add_argument(
        "--storage", metavar="SPEC", default="memory",
        help="storage spec: memory (default), sqlite:DIR, jsonl:DIR, "
        "or sharded:N:sqlite:DIR (see repro.store.parse_spec)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Cloud Strikes Back' (IMC '23)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)
    exec_options = _exec_options()

    campaign = commands.add_parser(
        "campaign", parents=[exec_options],
        help="run a measurement campaign and print figure reports",
    )
    campaign.add_argument(
        "--preset", choices=("smoke", "default", "paper-horizon"), default="smoke"
    )
    campaign.add_argument("--servers", type=int, help="online DHT servers (overrides preset)")
    campaign.add_argument("--days", type=int, help="measurement days (overrides preset)")
    campaign.add_argument("--seed", type=int, help="override the scenario seed")
    campaign.add_argument(
        "--engine", choices=("auto", "soa", "scalar"), default="auto",
        help="tick engine: the vectorized struct-of-arrays engine (needs "
        "numpy), the scalar reference, or auto-select (both are "
        "bit-identical; see repro.netsim.soa)",
    )
    campaign.add_argument(
        "--figures", nargs="*", choices=FIGURE_CHOICES, default=["crawl_stats", "fig3"],
        help="figure reports to print",
    )
    campaign.add_argument("--export", metavar="DIR", help="export datasets to a directory")
    campaign.add_argument(
        "--render", nargs="*", metavar="FIG", default=[],
        help="render figures as terminal charts (fig3 … fig20)",
    )
    campaign.add_argument(
        "--metrics", action="store_true",
        help="collect observability metrics and print the summary table",
    )
    campaign.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the metrics snapshot to PATH (.jsonl, .sqlite or .json; "
        "implies --metrics; render later with 'repro obs report PATH')",
    )
    campaign.add_argument(
        "--trace", action="store_true",
        help="collect causal event traces (see repro.obs.trace)",
    )
    campaign.add_argument(
        "--trace-out", metavar="PATH",
        help="write the merged trace to PATH (.trace/.jsonl or .sqlite; "
        "implies --trace; audit with 'repro obs audit PATH', export with "
        "'repro obs trace-export PATH --perfetto out.json')",
    )
    campaign.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="keep ~1 in N causal trees (deterministic; default 1 = all)",
    )
    campaign.add_argument(
        "--progress", action="store_true",
        help="render a live single-line progress heartbeat on stderr",
    )
    campaign.add_argument(
        "--stream", action="store_true",
        help="maintain streaming analytics sketches over the monitor "
        "event stream and print the live-estimate summary (see "
        "repro.obs.stream)",
    )
    campaign.add_argument(
        "--sketches-out", metavar="PATH",
        help="write the final sketch snapshot JSON to PATH (implies "
        "--stream; render later with 'repro obs report PATH')",
    )
    campaign.add_argument(
        "--live", nargs="?", const="127.0.0.1:8377", metavar="ADDR",
        help="serve the live dashboard and control plane on ADDR "
        "(default 127.0.0.1:8377; host:0 picks a free port; implies "
        "--stream; see 'repro obs serve' for a standalone server)",
    )
    campaign.add_argument(
        "--workload", metavar="SPEC", default="closed",
        help="workload model: closed (legacy per-node Poisson, the "
        "golden default) or zipf:users=1e6,s=1.05,sessions=onoff,"
        "diurnal=true (open-loop sessions; 'repro workload describe "
        "SPEC' explains a spec)",
    )
    campaign.add_argument(
        "--attack", action="append", default=[], metavar="SPEC",
        help="inject an adversarial scenario, e.g. sybil-eclipse or "
        "bitswap-flood:num_attackers=4,broadcasts_per_hour=900 "
        "(repeatable; 'repro detect attacks' lists scenarios and knobs)",
    )
    campaign.add_argument(
        "--detect", action="store_true",
        help="run the packaged detectors over the monitor logs and print "
        "the ground-truth scorecard (see repro.detect)",
    )
    campaign.add_argument(
        "--detect-window", type=float, metavar="SECONDS",
        help="detection feature-window length (implies --detect; "
        "default: one campaign tick)",
    )

    sweep = commands.add_parser(
        "sweep", parents=[exec_options],
        help="run a grid of campaign configs, one worker process each",
    )
    sweep.add_argument(
        "--preset", choices=("smoke", "default", "paper-horizon"), default="smoke"
    )
    sweep.add_argument(
        "--servers", type=int, nargs="*", default=[],
        help="online-server axis of the grid",
    )
    sweep.add_argument(
        "--seeds", type=int, nargs="*", default=[],
        help="seed axis of the grid",
    )
    sweep.add_argument(
        "--days", type=int, nargs="*", default=[],
        help="measurement-days axis of the grid",
    )
    sweep.add_argument(
        "--full-reports", action="store_true",
        help="compute every figure report inside each worker (slower)",
    )
    sweep.add_argument("--json", metavar="PATH", help="write all summaries as JSON")

    store = commands.add_parser(
        "store", help="inspect or convert stored monitor logs"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    stats = store_commands.add_parser("stats", help="summarize a stored log")
    stats.add_argument("path", help="log file (.jsonl, .sqlite or .db)")
    stats.add_argument(
        "--kind", choices=("hydra", "bitswap"), default="hydra",
        help="which log type the file holds",
    )
    convert = store_commands.add_parser(
        "convert", help="convert a log between storage formats"
    )
    convert.add_argument("source", help="existing log file")
    convert.add_argument("destination", help="target log file (format by suffix)")
    convert.add_argument(
        "--kind", choices=("hydra", "bitswap"), default="hydra",
        help="which log type the files hold",
    )

    crawl = commands.add_parser(
        "crawl", parents=[exec_options],
        help="crawl a freshly bootstrapped overlay",
    )
    crawl.add_argument("--servers", type=int, default=500)
    crawl.add_argument("--crawls", type=int, default=2)
    crawl.add_argument("--timeout", type=float, default=180.0)
    crawl.add_argument("--seed", type=int, default=2023)

    obs_cmd = commands.add_parser("obs", help="observability tooling")
    obs_commands = obs_cmd.add_subparsers(dest="obs_command", required=True)
    # Shared output flags (one definition, used as an argparse parent by
    # report and audit — exactly like _exec_options for the run commands).
    obs_output = argparse.ArgumentParser(add_help=False)
    obs_output.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    obs_report = obs_commands.add_parser(
        "report", parents=[obs_output],
        help="render a saved metrics snapshot or sketch snapshot — the "
        "same renderer serves batch files and a live /sketches endpoint",
    )
    obs_report.add_argument(
        "path",
        help="metrics/sketches file (.jsonl, .sqlite, .db or .json) or a "
        "live control-plane URL (http://host:port[/sketches])",
    )
    obs_report.add_argument(
        "--top", type=int, metavar="N",
        help="only the N busiest entries per section (by count)",
    )
    obs_report.add_argument(
        "--watch", type=float, metavar="SECONDS",
        help="re-render every SECONDS (live view; stops when the "
        "endpoint goes away or on Ctrl-C)",
    )
    obs_serve = obs_commands.add_parser(
        "serve", parents=[exec_options],
        help="run a campaign under the live control plane: dashboard at "
        "/, JSON at /status /metrics /sketches, graceful stop at /stop",
    )
    obs_serve.add_argument(
        "--addr", default="127.0.0.1:8377", metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:8377; host:0 picks a free port)",
    )
    obs_serve.add_argument(
        "--preset", choices=("smoke", "default", "paper-horizon"), default="smoke"
    )
    obs_serve.add_argument("--servers", type=int, help="online DHT servers (overrides preset)")
    obs_serve.add_argument("--days", type=int, help="measurement days (overrides preset)")
    obs_serve.add_argument("--seed", type=int, help="override the scenario seed")
    obs_serve.add_argument(
        "--metrics", action="store_true",
        help="also collect and publish the metrics snapshot on /metrics",
    )
    obs_serve.add_argument(
        "--sketches-out", metavar="PATH",
        help="write the final sketch snapshot JSON to PATH",
    )
    obs_serve.add_argument(
        "--announce", metavar="FILE",
        help="write the bound URL to FILE once serving (lets scripts "
        "discover an OS-assigned port)",
    )
    obs_serve.add_argument(
        "--hold", action="store_true",
        help="keep serving the final snapshot after the campaign "
        "completes, until /stop is requested",
    )
    obs_audit = obs_commands.add_parser(
        "audit", parents=[obs_output],
        help="replay a trace stream and check protocol invariants",
    )
    obs_audit.add_argument("path", help="trace file (.trace, .jsonl, .sqlite or .db)")
    obs_export = obs_commands.add_parser(
        "trace-export", help="export a trace for external viewers"
    )
    obs_export.add_argument("path", help="trace file (.trace, .jsonl, .sqlite or .db)")
    obs_export.add_argument(
        "--perfetto", metavar="OUT", required=True,
        help="write Chrome trace-event JSON (open in ui.perfetto.dev)",
    )

    workload_cmd = commands.add_parser(
        "workload", help="inspect workload specs (see repro.workload)"
    )
    workload_commands = workload_cmd.add_subparsers(
        dest="workload_command", required=True
    )
    # Shared spec/output flags (argparse parent, like obs_output above).
    workload_common = argparse.ArgumentParser(add_help=False)
    workload_common.add_argument(
        "spec",
        help="workload spec string: closed, or zipf:users=1e6,s=1.05,...",
    )
    workload_common.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    workload_commands.add_parser(
        "describe", parents=[workload_common],
        help="print a spec's derived calibration numbers",
    )
    workload_sample = workload_commands.add_parser(
        "sample", parents=[workload_common],
        help="dry-run a spec against a synthetic catalog and print the "
        "sampled shapes (volume, diurnal curve, shares) — no campaign",
    )
    workload_sample.add_argument(
        "--hours", type=int, default=24, help="hours to sample (default 24)"
    )
    workload_sample.add_argument(
        "--seed", type=int, default=2023, help="driver seed (default 2023)"
    )

    detect = commands.add_parser(
        "detect", help="attack detection over stored campaign logs"
    )
    detect_commands = detect.add_subparsers(dest="detect_command", required=True)
    detect_score = detect_commands.add_parser(
        "score",
        help="run the packaged detectors over a stored campaign and score "
        "them against the persisted attack ground truth",
    )
    detect_score.add_argument(
        "storage",
        help="campaign storage: the directory, or the spec it was run with "
        "(sqlite:DIR, jsonl:DIR, sharded:N:sqlite:DIR)",
    )
    detect_score.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="feature-window length (default: one campaign tick, 21600s)",
    )
    detect_score.add_argument(
        "--grace", type=float, default=None, metavar="SECONDS",
        help="post-window slack when matching alerts to attack windows "
        "(default: one feature window)",
    )
    detect_score.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    detect_commands.add_parser(
        "attacks", help="list the attack scenarios and their spec knobs"
    )

    commands.add_parser("table1", help="print the paper's Table 1 counting example")
    return parser


def _config_from_args(args) -> ScenarioConfig:
    if args.preset == "smoke":
        config = ScenarioConfig.smoke()
    elif args.preset == "paper-horizon":
        config = ScenarioConfig.paper_horizon()
    else:
        config = ScenarioConfig()
    if args.servers:
        config = config.scaled(args.servers)
    if args.days:
        import dataclasses

        config = dataclasses.replace(config, days=args.days)
    if args.seed is not None:
        import dataclasses

        config = dataclasses.replace(
            config,
            seed=args.seed,
            profile=dataclasses.replace(config.profile, seed=args.seed),
        )
    if getattr(args, "storage", "memory") not in (None, "memory"):
        import dataclasses

        config = dataclasses.replace(config, storage=args.storage)
    if getattr(args, "engine", "auto") != "auto":
        import dataclasses

        config = dataclasses.replace(config, engine=args.engine)
    if getattr(args, "workers", 1) > 1:
        import dataclasses

        config = dataclasses.replace(config, workers=args.workers)
    if getattr(args, "metrics", False) or getattr(args, "metrics_out", None):
        import dataclasses

        config = dataclasses.replace(config, metrics=True)
    if getattr(args, "trace", False) or getattr(args, "trace_out", None):
        import dataclasses

        config = dataclasses.replace(
            config,
            trace=True,
            trace_sample=max(1, getattr(args, "trace_sample", 1)),
            trace_out=getattr(args, "trace_out", None),
        )
    if getattr(args, "progress", False):
        import dataclasses

        config = dataclasses.replace(config, progress=True)
    if (
        getattr(args, "stream", False)
        or getattr(args, "sketches_out", None)
        or getattr(args, "live", None)
    ):
        import dataclasses

        config = dataclasses.replace(
            config,
            stream=True,
            sketches_out=getattr(args, "sketches_out", None),
            live=getattr(args, "live", None),
        )
    if getattr(args, "workload", "closed") not in (None, "closed"):
        import dataclasses

        from repro.workload import parse_workload_spec

        # Parse now so a malformed spec fails before the world is built.
        spec = parse_workload_spec(args.workload)
        config = dataclasses.replace(config, workload_spec=spec.to_string())
    if getattr(args, "attack", None):
        import dataclasses

        from repro.attack import parse_attack_spec

        config = dataclasses.replace(
            config, attacks=tuple(parse_attack_spec(spec) for spec in args.attack)
        )
    if getattr(args, "detect", False) or getattr(args, "detect_window", None):
        import dataclasses

        config = dataclasses.replace(config, detect=True)
        if getattr(args, "detect_window", None):
            config = dataclasses.replace(config, detect_window=args.detect_window)
    return config


def _print_report(name: str, payload) -> None:
    print(f"\n## {name}")
    if isinstance(payload, dict):
        for key, value in payload.items():
            if isinstance(value, dict) and value and all(
                isinstance(v, (int, float)) for v in value.values()
            ):
                print(bar_chart(value, f"{key}:", limit=8))
            elif isinstance(value, float):
                print(f"  {key}: {value:.3f}")
            elif isinstance(value, (int, str)):
                print(f"  {key}: {value}")


def _run_campaign_command(args) -> int:
    try:
        config = _config_from_args(args)
    except ValueError as exc:  # malformed --attack / --workload spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"running campaign: {config.profile.online_servers} servers, "
        f"{config.days} days, {config.num_crawls} crawls..."
    )
    result = run_campaign(config)
    for error in result.exec_errors:
        print(f"warning: {error}", file=sys.stderr)
    for figure in args.figures:
        _print_report(figure, _REPORT_FUNCTIONS[figure](result))
    if args.render:
        from repro.scenario.figures import render

        for figure in args.render:
            print()
            print(render(result, figure))
    if args.export:
        from repro.core.datasets import export_campaign

        counts = export_campaign(result, args.export)
        print(f"\nexported to {args.export}:")
        for artifact, count in counts.items():
            print(f"  {artifact}: {count}")
    if result.attack_summary is not None:
        print("\n## attacks")
        for name, stats in result.attack_summary.items():
            details = ", ".join(f"{key} {value:g}" for key, value in stats.items())
            print(f"  {name}: {details}")
    if result.detection is not None:
        from repro.detect import render_scorecard

        print("\n## detection")
        print(render_scorecard(result.detection))
    if result.metrics is not None:
        from repro.obs import render_report, write_metrics

        if args.metrics_out:
            count = write_metrics(result.metrics, args.metrics_out)
            print(f"\nmetrics: {count} records -> {args.metrics_out}")
        print("\n## metrics")
        print(render_report(result.metrics))
    if result.trace is not None:
        if result.trace_path:
            print(f"\ntrace: {len(result.trace)} records -> {result.trace_path}")
        else:
            print(f"\ntrace: {len(result.trace)} records (use --trace-out to persist)")
    if result.sketches is not None:
        from repro.obs import render_stream_report

        if result.stopped_early:
            print("\ncampaign stopped early via /stop", file=sys.stderr)
        if result.sketches_path:
            print(f"\nsketches -> {result.sketches_path}")
        print("\n## streaming sketches")
        print(render_stream_report(result.sketches))
    return 0


def _run_sweep_command(args) -> int:
    from repro.exec.sweep import run_sweep, sweep_grid

    if args.preset == "smoke":
        base = ScenarioConfig.smoke()
    elif args.preset == "paper-horizon":
        base = ScenarioConfig.paper_horizon()
    else:
        base = ScenarioConfig()
    configs = sweep_grid(base, servers=args.servers, seeds=args.seeds, days=args.days)
    print(
        f"sweep: {len(configs)} campaign(s), {args.workers} worker(s), "
        f"preset {args.preset}"
    )
    outcome = run_sweep(
        configs,
        workers=args.workers,
        full_reports=args.full_reports,
        storage_spec=None if args.storage == "memory" else args.storage,
    )
    header = f"{'servers':>8} {'days':>5} {'seed':>6} {'crawls':>7} {'discovered':>11} {'an_cloud':>9} {'gip_cloud':>10} {'dht_msgs':>9}"
    print(header)
    for config, summary in zip(outcome.configs, outcome.summaries):
        if summary is None:
            print(
                f"{config.profile.online_servers:>8} {config.days:>5} "
                f"{config.seed:>6}  FAILED"
            )
            continue
        stats = summary["crawl_stats"]
        print(
            f"{summary['servers']:>8} {summary['days']:>5} {summary['seed']:>6} "
            f"{int(stats['num_crawls']):>7} {stats['avg_discovered']:>11.1f} "
            f"{summary['an_cloud_share']:>9.3f} {summary['gip_cloud_share']:>10.3f} "
            f"{summary['dht_messages']:>9}"
        )
    for error in outcome.errors:
        print(f"error: {error}", file=sys.stderr)
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(outcome.summaries, handle, default=str, indent=2)
        print(f"summaries written to {args.json}")
    return 1 if outcome.num_failed else 0


def _run_crawl_command(args) -> int:
    import random

    from repro.core.crawler import CrawlDataset, DHTCrawler, execute_crawl_task
    from repro.exec.engine import run_tasks
    from repro.netsim.network import Overlay
    from repro.store import parse_spec
    from repro.world.population import build_world

    try:
        spec = parse_spec(args.storage)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    world = build_world(WorldProfile(online_servers=args.servers, seed=args.seed))
    overlay = Overlay(world)
    overlay.bootstrap()
    crawler = DHTCrawler(overlay, timeout=args.timeout, rng=random.Random(args.seed))
    # The overlay is frozen between crawls, so all tasks can be captured
    # up front and fanned out over the pool (inline when --workers 1).
    tasks = [crawler.task(crawl_id) for crawl_id in range(args.crawls)]
    snapshots, errors = run_tasks(execute_crawl_task, tasks, workers=args.workers)
    for snapshot in snapshots:
        if snapshot is None:
            continue
        print(
            f"crawl {snapshot.crawl_id}: discovered {snapshot.num_discovered}, "
            f"crawlable {snapshot.num_crawlable}, "
            f"duration {snapshot.duration:.0f}s, "
            f"requests {snapshot.requests_sent}"
        )
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not spec.is_memory:
        from repro.core.datasets import write_crawl_csv, write_crawl_jsonl

        directory = Path(spec.path)
        directory.mkdir(parents=True, exist_ok=True)
        dataset = CrawlDataset(snapshots=[s for s in snapshots if s is not None])
        rows = write_crawl_jsonl(dataset, directory / "crawls.jsonl")
        write_crawl_csv(dataset, directory / "crawls.csv")
        print(f"wrote {rows} observation rows to {directory}/crawls.jsonl (+ .csv)")
    return 1 if errors else 0


def _run_obs_command(args) -> int:
    if args.obs_command == "serve":
        return _run_obs_serve(args)
    if args.obs_command == "report":
        return _run_obs_report(args)
    if not Path(args.path).exists():
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    if args.obs_command == "audit":
        from repro.obs import audit_trace, read_trace

        report = audit_trace(read_trace(args.path))
        if args.format == "json":
            import json
            from dataclasses import asdict

            # ``ok`` is a property, so asdict() alone would drop the one
            # field scripts branch on.
            print(json.dumps({"ok": report.ok, **asdict(report)}, indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.ok else 1
    # trace-export
    from repro.obs import read_trace, write_chrome_trace

    count = write_chrome_trace(read_trace(args.path), args.perfetto)
    print(f"wrote {count} trace events -> {args.perfetto} (open in ui.perfetto.dev)")
    return 0


def _load_obs_snapshot(path: str):
    """Load a metrics or sketch snapshot from a file or a live URL."""
    if path.startswith(("http://", "https://")):
        from urllib.parse import urlparse

        from repro.obs.serve import fetch_json

        # A bare control-plane URL means the sketches endpoint.
        if urlparse(path).path.rstrip("/") in ("", "/"):
            path = path.rstrip("/") + "/sketches"
        return fetch_json(path)
    from repro.obs import read_metrics

    return read_metrics(path)


def _render_obs_snapshot(args, snapshot) -> None:
    from repro.obs.stream import SKETCHES_SCHEMA, render_stream_report

    if snapshot.get("schema") == SKETCHES_SCHEMA:
        if args.format == "json":
            import json

            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_stream_report(snapshot))
        return
    from repro.obs import render_report

    if args.format == "json":
        import json

        print(json.dumps(_top_snapshot(snapshot, args.top), indent=2, sort_keys=True))
    else:
        print(render_report(snapshot, top=args.top))


def _run_obs_report(args) -> int:
    import time
    from urllib.error import URLError

    is_url = args.path.startswith(("http://", "https://"))
    if not is_url and not Path(args.path).exists():
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    if not args.watch:
        _render_obs_snapshot(args, _load_obs_snapshot(args.path))
        return 0
    interval = max(0.1, args.watch)
    try:
        while True:
            try:
                snapshot = _load_obs_snapshot(args.path)
            except (URLError, OSError) as exc:
                print(f"endpoint gone ({exc}); stopping watch", file=sys.stderr)
                return 0
            if sys.stdout.isatty():
                print("\x1b[H\x1b[2J", end="")
            _render_obs_snapshot(args, snapshot)
            print(f"-- watching {args.path} every {interval:g}s (Ctrl-C to stop)")
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _run_obs_serve(args) -> int:
    import dataclasses
    import time

    from repro.scenario.run import MeasurementCampaign

    config = _config_from_args(args)
    config = dataclasses.replace(
        config,
        live=args.addr,
        sketches_out=args.sketches_out,
        stream=True,
    )
    campaign = MeasurementCampaign(config)
    campaign.build()
    url = campaign.control_server.url
    if args.announce:
        announce = Path(args.announce)
        announce.parent.mkdir(parents=True, exist_ok=True)
        announce.write_text(url + "\n")
    try:
        result = campaign.run()
        if args.hold and not result.stopped_early:
            print("campaign done; holding until /stop ...", file=sys.stderr)
            while not campaign.control_server.publisher.stop_requested:
                time.sleep(0.2)
        state = "stopped early via /stop" if result.stopped_early else "done"
        print(
            f"campaign {state}: {result.sketches['events']:,} monitor events, "
            f"{len(result.crawls)} crawls"
        )
        if result.sketches_path:
            print(f"sketches -> {result.sketches_path}")
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        campaign.close_live()


def _top_snapshot(snapshot, top):
    """Apply ``--top N`` to a metrics snapshot for JSON output: keep the
    N highest-count entries per section (ties broken by name)."""
    if not top or top <= 0:
        return snapshot

    def busiest(section, rank):
        items = sorted(section.items(), key=lambda kv: (-rank(kv[1]), kv[0]))[:top]
        return dict(sorted(items))

    trimmed = dict(snapshot)
    for section, rank in (
        ("counters", lambda value: value),
        ("gauges", lambda value: value),
        ("histograms", lambda data: data["count"]),
        ("spans", lambda data: data["count"]),
    ):
        if isinstance(snapshot.get(section), dict):
            trimmed[section] = busiest(snapshot[section], rank)
    return trimmed


def _run_store_command(args) -> int:
    from repro.store import BITSWAP_CODEC, HYDRA_CODEC, EventLog, open_file_backend

    codec = HYDRA_CODEC if args.kind == "hydra" else BITSWAP_CODEC
    # Opening a sqlite/jsonl backend creates the file, so a typo'd path
    # would silently report an empty log; reject missing inputs first.
    source = args.source if args.store_command == "convert" else args.path
    if not Path(source).exists():
        print(f"error: no such log file: {source}", file=sys.stderr)
        return 2
    if args.store_command == "convert":
        from repro.core.datasets import convert_log

        copied = convert_log(args.source, args.destination, codec)
        print(f"converted {copied} {args.kind} records -> {args.destination}")
        return 0

    log = EventLog(codec, open_file_backend(args.path))
    print(f"{args.kind} log at {args.path}: {len(log)} records")
    if args.kind == "hydra":
        from repro.core.traffic import summarize_traffic

        summary = summarize_traffic(log)
        print(f"  unique peer IDs: {len(summary.peerid_volumes)}")
        print(f"  unique IPs: {len(summary.ip_volumes)}")
        print(f"  unique CIDs: {summary.unique_cids}")
        if summary.first_timestamp is not None:
            span = (summary.last_timestamp - summary.first_timestamp) / 86400.0
            print(f"  time span: {span:.2f} days")
        for label, share in sorted(summary.class_shares.items()):
            print(f"  {label}: {share:.3f}")
    else:
        senders = set()
        ips = set()
        cids = set()
        for entry in log:
            senders.add(entry.sender)
            ips.add(entry.sender_ip)
            cids.add(entry.cid)
        print(f"  unique peer IDs: {len(senders)}")
        print(f"  unique IPs: {len(ips)}")
        print(f"  unique CIDs: {len(cids)}")
    return 0


def _sniff_campaign_logs(directory: Path):
    """Infer a campaign directory's storage spec and stored log set.

    ``campaign_stores`` lays logs out as ``<dir>/<name>.<suffix>`` (or
    ``<name>-shardN.<suffix>`` for parallel runs), so the files
    themselves carry the backend kind, shard count and which logs
    exist — no flags needed to re-open them for scoring.
    """
    for kind, suffix in (("sqlite", "sqlite"), ("jsonl", "jsonl")):
        if (directory / f"hydra.{suffix}").exists():
            shards = 1
        elif (directory / f"hydra-shard0.{suffix}").exists():
            shards = len(list(directory.glob(f"hydra-shard*.{suffix}")))
        else:
            continue
        names = ["hydra"]
        for name in ("bitswap", "attack"):
            if (directory / f"{name}.{suffix}").exists() or (
                directory / f"{name}-shard0.{suffix}"
            ).exists():
                names.append(name)
        if shards == 1:
            return f"{kind}:{directory}", tuple(names)
        return f"sharded:{shards}:{kind}:{directory}", tuple(names)
    raise ValueError(
        f"no campaign logs (hydra.sqlite/.jsonl or hydra-shard0.*) under {directory}"
    )


def _run_detect_command(args) -> int:
    if args.detect_command == "attacks":
        import dataclasses

        from repro.attack import ATTACK_TYPES

        print("attack scenarios (use with 'repro campaign --attack NAME[:k=v,...]'):")
        for name in sorted(ATTACK_TYPES):
            config_type = ATTACK_TYPES[name]
            knobs = ", ".join(
                f"{field.name}={field.default}"
                for field in dataclasses.fields(config_type)
            )
            print(f"  {name}")
            print(f"    {knobs}")
        return 0
    # score
    from repro.attack.ground_truth import load_ground_truth
    from repro.detect import run_detection
    from repro.store import (
        BITSWAP_CODEC,
        HYDRA_CODEC,
        EventLog,
        campaign_stores,
        parse_spec,
    )

    try:
        if Path(args.storage).is_dir():
            directory = Path(args.storage)
        else:
            parsed = parse_spec(args.storage)
            if not parsed.on_disk:
                raise ValueError(
                    f"detect score needs an on-disk campaign store: {args.storage!r}"
                )
            directory = Path(parsed.path)
        spec, names = _sniff_campaign_logs(directory)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stores = campaign_stores(spec, names=names)
    hydra = EventLog(HYDRA_CODEC, stores["hydra"])
    bitswap = (
        EventLog(BITSWAP_CODEC, stores["bitswap"]) if "bitswap" in stores else ()
    )
    ground_truth = None
    if "attack" in stores:
        ground_truth = load_ground_truth(stores["attack"])
    else:
        print(
            "warning: no attack log in the store — scoring without ground "
            "truth (every alert counts as a false positive)",
            file=sys.stderr,
        )
    kwargs = {}
    if args.window is not None:
        kwargs["window_seconds"] = args.window
    if args.grace is not None:
        kwargs["grace"] = args.grace
    card = run_detection(hydra, bitswap, ground_truth=ground_truth, **kwargs)
    if args.format == "json":
        import json

        print(json.dumps(card.to_dict(), indent=2, sort_keys=True))
    else:
        print(card.render())
    return 0


def _run_workload_command(args) -> int:
    from repro.workload import describe_workload, parse_workload_spec, sample_workload

    try:
        spec = parse_workload_spec(args.spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.workload_command == "describe":
        payload = describe_workload(spec)
    else:  # sample
        if spec.model == "closed":
            print(
                "error: the closed model has no session sampler; "
                "pass a zipf:... spec",
                file=sys.stderr,
            )
            return 2
        payload = sample_workload(spec, seed=args.seed, hours=args.hours)
    if args.format == "json":
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"workload {spec.to_string()}")
    for key, value in payload.items():
        if isinstance(value, dict):
            print(f"  {key}:")
            for sub_key, sub_value in value.items():
                rendered = (
                    f"{sub_value:.4f}" if isinstance(sub_value, float) else sub_value
                )
                print(f"    {sub_key}: {rendered}")
        elif isinstance(value, list):
            preview = ", ".join(str(entry) for entry in value[:24])
            print(f"  {key}: [{preview}{', ...' if len(value) > 24 else ''}]")
        elif isinstance(value, float):
            print(f"  {key}: {value:.4f}")
        else:
            print(f"  {key}: {value}")
    return 0


def _run_table1_command() -> int:
    from repro.core.counting import CrawlRow, a_n_counts, g_ip_counts
    from repro.ids.peerid import PeerID

    p1, p2 = PeerID((1).to_bytes(32, "big")), PeerID((2).to_bytes(32, "big"))
    geo = {"a1": "DE", "a2": "DE", "a3": "US", "a4": "US"}
    rows = [
        CrawlRow(1, p1, "a1"), CrawlRow(1, p1, "a2"), CrawlRow(1, p2, "a3"),
        CrawlRow(2, p2, "a2"), CrawlRow(2, p2, "a3"), CrawlRow(2, p2, "a4"),
    ]
    print("Table 1 example dataset (paper §3):")
    print("  G-IP:", g_ip_counts(rows, geo.get), "(paper: DE=2, US=2)")
    print("  A-N: ", a_n_counts(rows, geo.get), "(paper: DE=0.5, US=1)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "campaign":
        return _run_campaign_command(args)
    if args.command == "sweep":
        return _run_sweep_command(args)
    if args.command == "crawl":
        return _run_crawl_command(args)
    if args.command == "store":
        return _run_store_command(args)
    if args.command == "obs":
        return _run_obs_command(args)
    if args.command == "workload":
        return _run_workload_command(args)
    if args.command == "detect":
        return _run_detect_command(args)
    if args.command == "table1":
        return _run_table1_command()
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
