"""An Udger-like cloud-IP database.

The paper maps IP addresses to known cloud providers with the Udger IP
database; addresses absent from the database are marked non-cloud (§4).
This class offers the same interface over the synthetic block table:
longest-prefix-match lookup from IP to provider slug, ``None`` meaning
"not a known data-centre address".
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Tuple

from repro.world.ipspace import IPBlock, parse_ip


class CloudIPDatabase:
    """IP → cloud-provider lookups over sorted CIDR entries."""

    def __init__(self, blocks: Iterable[IPBlock]) -> None:
        entries: List[Tuple[int, int, str]] = []
        for block in blocks:
            if block.is_cloud:
                entries.append((block.base, block.base + block.size, block.organisation))
        entries.sort()
        self._starts = [start for start, _, _ in entries]
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, ip) -> Optional[str]:
        """Cloud-provider slug for ``ip`` (int or dotted-quad), or ``None``.

        ``None`` mirrors Udger semantics: no entry means the address is
        treated as non-cloud by the attribution pipeline.
        """
        if isinstance(ip, str):
            ip = parse_ip(ip)
        index = bisect_right(self._starts, ip) - 1
        if index < 0:
            return None
        start, end, organisation = self._entries[index]
        if start <= ip < end:
            return organisation
        return None

    def is_cloud(self, ip) -> bool:
        """Whether ``ip`` belongs to a known cloud provider."""
        return self.lookup(ip) is not None

    def providers(self) -> List[str]:
        """All provider slugs present in the database."""
        return sorted({organisation for _, _, organisation in self._entries})
