"""A MaxMind GeoLite2-like geolocation database.

Maps IP addresses to ISO country codes with the same
longest-prefix-match semantics the paper uses for node geolocation (§4).
Operates entirely offline on the synthetic block table, exactly as the
paper queried a local GeoLite2 copy (Appendix A).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Tuple

from repro.world.ipspace import IPBlock, parse_ip


class GeoIPDatabase:
    """IP → country lookups over sorted CIDR entries."""

    def __init__(self, blocks: Iterable[IPBlock]) -> None:
        entries: List[Tuple[int, int, str]] = sorted(
            (block.base, block.base + block.size, block.country) for block in blocks
        )
        self._starts = [start for start, _, _ in entries]
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, ip) -> Optional[str]:
        """ISO country code for ``ip`` (int or dotted-quad), or ``None``
        for addresses outside every known block."""
        if isinstance(ip, str):
            ip = parse_ip(ip)
        index = bisect_right(self._starts, ip) - 1
        if index < 0:
            return None
        start, end, country = self._entries[index]
        if start <= ip < end:
            return country
        return None

    def countries(self) -> List[str]:
        """All country codes present in the database."""
        return sorted({country for _, _, country in self._entries})
