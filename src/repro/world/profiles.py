"""Paper-calibrated distributions.

Two things live here:

* :class:`PaperCalibration` — every quantitative target the paper reports,
  with section/figure references.  Benchmarks print measured-vs-paper from
  this single source of truth.
* :class:`WorldProfile` — the *generative* parameters of the synthetic
  world (who hosts where, how nodes churn and rotate IPs, who publishes
  and requests content).  The profile encodes the paper's explanation of
  its own findings — stable cloud core, churning IP-rotating residential
  fringe — and the measurement pipeline re-derives the findings from the
  simulated behaviour.

The joint (organisation, country) distribution of DHT servers is fitted
with iterative proportional fitting (IPF) so that both the provider
marginal (Fig. 5) and the country marginal (Fig. 6) match the paper while
keeping plausible provider→country affinities (Hetzner→DE/FI, OVH→FR/CA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple


# ---------------------------------------------------------------------------
# Paper targets (single source of truth for EXPERIMENTS.md comparisons)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PaperCalibration:
    """Quantities reported by the paper, keyed by section/figure."""

    # --- §3 crawl dataset ---
    num_crawls: int = 101
    avg_peers_per_crawl: float = 25771.6
    avg_crawlable_per_crawl: float = 17991.4
    unique_peer_ids: int = 53898
    unique_ips: int = 86064
    addrs_per_peer: float = 1.82

    # --- Fig. 3 cloud status (A-N vs G-IP) ---
    an_cloud_share: float = 0.796
    an_noncloud_share: float = 0.186
    gip_cloud_share: float = 0.399
    gip_noncloud_share: float = 0.601

    # --- Fig. 5 cloud providers ---
    an_choopa_share: float = 0.293
    an_top3_share: float = 0.519
    gip_choopa_share: float = 0.138

    # --- Fig. 6 geolocation ---
    an_country_shares: Mapping[str, float] = field(
        default_factory=lambda: {"US": 0.474, "DE": 0.137, "KR": 0.052}
    )
    an_non_top10_share: float = 0.133
    gip_country_shares: Mapping[str, float] = field(
        default_factory=lambda: {"US": 0.330, "CN": 0.111, "DE": 0.080}
    )
    gip_non_top10_share: float = 0.229

    # --- Fig. 7 degree distribution ---
    in_degree_p90_max: float = 500.0
    in_degree_typical_max: float = 200.0

    # --- Fig. 8 resilience ---
    random_removal_lcc_at_90pct: float = 0.96
    targeted_removal_partition_point: float = 0.60

    # --- §5 traffic headline ---
    total_messages: int = 290_000_000
    download_share: float = 0.57
    advertisement_share: float = 0.40
    other_share: float = 0.03
    hydra_capture_rate: float = 0.04

    # --- Fig. 10 peer ID Pareto ---
    top5pct_peerid_traffic_share: float = 0.97
    gateway_dht_traffic_share: float = 0.01
    gateway_bitswap_traffic_share: float = 0.18

    # --- Fig. 11 IP Pareto ---
    top5pct_ip_traffic_share: float = 0.94
    cloud_dht_traffic_share: float = 0.85
    cloud_bitswap_traffic_share: float = 0.42

    # --- Fig. 12 cloud per traffic type ---
    cloud_ip_count_share: float = 0.35
    cloud_ip_count_download_share: float = 0.45
    cloud_ip_count_advertisement_share: float = 0.34
    cloud_traffic_weighted_share: float = 0.93
    cloud_traffic_weighted_download_share: float = 0.98
    aws_traffic_weighted_download_share: float = 0.68

    # --- Fig. 13 platforms ---
    hydra_dht_traffic_share: float = 0.35
    hydra_download_traffic_share: float = 0.50

    # --- Fig. 14 provider classification ---
    provider_nat_share: float = 0.3557
    provider_cloud_share: float = 0.45
    provider_noncloud_share: float = 0.18
    provider_hybrid_share: float = 0.0058
    nat_relay_cloud_share: float = 0.80

    # --- Fig. 15 provider popularity ---
    top1pct_provider_record_share: float = 0.90
    records_cloud_share: float = 0.70
    records_nat_share: float = 0.08
    records_noncloud_share: float = 0.22

    # --- Fig. 16 per-CID cloud reliance ---
    cid_at_least_one_cloud: float = 0.95
    cid_majority_cloud: float = 0.91
    cid_cloud_only: float = 0.23
    cid_at_least_one_noncloud: float = 0.77

    # --- Fig. 17 DNSLink ---
    dnslink_cloudflare_share: float = 0.50
    dnslink_noncloud_share: float = 0.20
    dnslink_public_gateway_ip_share: float = 0.21

    # --- §3 / Fig. 18-19 gateways ---
    gateway_endpoints_listed: int = 83
    gateway_endpoints_functional: int = 22
    gateway_overlay_ids: int = 119

    # --- Fig. 20 ENS ---
    ens_records_with_contenthash: int = 20_600
    ens_provider_records: int = 16_800
    ens_unique_ips: int = 9_000
    ens_cloud_share: float = 0.82
    ens_us_de_share: float = 0.60


#: Module-level singleton — the calibration never changes.
PAPER = PaperCalibration()


# ---------------------------------------------------------------------------
# Iterative proportional fitting
# ---------------------------------------------------------------------------


def iterative_proportional_fit(
    seed: Dict[str, Dict[str, float]],
    row_marginals: Mapping[str, float],
    col_marginals: Mapping[str, float],
    iterations: int = 200,
    tolerance: float = 1e-9,
) -> Dict[str, Dict[str, float]]:
    """Fit a joint distribution to row and column marginals.

    Classic IPF: alternately rescale rows and columns of the seed matrix
    until both marginals hold.  Zero seed cells stay zero, which is how
    the affinity structure (e.g. "Hetzner only hosts in DE/FI") is
    preserved.  The marginals must each sum to the same total (shares
    summing to 1).
    """
    rows = list(row_marginals)
    cols = list(col_marginals)
    matrix = {row: {col: float(seed.get(row, {}).get(col, 0.0)) for col in cols} for row in rows}
    for row in rows:
        if row_marginals[row] > 0 and all(matrix[row][col] == 0.0 for col in cols):
            raise ValueError(f"row {row!r} has positive marginal but all-zero seed")
    for _ in range(iterations):
        max_error = 0.0
        for row in rows:
            total = sum(matrix[row].values())
            target = row_marginals[row]
            if total > 0:
                scale = target / total
                for col in cols:
                    matrix[row][col] *= scale
        for col in cols:
            total = sum(matrix[row][col] for row in rows)
            target = col_marginals[col]
            if total > 0:
                scale = target / total
                for row in rows:
                    matrix[row][col] *= scale
            max_error = max(max_error, abs(total - target))
        if max_error < tolerance:
            break
    return matrix


# ---------------------------------------------------------------------------
# Generative world profile
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BehaviorProfile:
    """Churn / rotation behaviour of one node class.

    :ivar mean_session_hours: mean online-session duration (exponential).
    :ivar mean_gap_hours: mean offline gap between sessions.
    :ivar ip_rotation_prob: probability of a fresh IP at each rejoin.
    :ivar peerid_regen_prob: probability of a fresh peer ID at each rejoin.
    :ivar extra_addr_probs: weights for announcing 1, 2 or 3 addresses.
    :ivar daily_ip_rotation_prob: probability of a DHCP-style address
        change per *online* day (residential lines re-lease even while
        the node keeps running).
    """

    mean_session_hours: float
    mean_gap_hours: float
    ip_rotation_prob: float
    peerid_regen_prob: float
    extra_addr_probs: Tuple[float, float, float] = (0.5, 0.3, 0.2)
    daily_ip_rotation_prob: float = 0.0

    @property
    def uptime(self) -> float:
        """Steady-state probability of being online."""
        return self.mean_session_hours / (self.mean_session_hours + self.mean_gap_hours)


#: Cloud providers in the simulated world, ordered by paper Fig. 5 rank.
CLOUD_PROVIDERS: Tuple[str, ...] = (
    "choopa",
    "vultr",
    "contabo",
    "amazon-aws",
    "digital-ocean",
    "hetzner",
    "ovh",
    "oracle",
    "google-cloud",
    "tencent",
    "alibaba",
    "linode",
    "packet-host",
    "cloudflare",
)

#: Countries modelled; a superset of every country the paper names.
COUNTRIES: Tuple[str, ...] = (
    "US", "DE", "KR", "FR", "SG", "NL", "GB", "CA", "JP", "FI",
    "CN", "RU", "IN", "BR", "PL", "AU", "SE", "IT", "ES", "UA",
)

#: Share of *online DHT servers* per organisation at a typical snapshot.
#: Cloud rows sum to the paper's 79.6 % (Fig. 3); "residential" carries the
#: non-cloud 18.6 % plus the ~1.8 % BOTH peers' non-cloud legs.
SNAPSHOT_ORG_SHARES: Dict[str, float] = {
    # Slightly above the paper's A-N targets: crawls also discover the
    # recently departed (stale bucket entries), which skew non-cloud and
    # dilute the cloud rows back down to the measured values.
    "choopa": 0.349,
    "vultr": 0.134,
    "contabo": 0.119,
    "amazon-aws": 0.082,
    "digital-ocean": 0.046,
    "hetzner": 0.036,
    "ovh": 0.027,
    "oracle": 0.018,
    "google-cloud": 0.015,
    "tencent": 0.013,
    "alibaba": 0.011,
    "linode": 0.009,
    "packet-host": 0.006,
    "residential": 0.135,
}

#: Share of online DHT servers per country at a typical snapshot (Fig. 6,
#: A-N).  Top-10 per the paper sums to 86.7 %; the tail carries 13.3 %.
SNAPSHOT_COUNTRY_SHARES: Dict[str, float] = {
    "US": 0.474,
    "DE": 0.137,
    "KR": 0.052,
    "FR": 0.040,
    "SG": 0.035,
    "NL": 0.030,
    "GB": 0.028,
    "CA": 0.025,
    "JP": 0.024,
    "FI": 0.022,
    # Non-top-10 tail (13.3 % total).
    "CN": 0.030,
    "RU": 0.020,
    "IN": 0.015,
    "BR": 0.015,
    "PL": 0.013,
    "AU": 0.012,
    "SE": 0.010,
    "IT": 0.010,
    "ES": 0.005,
    "UA": 0.003,
}

#: Seed affinities organisation → country for the IPF.  Zeros mean "this
#: provider has no presence there"; relative sizes express plausibility.
ORG_COUNTRY_SEED: Dict[str, Dict[str, float]] = {
    "choopa": {"US": 8, "DE": 1, "KR": 1.5, "SG": 0.6, "NL": 0.5, "GB": 0.4, "JP": 0.5, "FR": 0.4, "AU": 0.2},
    "vultr": {"US": 5, "DE": 1, "KR": 1, "SG": 0.7, "NL": 0.6, "GB": 0.4, "JP": 0.6, "FR": 0.5, "AU": 0.3},
    "contabo": {"DE": 6, "US": 2, "SG": 0.8, "GB": 0.4},
    "amazon-aws": {"US": 6, "DE": 1.5, "SG": 0.6, "JP": 0.6, "KR": 0.5, "GB": 0.5, "CA": 0.4, "FR": 0.4},
    "digital-ocean": {"US": 4, "DE": 1, "NL": 1, "SG": 0.8, "GB": 0.8, "CA": 0.4, "IN": 0.4},
    "hetzner": {"DE": 6, "FI": 2, "US": 0.8},
    "ovh": {"FR": 4, "CA": 2, "DE": 0.8, "GB": 0.4, "PL": 0.5},
    "oracle": {"US": 3, "KR": 1.2, "DE": 0.6, "JP": 0.6, "GB": 0.5},
    "google-cloud": {"US": 4, "DE": 0.7, "NL": 0.4, "SG": 0.4, "JP": 0.3},
    "tencent": {"CN": 4, "SG": 1, "US": 0.5},
    "alibaba": {"CN": 3, "SG": 1.5, "US": 0.5},
    "linode": {"US": 3, "DE": 0.7, "SG": 0.5, "JP": 0.4, "GB": 0.4},
    "packet-host": {"US": 3, "NL": 0.5},
    "residential": {
        "US": 5, "DE": 2, "KR": 0.6, "FR": 0.8, "NL": 0.5, "GB": 0.6, "CA": 0.6,
        "JP": 0.5, "FI": 0.3, "SG": 0.2, "CN": 0.45, "RU": 0.7, "IN": 0.5,
        "BR": 0.5, "PL": 0.4, "AU": 0.4, "SE": 0.3, "IT": 0.3, "ES": 0.2, "UA": 0.1,
    },
}

#: Country mix of the *ephemeral* residential population (short sessions,
#: rotating IPs).  Deliberately skewed to CN/RU/IN/BR — the paper explains
#: the G-IP country shift by short-lived IPs in less-represented countries.
EPHEMERAL_COUNTRY_SHARES: Dict[str, float] = {
    "CN": 0.21, "US": 0.15, "RU": 0.09, "IN": 0.08, "BR": 0.07, "DE": 0.035,
    "KR": 0.04, "FR": 0.04, "GB": 0.04, "PL": 0.05, "UA": 0.03, "IT": 0.03,
    "ES": 0.03, "SE": 0.025, "AU": 0.025, "NL": 0.015, "CA": 0.015, "JP": 0.015,
    "SG": 0.005, "FI": 0.005,
}

#: Behaviour of each node class.  The stable cloud core barely churns;
#: the residential fringe churns hard and rotates IPs (paper §4/§5).
BEHAVIORS: Dict[str, BehaviorProfile] = {
    "cloud_stable": BehaviorProfile(
        mean_session_hours=6000.0,
        mean_gap_hours=90.0,
        ip_rotation_prob=0.02,
        peerid_regen_prob=0.01,
        extra_addr_probs=(0.38, 0.38, 0.24),
    ),
    "residential_stable": BehaviorProfile(
        mean_session_hours=120.0,
        mean_gap_hours=40.0,
        ip_rotation_prob=0.30,
        peerid_regen_prob=0.05,
        extra_addr_probs=(0.70, 0.25, 0.05),
        daily_ip_rotation_prob=0.03,
    ),
    "residential_ephemeral": BehaviorProfile(
        mean_session_hours=6.0,
        mean_gap_hours=42.0,
        ip_rotation_prob=0.15,
        peerid_regen_prob=0.10,
        extra_addr_probs=(0.85, 0.12, 0.03),
        daily_ip_rotation_prob=0.06,
    ),
    "hybrid": BehaviorProfile(  # peers announcing cloud AND non-cloud IPs
        mean_session_hours=2000.0,
        mean_gap_hours=200.0,
        ip_rotation_prob=0.10,
        peerid_regen_prob=0.02,
        extra_addr_probs=(0.0, 0.6, 0.4),
    ),
    "nat_client": BehaviorProfile(
        mean_session_hours=6.0,
        mean_gap_hours=42.0,
        ip_rotation_prob=0.55,
        peerid_regen_prob=0.45,
        extra_addr_probs=(0.9, 0.08, 0.02),
        daily_ip_rotation_prob=0.30,
    ),
    "platform": BehaviorProfile(
        mean_session_hours=100000.0,
        mean_gap_hours=1.0,
        ip_rotation_prob=0.0,
        peerid_regen_prob=0.0,
        extra_addr_probs=(0.4, 0.4, 0.2),
    ),
}


@dataclass(frozen=True)
class PlatformSpec:
    """A platform operator running dedicated IPFS infrastructure (§5).

    :ivar pinned_set_scale: relative size of the platform's pinned
        content set (web3.storage and nft.storage hold the lion's share
        of persistent content and dominate the advertisement traffic).
    """

    name: str
    provider: str          # cloud provider hosting the platform
    country: str
    node_count: int        # overlay nodes at default scale
    rdns_suffix: str       # reverse-DNS domain used for attribution
    role: str              # "storage" | "gateway" | "pinning" | "hydra-host"
    pinned_set_scale: float = 1.0


#: The platforms the paper identifies in its traffic analysis (Fig. 13)
#: and in-degree analysis (§4: Filebase), plus Protocol Labs' Hydras.
PLATFORMS: Tuple[PlatformSpec, ...] = (
    PlatformSpec("web3.storage", "amazon-aws", "US", 10, "web3.storage", "storage", 2.0),
    PlatformSpec("nft.storage", "amazon-aws", "US", 10, "nft.storage", "storage", 1.6),
    PlatformSpec("pinata", "amazon-aws", "US", 6, "pinata.cloud", "pinning", 0.5),
    PlatformSpec("filebase", "amazon-aws", "US", 4, "filebase.com", "pinning", 0.4),
    PlatformSpec("ipfs-bank", "packet-host", "US", 6, "ipfs-bank.io", "gateway", 0.1),
    PlatformSpec("hydra", "amazon-aws", "US", 1, "compute.amazonaws.com", "hydra-host", 0.0),
    # Heavy automated resolvers the paper could not attribute: "we were
    # not able to discover the purpose of the remaining traffic
    # originating from Amazon AWS" (§5); packet-host is jointly
    # responsible for 82 % of download volume with AWS (Fig. 12).
    PlatformSpec("aws-mystery", "amazon-aws", "US", 2, "compute.amazonaws.com", "indexer", 0.0),
    PlatformSpec("cid-scraper", "packet-host", "US", 2, "packet-host.net", "indexer", 0.0),
)


@dataclass(frozen=True)
class WorldProfile:
    """Everything the population builder needs to instantiate a world.

    :ivar online_servers: target number of online DHT servers at any time
        (the paper's network has ≈25.8 k; the default is laptop-scale).
    :ivar nat_client_ratio: NAT-ed DHT clients per online DHT server.
    :ivar days: length of the measurement campaign in simulated days.
    :ivar ephemeral_share_of_residential: fraction of the *online*
        residential population that belongs to the ephemeral class.
    :ivar hybrid_share: share of online servers announcing cloud and
        non-cloud addresses (the BOTH bar of Fig. 3).
    """

    online_servers: int = 2500
    nat_client_ratio: float = 3.2
    days: float = 38.0
    ephemeral_share_of_residential: float = 0.55
    hybrid_share: float = 0.018
    #: §9 what-if: fraction of would-be NAT clients that are publicly
    #: reachable over IPv6 and therefore join as DHT servers.  0.0
    #: reproduces the paper's IPv4/NAT reality.
    ipv6_adoption: float = 0.0
    seed: int = 2023

    org_shares: Mapping[str, float] = field(default_factory=lambda: dict(SNAPSHOT_ORG_SHARES))
    country_shares: Mapping[str, float] = field(
        default_factory=lambda: dict(SNAPSHOT_COUNTRY_SHARES)
    )
    ephemeral_country_shares: Mapping[str, float] = field(
        default_factory=lambda: dict(EPHEMERAL_COUNTRY_SHARES)
    )
    behaviors: Mapping[str, BehaviorProfile] = field(default_factory=lambda: dict(BEHAVIORS))
    platforms: Tuple[PlatformSpec, ...] = PLATFORMS

    def joint_org_country(self) -> Dict[str, Dict[str, float]]:
        """The IPF-fitted joint (organisation, country) distribution of
        online DHT servers; both marginals match the paper."""
        return iterative_proportional_fit(
            ORG_COUNTRY_SEED, dict(self.org_shares), dict(self.country_shares)
        )

    def scaled(self, online_servers: int) -> "WorldProfile":
        """The same profile at a different network size."""
        from dataclasses import replace

        return replace(self, online_servers=online_servers)

    @classmethod
    def paper_scale(cls) -> "WorldProfile":
        """The paper's network size (≈25.8 k online DHT servers)."""
        return cls(online_servers=25772)
