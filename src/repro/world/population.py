"""Sampling a node population from a :class:`WorldProfile`.

A :class:`NodeSpec` is a *physical* participant — a machine or user — with
a hosting location and a behaviour profile.  Peer IDs and IP addresses are
minted at runtime by the simulator (a spec can regenerate its peer ID and
rotate its IP, which is exactly the phenomenon the paper's counting
methodology section is about).

Population sizes are derived from steady-state arithmetic: a class that
should contribute ``s`` online nodes needs ``s / uptime`` specs, because
each spec is online with probability ``uptime = session/(session+gap)``.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.world.clouddb import CloudIPDatabase
from repro.world.geodb import GeoIPDatabase
from repro.world.ipspace import IPAllocator, IPBlock
from repro.world.profiles import BehaviorProfile, PlatformSpec, WorldProfile
from repro.world.rdns import ReverseDNS


class NodeClass(enum.Enum):
    """Behavioural class of a physical participant."""

    CLOUD_STABLE = "cloud_stable"
    RESIDENTIAL_STABLE = "residential_stable"
    RESIDENTIAL_EPHEMERAL = "residential_ephemeral"
    HYBRID = "hybrid"
    NAT_CLIENT = "nat_client"
    PLATFORM = "platform"
    GATEWAY = "gateway"

    @property
    def is_dht_server(self) -> bool:
        """Whether nodes of this class join the DHT as servers.

        Only connectable (public-IP) nodes become DHT servers (paper §2);
        NAT clients use the DHT purely as a service.
        """
        return self is not NodeClass.NAT_CLIENT

    @property
    def behavior_key(self) -> str:
        if self in (NodeClass.PLATFORM, NodeClass.GATEWAY):
            return "platform"
        return self.value


@dataclass
class NodeSpec:
    """One physical participant of the network.

    :ivar index: dense id, unique within a population.
    :ivar node_class: behavioural class.
    :ivar organisation: hosting organisation (cloud slug or ``isp-<cc>``).
    :ivar country: where the participant's addresses geolocate.
    :ivar blocks: IP blocks its addresses are drawn from (hybrids have
        one cloud and one residential block).
    :ivar behavior: churn/rotation behaviour.
    :ivar platform: operator name for platform/gateway nodes.
    :ivar activity_weight: heavy-tailed per-node traffic multiplier.
    :ivar num_addrs: how many addresses the node announces at a time.
    """

    index: int
    node_class: NodeClass
    organisation: str
    country: str
    blocks: Tuple[IPBlock, ...]
    behavior: BehaviorProfile
    platform: Optional[str] = None
    activity_weight: float = 1.0
    num_addrs: int = 1

    @property
    def is_cloud_hosted(self) -> bool:
        return any(block.is_cloud for block in self.blocks)


@dataclass
class World:
    """The built synthetic Internet plus its population."""

    profile: WorldProfile
    allocator: IPAllocator
    cloud_db: CloudIPDatabase
    geo_db: GeoIPDatabase
    rdns: ReverseDNS
    specs: List[NodeSpec]
    blocks_by_org_country: Dict[Tuple[str, str], IPBlock]

    def specs_of(self, node_class: NodeClass) -> List[NodeSpec]:
        return [spec for spec in self.specs if spec.node_class == node_class]

    @property
    def server_specs(self) -> List[NodeSpec]:
        return [spec for spec in self.specs if spec.node_class.is_dht_server]

    @property
    def nat_specs(self) -> List[NodeSpec]:
        return self.specs_of(NodeClass.NAT_CLIENT)


class PopulationBuilder:
    """Builds a :class:`World` from a :class:`WorldProfile`."""

    def __init__(self, profile: WorldProfile, rng: Optional[random.Random] = None) -> None:
        self.profile = profile
        self.rng = rng or random.Random(profile.seed)
        self.allocator = IPAllocator()
        self._blocks: Dict[Tuple[str, str], IPBlock] = {}
        self.rdns = ReverseDNS()

    # -- address blocks -----------------------------------------------------

    def _block(self, organisation: str, country: str, is_cloud: bool) -> IPBlock:
        """The (lazily allocated) block for an organisation in a country."""
        key = (organisation, country)
        if key not in self._blocks:
            prefix_len = 14 if not is_cloud else 16
            block = self.allocator.allocate_block(organisation, country, is_cloud, prefix_len)
            self._blocks[key] = block
            if organisation == "amazon-aws":
                self.rdns.register_block(block, "ec2-{ip}." + country.lower() + ".compute.amazonaws.com")
        return self._blocks[key]

    def _platform_block(self, platform: PlatformSpec) -> IPBlock:
        """A dedicated sub-range for a platform, with its own reverse DNS."""
        key = (f"platform:{platform.name}", platform.country)
        if key not in self._blocks:
            block = self.allocator.allocate_block(
                platform.provider, platform.country, is_cloud=True, prefix_len=24
            )
            self._blocks[key] = block
            self.rdns.register_block(block, "node-{ip}." + platform.rdns_suffix)
        return self._blocks[key]

    # -- sampling helpers ----------------------------------------------------

    def _weighted_choice(self, weights: Dict[str, float]) -> str:
        choices = list(weights)
        totals = [max(weights[choice], 0.0) for choice in choices]
        return self.rng.choices(choices, weights=totals, k=1)[0]

    def _num_addrs(self, behavior: BehaviorProfile) -> int:
        return self.rng.choices((1, 2, 3), weights=behavior.extra_addr_probs, k=1)[0]

    def _activity_weight(self, sigma: float = 2.2) -> float:
        """Heavy-tailed per-node activity — drives the Pareto traffic
        concentration of Figs. 10-11.

        Lognormal, normalized to mean 1 so the workload's per-class rates
        stay true expectations regardless of the tail heaviness.
        """
        return math.exp(self.rng.gauss(0.0, sigma) - sigma * sigma / 2.0)

    # -- main build ----------------------------------------------------------

    def build(self) -> World:
        profile = self.profile
        rng = self.rng
        behaviors = profile.behaviors
        joint = profile.joint_org_country()
        specs: List[NodeSpec] = []
        index = 0

        def add_spec(
            node_class: NodeClass,
            organisation: str,
            country: str,
            blocks: Tuple[IPBlock, ...],
            platform: Optional[str] = None,
            activity_sigma: float = 2.2,
        ) -> NodeSpec:
            nonlocal index
            behavior = behaviors[node_class.behavior_key]
            spec = NodeSpec(
                index=index,
                node_class=node_class,
                organisation=organisation,
                country=country,
                blocks=blocks,
                behavior=behavior,
                platform=platform,
                activity_weight=self._activity_weight(activity_sigma),
                num_addrs=self._num_addrs(behavior),
            )
            specs.append(spec)
            index += 1
            return spec

        online_target = profile.online_servers
        scale = online_target / 2500.0
        # Traffic-heterogeneity spread per class: the stable cloud core
        # participates fairly evenly; the user fringe is dominated by a
        # few heavy users amid a long silent tail (Figs. 10-11).
        class_sigma = {
            NodeClass.CLOUD_STABLE: 1.2,
            NodeClass.HYBRID: 1.2,
            NodeClass.RESIDENTIAL_STABLE: 1.8,
            NodeClass.RESIDENTIAL_EPHEMERAL: 2.6,
            NodeClass.NAT_CLIENT: 2.6,
        }
        hybrid_online = profile.hybrid_share * online_target
        residential_online = joint["residential"]
        residential_total_online = sum(residential_online.values())
        ephemeral_online = residential_total_online * profile.ephemeral_share_of_residential * online_target
        stable_resid_online = residential_total_online * (1 - profile.ephemeral_share_of_residential) * online_target

        # Cloud-stable servers: counts per (provider, country) from the IPF
        # joint, inflated by 1/uptime so the *online* population matches.
        cloud_behavior = behaviors["cloud_stable"]
        for organisation, per_country in joint.items():
            if organisation == "residential":
                continue
            for country, share in per_country.items():
                online = share * online_target
                count = _stochastic_round(online / cloud_behavior.uptime, rng)
                block = self._block(organisation, country, is_cloud=True) if count else None
                for _ in range(count):
                    add_spec(
                        NodeClass.CLOUD_STABLE, organisation, country, (block,),
                        activity_sigma=class_sigma[NodeClass.CLOUD_STABLE],
                    )

        # Stable residential servers: country mix from the IPF residential row.
        stable_behavior = behaviors["residential_stable"]
        resid_country_shares = {
            country: share / residential_total_online
            for country, share in residential_online.items()
            if share > 0
        }
        count = _stochastic_round(stable_resid_online / stable_behavior.uptime, rng)
        for _ in range(count):
            country = self._weighted_choice(resid_country_shares)
            block = self._block(f"isp-{country.lower()}", country, is_cloud=False)
            add_spec(
                NodeClass.RESIDENTIAL_STABLE, f"isp-{country.lower()}", country, (block,),
                activity_sigma=class_sigma[NodeClass.RESIDENTIAL_STABLE],
            )

        # Ephemeral residential servers: skewed country mix, hard churn.
        ephemeral_behavior = behaviors["residential_ephemeral"]
        count = _stochastic_round(ephemeral_online / ephemeral_behavior.uptime, rng)
        for _ in range(count):
            country = self._weighted_choice(dict(profile.ephemeral_country_shares))
            block = self._block(f"isp-{country.lower()}", country, is_cloud=False)
            add_spec(
                NodeClass.RESIDENTIAL_EPHEMERAL, f"isp-{country.lower()}", country, (block,),
                activity_sigma=class_sigma[NodeClass.RESIDENTIAL_EPHEMERAL],
            )

        # Hybrid (BOTH) peers: announce one cloud and one residential address.
        hybrid_behavior = behaviors["hybrid"]
        count = _stochastic_round(hybrid_online / hybrid_behavior.uptime, rng)
        for _ in range(count):
            organisation = self._weighted_choice(
                {org: share for org, share in profile.org_shares.items() if org != "residential"}
            )
            country = self._weighted_choice({c: w for c, w in joint[organisation].items() if w > 0})
            cloud_block = self._block(organisation, country, is_cloud=True)
            resid_block = self._block(f"isp-{country.lower()}", country, is_cloud=False)
            spec = add_spec(
                NodeClass.HYBRID, organisation, country, (cloud_block, resid_block),
                activity_sigma=class_sigma[NodeClass.HYBRID],
            )
            spec.num_addrs = max(spec.num_addrs, 2)

        # Platform nodes (web3.storage, nft.storage, pinata, filebase,
        # ipfs-bank, Hydra hosts): cloud, always on, very active.
        for platform in profile.platforms:
            block = self._platform_block(platform)
            count = max(1, round(platform.node_count * scale))
            for _ in range(count):
                add_spec(
                    NodeClass.PLATFORM,
                    platform.provider,
                    platform.country,
                    (block,),
                    platform=platform.name,
                    activity_sigma=0.3,
                )

        # NAT-ed DHT clients: the user-operated fringe behind NAT.  Under
        # the §9 IPv6 what-if, a fraction of them are publicly reachable
        # and join the DHT as (ephemeral residential) servers instead.
        nat_behavior = behaviors["nat_client"]
        nat_population = _stochastic_round(profile.nat_client_ratio * online_target, rng)
        for _ in range(nat_population):
            country = self._weighted_choice(dict(profile.ephemeral_country_shares))
            block = self._block(f"isp-{country.lower()}", country, is_cloud=False)
            if rng.random() < profile.ipv6_adoption:
                add_spec(
                    NodeClass.RESIDENTIAL_EPHEMERAL, f"isp-{country.lower()}", country,
                    (block,),
                    activity_sigma=class_sigma[NodeClass.NAT_CLIENT],
                )
            else:
                add_spec(
                    NodeClass.NAT_CLIENT, f"isp-{country.lower()}", country, (block,),
                    activity_sigma=class_sigma[NodeClass.NAT_CLIENT],
                )

        all_blocks = self.allocator.blocks
        return World(
            profile=profile,
            allocator=self.allocator,
            cloud_db=CloudIPDatabase(all_blocks),
            geo_db=GeoIPDatabase(all_blocks),
            rdns=self.rdns,
            specs=specs,
            blocks_by_org_country=dict(self._blocks),
        )


def _stochastic_round(value: float, rng: random.Random) -> int:
    """Round so that the expectation equals ``value`` (keeps small-count
    classes represented proportionally at small scales)."""
    floor = int(value)
    return floor + (1 if rng.random() < value - floor else 0)


def build_world(profile: Optional[WorldProfile] = None, seed: Optional[int] = None) -> World:
    """Convenience one-call world construction."""
    profile = profile or WorldProfile()
    rng = random.Random(seed if seed is not None else profile.seed)
    return PopulationBuilder(profile, rng).build()
