"""The synthetic Internet underlying the simulated IPFS network.

The paper attributes peers to cloud providers via the Udger IP database
and to countries via MaxMind GeoLite2.  This subpackage provides the
synthetic ground truth those attributions are measured against:

* :mod:`repro.world.ipspace` — IPv4 address blocks and allocation,
* :mod:`repro.world.clouddb` — an Udger-like IP→cloud-provider database,
* :mod:`repro.world.geodb` — a MaxMind-like IP→country database,
* :mod:`repro.world.rdns` — reverse-DNS entries for platform attribution,
* :mod:`repro.world.profiles` — the paper-calibrated distributions
  (cloud share, provider mix, country mix, churn behaviour),
* :mod:`repro.world.population` — sampling a node population from the
  profiles.
"""

from repro.world.clouddb import CloudIPDatabase
from repro.world.geodb import GeoIPDatabase
from repro.world.ipspace import IPAllocator, IPBlock, format_ip, parse_ip
from repro.world.population import NodeClass, NodeSpec, PopulationBuilder
from repro.world.profiles import PaperCalibration, WorldProfile
from repro.world.rdns import ReverseDNS

__all__ = [
    "CloudIPDatabase",
    "GeoIPDatabase",
    "IPAllocator",
    "IPBlock",
    "NodeClass",
    "NodeSpec",
    "PaperCalibration",
    "PopulationBuilder",
    "ReverseDNS",
    "WorldProfile",
    "format_ip",
    "parse_ip",
]
