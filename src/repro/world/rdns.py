"""Reverse DNS for platform attribution.

§5 of the paper attributes traffic to platforms (web3.storage,
nft.storage, ipfs-bank, …) by reverse DNS lookups on the logged IPs.
The simulation registers PTR-style entries per block or per address and
exposes the same ``ip -> hostname`` lookup.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.world.ipspace import IPBlock, format_ip, parse_ip


class ReverseDNS:
    """PTR records for the synthetic address space."""

    def __init__(self) -> None:
        self._block_patterns: Dict[IPBlock, str] = {}
        self._exact: Dict[int, str] = {}

    def register_block(self, block: IPBlock, pattern: str) -> None:
        """PTR entries for a whole block.

        ``pattern`` may contain ``{ip}`` which expands to the dashed
        address, e.g. ``"ec2-{ip}.compute.amazonaws.com"``.
        """
        self._block_patterns[block] = pattern

    def register_address(self, ip, hostname: str) -> None:
        """A single PTR entry, overriding any block pattern."""
        if isinstance(ip, str):
            ip = parse_ip(ip)
        self._exact[ip] = hostname

    def lookup(self, ip) -> Optional[str]:
        """The PTR hostname for ``ip``, or ``None`` (NXDOMAIN)."""
        if isinstance(ip, str):
            ip = parse_ip(ip)
        if ip in self._exact:
            return self._exact[ip]
        for block, pattern in self._block_patterns.items():
            if ip in block:
                return pattern.format(ip=format_ip(ip).replace(".", "-"))
        return None
