"""IPv4 address space modelling.

Cloud providers and residential ISPs own address blocks; the Udger-like
and MaxMind-like databases are derived from the same block table, which is
how the real databases work (they map prefixes to organisations and
locations).  Addresses are ints internally with dotted-quad rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


def parse_ip(text: str) -> int:
    """Dotted-quad string to int. Raises ValueError on malformed input."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Int to dotted-quad string."""
    if not 0 <= value < 1 << 32:
        raise ValueError(f"not a 32-bit address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class IPBlock:
    """A contiguous CIDR block owned by one organisation in one country.

    :ivar base: network address as int (low ``32 - prefix_len`` bits zero).
    :ivar prefix_len: CIDR prefix length.
    :ivar organisation: owner; cloud-provider slug or ISP name.
    :ivar country: ISO country code the block geolocates to.
    :ivar is_cloud: whether the owner is a data-centre/cloud operator.
    """

    base: int
    prefix_len: int
    organisation: str
    country: str
    is_cloud: bool

    @property
    def size(self) -> int:
        return 1 << (32 - self.prefix_len)

    def __contains__(self, ip: int) -> bool:
        return self.base <= ip < self.base + self.size

    def __str__(self) -> str:
        return f"{format_ip(self.base)}/{self.prefix_len} [{self.organisation}/{self.country}]"


class IPAllocator:
    """Carves the address space into blocks and hands out addresses.

    Blocks are laid out sequentially from ``10.0.0.0`` upward — the layout
    itself is irrelevant to the measurements; only the block→organisation
    and block→country mappings matter.
    """

    def __init__(self, start: str = "10.0.0.0") -> None:
        self._next_base = parse_ip(start)
        self._blocks: List[IPBlock] = []
        self._cursor: Dict[IPBlock, int] = {}

    @property
    def blocks(self) -> List[IPBlock]:
        return list(self._blocks)

    def allocate_block(
        self, organisation: str, country: str, is_cloud: bool, prefix_len: int = 16
    ) -> IPBlock:
        """Claim the next free block for an organisation."""
        size = 1 << (32 - prefix_len)
        # Align the base to the block size, as real CIDR allocation does.
        base = (self._next_base + size - 1) // size * size
        if base + size > 1 << 32:
            raise RuntimeError("IPv4 space exhausted in simulation")
        block = IPBlock(base, prefix_len, organisation, country, is_cloud)
        self._next_base = base + size
        self._blocks.append(block)
        self._cursor[block] = 0
        return block

    def next_address(self, block: IPBlock) -> int:
        """A fresh, never-before-assigned address from ``block``."""
        offset = self._cursor[block]
        if offset >= block.size:
            raise RuntimeError(f"block exhausted: {block}")
        self._cursor[block] = offset + 1
        return block.base + offset

    def random_address(self, block: IPBlock, rng) -> int:
        """A uniform address from ``block`` — models DHCP/NAT-pool reuse,
        where rotating clients may collide on previously seen addresses."""
        return block.base + rng.randrange(block.size)

    def iter_addresses(self, block: IPBlock) -> Iterator[int]:
        for offset in range(block.size):
            yield block.base + offset

    def find_block(self, ip: int) -> Optional[IPBlock]:
        """The block containing ``ip``, if any (linear scan; block counts
        are small — the databases build faster indexes)."""
        for block in self._blocks:
            if ip in block:
                return block
        return None
