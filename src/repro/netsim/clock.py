"""Simulated time.

Time is measured in seconds from the campaign start.  The scheduler is a
plain priority queue of timestamped callbacks; the campaign driver advances
it day by day, interleaving measurement activities (crawls, provider
fetches) at their scheduled instants.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class Clock:
    """Monotonic simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    @property
    def day(self) -> int:
        """The current simulated day index (0-based)."""
        return int(self._now // SECONDS_PER_DAY)

    def advance_to(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError(f"clock cannot move backwards: {timestamp} < {self._now}")
        self._now = timestamp


class EventScheduler:
    """A heap of (time, callback) events driving the simulation."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock or Clock()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def schedule(self, timestamp: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulated ``timestamp`` (absolute seconds)."""
        if timestamp < self.clock.now:
            raise ValueError("cannot schedule an event in the past")
        heapq.heappush(self._heap, (timestamp, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        self.schedule(self.clock.now + delay, callback)

    def schedule_many(
        self, events: List[Tuple[float, Callable[[], None]]]
    ) -> None:
        """Schedule many ``(timestamp, callback)`` pairs at once.

        Equivalent to calling :meth:`schedule` for each pair in order —
        counters are assigned in iteration order, and because every heap
        entry is totally ordered by its unique ``(timestamp, counter)``
        prefix, one ``heapify`` yields the exact pop sequence of
        element-wise pushes.  Used by the batched churn start, where
        per-push sift costs add up at 100 k+ nodes.
        """
        now = self.clock.now
        heap = self._heap
        counter = self._counter
        for timestamp, callback in events:
            if timestamp < now:
                raise ValueError("cannot schedule an event in the past")
            heap.append((timestamp, next(counter), callback))
        heapq.heapify(heap)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_event_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def run_until(self, timestamp: float) -> int:
        """Execute every event up to and including ``timestamp``.

        The clock lands exactly on ``timestamp`` afterwards.  Returns the
        number of events executed.
        """
        executed = 0
        while self._heap and self._heap[0][0] <= timestamp:
            event_time, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(event_time)
            callback()
            executed += 1
        self.clock.advance_to(timestamp)
        return executed
