"""NAT traversal: circuit relay and DCUtR hole punching.

NAT-ed providers are reachable through a relay (circuit addresses).  As of
v0.13, IPFS includes DCUtR — direct connection upgrade through a relay —
which lets two peers hole-punch a direct connection after a relayed
introduction (paper §2).  Hole-punched clients still function as DHT
clients only (§9), so this affects *data transfer*, not DHT topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.netsim.node import Node

#: Empirical success rate of libp2p hole punching (order of magnitude from
#: the libp2p DCUtR measurement campaign; exact value is not load-bearing).
DEFAULT_HOLEPUNCH_SUCCESS = 0.7


@dataclass
class ConnectionPath:
    """How a dialer ended up connected to a NAT-ed peer."""

    direct: bool          # True once DCUtR succeeded
    via_relay: Optional[Node]  # the relay used for the introduction


class DCUtR:
    """Direct-connection upgrade through a relay."""

    def __init__(self, success_prob: float = DEFAULT_HOLEPUNCH_SUCCESS, rng=None) -> None:
        self.success_prob = success_prob
        self.rng = rng or random.Random(0xDC)

    def connect(self, dialer: Node, target: Node) -> Optional[ConnectionPath]:
        """Attempt to reach a NAT-ed ``target``.

        Requires the target's relay to be online for the introduction.
        On hole-punch success the connection is direct (the relay drops
        out of the data path); otherwise traffic stays relayed.
        """
        relay = target.overlay.ensure_relay(target)
        if relay is None or not relay.online:
            return None
        if self.rng.random() < self.success_prob:
            return ConnectionPath(direct=True, via_relay=relay)
        return ConnectionPath(direct=False, via_relay=relay)
