"""Churn: session/gap processes, IP rotation, peer-ID regeneration.

The paper's central methodological point (§3/§4) is that non-cloud nodes
are short-lived and frequently change their IP addresses, which inflates
their apparent share under unique-IP counting.  This module *generates*
that behaviour: every spec alternates exponential online sessions and
offline gaps; on each rejoin it rotates its IP and/or regenerates its
peer ID with class-specific probabilities.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.netsim.clock import SECONDS_PER_HOUR
from repro.netsim.network import Overlay
from repro.netsim.node import Node
from repro.netsim.soa import MirroredRandom
from repro.world.population import NodeClass


class ChurnProcess:
    """Drives session lifecycles for every node in an overlay."""

    def __init__(self, overlay: Overlay, rng: Optional[random.Random] = None) -> None:
        self.overlay = overlay
        self.rng = rng or random.Random(overlay.world.profile.seed + 2)
        self.joins = 0
        self.leaves = 0

    def _exp_hours(self, mean_hours: float) -> float:
        return self.rng.expovariate(1.0 / mean_hours) * SECONDS_PER_HOUR

    def start(self) -> None:
        """Schedule the first transition for every spec.

        Exponential holding times are memoryless, so the *residual* time in
        the current state has the same distribution as a fresh draw — the
        steady state bootstrapped by :meth:`Overlay.bootstrap` is preserved.
        """
        if self.overlay.vectorized and self.overlay.nodes:
            self._start_batched()
            return
        for node in self.overlay.nodes:
            behavior = node.spec.behavior
            if node.online:
                delay = self._exp_hours(behavior.mean_session_hours)
                self.overlay.scheduler.schedule_in(delay, lambda n=node: self._leave(n))
            else:
                delay = self._exp_hours(behavior.mean_gap_hours)
                self.overlay.scheduler.schedule_in(delay, lambda n=node: self._join(n))

    def _start_batched(self) -> None:
        """Batched twin of :meth:`start`: one mirrored uniform per node,
        one heapify.  Bit-identical — ``expovariate(lambd)`` is
        ``-log(1.0 - random()) / lambd`` (CPython), reproduced here with
        the same ``math.log`` and the same operation order, and
        :meth:`~repro.netsim.clock.EventScheduler.schedule_many` assigns
        counters in the same order ``schedule_in`` would."""
        nodes = self.overlay.nodes
        mirror = MirroredRandom(self.rng)
        mirror.attach()
        uniforms = mirror.uniforms(len(nodes)).tolist()
        now = self.overlay.scheduler.clock.now
        log = math.log
        events = []
        append = events.append
        for position, node in enumerate(nodes):
            behavior = node.spec.behavior
            if node.online:
                mean_hours = behavior.mean_session_hours
                callback = (lambda n=node: self._leave(n))
            else:
                mean_hours = behavior.mean_gap_hours
                callback = (lambda n=node: self._join(n))
            lambd = 1.0 / mean_hours
            delay = -log(1.0 - uniforms[position]) / lambd * SECONDS_PER_HOUR
            append((now + delay, callback))
        mirror.sync_python_to(len(nodes))
        self.overlay.scheduler.schedule_many(events)

    def _leave(self, node: Node) -> None:
        if node.online:
            self.overlay.take_offline(node)
            self.leaves += 1
        delay = self._exp_hours(node.spec.behavior.mean_gap_hours)
        self.overlay.scheduler.schedule_in(delay, lambda: self._join(node))

    def _join(self, node: Node) -> None:
        if not node.online:
            behavior = node.spec.behavior
            rotate_ip = self.rng.random() < behavior.ip_rotation_prob
            regen_peer = self.rng.random() < behavior.peerid_regen_prob
            self.overlay.bring_online(node, rotate_ip=rotate_ip, regen_peer=regen_peer)
            self.joins += 1
        delay = self._exp_hours(node.spec.behavior.mean_session_hours)
        self.overlay.scheduler.schedule_in(delay, lambda: self._leave(node))


class DailyAddressRotation:
    """DHCP-style mid-session IP re-leasing.

    Residential lines change addresses even while the node stays up; this
    (together with churn) is what inflates the unique-IP counts behind
    the paper's G-IP methodology critique.
    """

    def __init__(self, overlay: Overlay, rng: Optional[random.Random] = None) -> None:
        self.overlay = overlay
        self.rng = rng or random.Random(overlay.world.profile.seed + 12)
        self.rotations = 0
        self._mirror: Optional[MirroredRandom] = None

    def start(self) -> None:
        self.overlay.scheduler.schedule_in(24 * SECONDS_PER_HOUR, self._tick)

    def _tick(self) -> None:
        if self.overlay.vectorized:
            self._tick_batched()
        else:
            for node in list(self.overlay.online_by_peer.values()):
                probability = node.spec.behavior.daily_ip_rotation_prob
                if probability > 0 and self.rng.random() < probability:
                    self.overlay.rotate_addresses(node)
                    self.rotations += 1
        self.overlay.scheduler.schedule_in(24 * SECONDS_PER_HOUR, self._tick)

    def _tick_batched(self) -> None:
        """Batched twin of the scalar ``_tick`` loop.

        The scalar loop draws one uniform per online node with a positive
        rotation probability, in registry order; rotations themselves
        touch only the allocator and the overlay RNG (never ``self.rng``),
        so pre-drawing the uniforms and then rotating the hits in the
        same order leaves every RNG stream and every allocator state
        transition bit-identical.
        """
        soa = self.overlay.soa
        indices = soa.online_indices()
        probabilities = soa.rotation_prob[indices]
        draw_mask = probabilities > 0.0
        draws = int(draw_mask.sum())
        if not draws:
            return
        if self._mirror is None:
            self._mirror = MirroredRandom(self.rng)
        mirror = self._mirror
        mirror.attach()
        uniforms = mirror.uniforms(draws)[:draws]
        hits = uniforms < probabilities[draw_mask]
        mirror.sync_python_to(draws)
        if hits.any():
            nodes = self.overlay.nodes
            for index in indices[draw_mask][hits].tolist():
                self.overlay.rotate_addresses(nodes[index])
                self.rotations += 1


class PresenceAdvertiser:
    """Periodic self-insertion for platform nodes.

    Models the modified clients (Filebase et al.) and heavily connected
    AWS nodes that the paper finds at the top of the in-degree
    distribution (§4): they keep themselves present in a large number of
    routing tables.
    """

    def __init__(
        self,
        overlay: Overlay,
        interval_hours: float = 12.0,
        attempts_per_node: int = 80,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.overlay = overlay
        self.interval_hours = interval_hours
        self.attempts_per_node = attempts_per_node
        self.rng = rng or random.Random(overlay.world.profile.seed + 3)

    def start(self) -> None:
        self.overlay.scheduler.schedule_in(
            self.interval_hours * SECONDS_PER_HOUR, self._tick
        )

    def _tick(self) -> None:
        for node in self.overlay.nodes_of_class(NodeClass.PLATFORM):
            if node.online:
                attempts = self.attempts_per_node
                if node.spec.platform == "filebase":
                    attempts *= 4  # the paper's top-in-degree modified clients
                self.overlay.advertise_presence(node, attempts)
        for node in self.overlay.nodes_of_class(NodeClass.GATEWAY):
            if node.online:
                self.overlay.advertise_presence(node, self.attempts_per_node)
        self.overlay.scheduler.schedule_in(
            self.interval_hours * SECONDS_PER_HOUR, self._tick
        )
