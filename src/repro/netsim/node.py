"""A live IPFS node in the simulation.

A :class:`Node` is the runtime incarnation of a :class:`NodeSpec`
(the physical participant).  Across its lifetime a node may go on- and
offline many times, rotate its IP addresses and even regenerate its peer
ID — the spec stays, the identifiers change.  This is the behaviour the
paper's counting-methodology analysis (§3) hinges on.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.messages import PeerInfo
from repro.kademlia.routing_table import RoutingTable
from repro.world.population import NodeClass, NodeSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import Overlay

#: Default libp2p swarm port.
DEFAULT_PORT = 4001

#: Dial-success probability per node class: the share of crawl attempts a
#: node of this class answers (connection limits, firewalls, slow links).
#: Calibrated so ≈70 % of discovered peers are crawlable (paper §3).
REACHABILITY = {
    NodeClass.CLOUD_STABLE: 0.78,
    NodeClass.RESIDENTIAL_STABLE: 0.66,
    NodeClass.RESIDENTIAL_EPHEMERAL: 0.42,
    NodeClass.HYBRID: 0.85,
    NodeClass.PLATFORM: 0.98,
    NodeClass.GATEWAY: 0.95,
    NodeClass.NAT_CLIENT: 0.0,  # never directly dialable
}

#: Median response latency (seconds) and lognormal sigma per class, for
#: the crawl-timeout ablation.  Residential links are slow and jittery.
LATENCY_PROFILE = {
    NodeClass.CLOUD_STABLE: (0.15, 0.6),
    NodeClass.RESIDENTIAL_STABLE: (1.5, 1.4),
    NodeClass.RESIDENTIAL_EPHEMERAL: (6.0, 1.8),
    NodeClass.HYBRID: (0.3, 0.8),
    NodeClass.PLATFORM: (0.08, 0.3),
    NodeClass.GATEWAY: (0.12, 0.4),
    NodeClass.NAT_CLIENT: (3.0, 1.5),
}


class OrderedCIDSet:
    """A CID set with deterministic (insertion-order) iteration.

    ``hash(bytes)`` is salted per process, so iterating or ``pop()``-ing
    a plain ``set`` of CIDs makes everything downstream — eviction, the
    reprovide passes and hence the whole campaign — depend on
    ``PYTHONHASHSEED``.  Backing the set with a dict keeps membership
    O(1) while fixing iteration to insertion order, and gives eviction a
    meaningful FIFO semantics (the oldest record expires first).
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict = {}

    def add(self, cid) -> None:
        self._items[cid] = None

    def discard(self, cid) -> None:
        self._items.pop(cid, None)

    def pop_oldest(self):
        """Remove and return the least recently added CID."""
        cid = next(iter(self._items))
        del self._items[cid]
        return cid

    def __contains__(self, cid) -> bool:
        return cid in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)


class Node:
    """Runtime state of one participant."""

    __slots__ = (
        "spec",
        "overlay",
        "peer",
        "ips",
        "port",
        "online",
        "routing_table",
        "relay",
        "reachable",
        "response_latency",
        "session_started_at",
        "sessions_seen",
        "provided_cids",
        "bitswap_neighbors_weight",
        "_addrs_cache",
        "_ip_strs_cache",
    )

    def __init__(self, spec: NodeSpec, overlay: "Overlay") -> None:
        self.spec = spec
        self.overlay = overlay
        self.peer: Optional[PeerID] = None
        self.ips: List[int] = []
        self.port = DEFAULT_PORT
        self.online = False
        self.routing_table: Optional[RoutingTable] = None
        self.relay: Optional["Node"] = None  # for NAT clients
        self.reachable = False
        self.response_latency = 0.0
        self.session_started_at = 0.0
        self.sessions_seen = 0
        self.provided_cids = OrderedCIDSet()
        # Relative likelihood of holding a Bitswap connection to any given
        # peer; gateways/platforms keep hundreds of connections.
        self.bitswap_neighbors_weight = 1.0
        self._addrs_cache: Optional[List[Multiaddr]] = None
        self._ip_strs_cache: Optional[List[str]] = None

    # -- identity -----------------------------------------------------------

    @property
    def node_class(self) -> NodeClass:
        return self.spec.node_class

    @property
    def is_dht_server(self) -> bool:
        return self.spec.node_class.is_dht_server

    def mint_peer_id(self, rng) -> PeerID:
        """Generate and adopt a fresh peer ID (new key pair)."""
        self.peer = PeerID.generate(rng)
        self._addrs_cache = None
        return self.peer

    def invalidate_addr_cache(self) -> None:
        """Drop the memoized multiaddr list (peer ID or IPs changed)."""
        self._addrs_cache = None
        self._ip_strs_cache = None

    def sample_session_traits(self, rng) -> None:
        """Draw this session's reachability and latency."""
        self.reachable = rng.random() < REACHABILITY[self.node_class]
        median, sigma = LATENCY_PROFILE[self.node_class]
        self.response_latency = median * pow(2.718281828, rng.gauss(0.0, sigma))

    # -- addressing -----------------------------------------------------------

    def multiaddrs(self) -> List[Multiaddr]:
        """The addresses this node currently announces.

        NAT clients announce circuit addresses through their relay; public
        nodes announce one direct address per IP.
        """
        if self.peer is None:
            return []
        if self.node_class is NodeClass.NAT_CLIENT:
            # Circuit addresses embed the relay's *current* address, which
            # can change behind our back (relay DHCP re-lease) — never
            # cached.
            if self.relay is None or self.relay.peer is None:
                return []
            relay = self.relay
            return [
                Multiaddr.circuit(relay.primary_ip_str, relay.port, relay.peer, self.peer)
            ]
        cached = self._addrs_cache
        if cached is None:
            from repro.world.ipspace import format_ip

            cached = [
                Multiaddr.direct(format_ip(ip), self.port, self.peer) for ip in self.ips
            ]
            self._addrs_cache = cached
        return list(cached)

    def ip_strs(self) -> List[str]:
        """Dotted-quad strings for ``ips``, memoized per address set.

        The Hydra/Bitswap capture paths format a sender address per
        logged message; caching the formatted list (invalidated together
        with the multiaddr cache) removes that per-message cost.  RNG
        note: ``rng.choice(node.ip_strs())`` draws on indexes only, so it
        is bit-identical to ``format_ip(rng.choice(node.ips))``.
        """
        cached = self._ip_strs_cache
        if cached is None:
            from repro.world.ipspace import format_ip

            cached = [format_ip(ip) for ip in self.ips]
            self._ip_strs_cache = cached
        return cached

    @property
    def primary_ip(self) -> Optional[int]:
        return self.ips[0] if self.ips else None

    @property
    def primary_ip_str(self) -> str:
        if not self.ips:
            raise ValueError("node has no address")
        return self.ip_strs()[0]

    def peer_info(self) -> PeerInfo:
        if self.peer is None:
            raise ValueError("node has no peer ID (offline?)")
        return PeerInfo(peer=self.peer, addrs=tuple(self.multiaddrs()))

    # -- DHT server handlers --------------------------------------------------

    def handle_find_node(self, target_key: int, k: int = 20) -> List[PeerInfo]:
        """FIND_NODE: the k closest peers to ``target_key`` in our table."""
        if self.routing_table is None:
            return []
        peers = self.routing_table.closest(target_key, k)
        return self.overlay.peer_infos(peers)

    def handle_get_providers(self, cid, k: int = 20):
        """GET_PROVIDERS: provider records if we are a resolver for the CID,
        plus closer peers from our table."""
        records = self.overlay.provider_records_at(self, cid)
        closer = self.handle_find_node(cid.dht_key, k)
        return records, closer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "online" if self.online else "offline"
        return f"<Node #{self.spec.index} {self.spec.node_class.value} {state}>"
