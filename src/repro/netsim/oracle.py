"""A sorted index over the online DHT-server keyspace.

Several simulation steps need "the k XOR-closest online servers to a key":
provider-record placement, routing-table construction and refresh.  Running
a full iterative walk for each would be prohibitively slow at network
scale, and — crucially — the *result* of a healthy Kademlia walk is exactly
the set this index returns.  The exact walk remains available in
:mod:`repro.kademlia.lookup` and is used by the measurement code paths
(crawler, provider fetcher); the oracle is the fast path for *network-side*
behaviour.  DESIGN.md documents this substitution.

The XOR-closest query (shared with :func:`repro.ids.keys.select_closest`)
exploits a property of the metric: the k closest keys to a target all lie
inside the smallest *aligned binary subtree* (prefix range) around the
target containing at least k keys, and prefix ranges are contiguous in
sorted order.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Tuple

from repro.ids.keys import KEY_BITS, select_closest
from repro.ids.peerid import PeerID


class KeyspaceOracle:
    """Sorted (dht_key, peer) index of online DHT servers."""

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._by_key: Dict[int, PeerID] = {}
        #: bumped on every membership change; callers may cache query
        #: results keyed on this counter (e.g. per-CID resolver sets).
        self.generation = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, peer: PeerID) -> bool:
        return self._by_key.get(peer.dht_key) == peer

    def add(self, peer: PeerID) -> None:
        key = peer.dht_key
        if key in self._by_key:
            if self._by_key[key] != peer:
                raise ValueError("DHT key collision between distinct peers")
            return
        self._by_key[key] = peer
        insort(self._keys, key)
        self.generation += 1

    def remove(self, peer: PeerID) -> None:
        key = peer.dht_key
        if self._by_key.get(key) != peer:
            return
        del self._by_key[key]
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]
        self.generation += 1

    def peers(self) -> List[PeerID]:
        return [self._by_key[key] for key in self._keys]

    def closest(self, target: int, count: int) -> List[PeerID]:
        """The ``count`` online servers XOR-closest to ``target``."""
        by_key = self._by_key
        return [by_key[key] for key in select_closest(self._keys, target, count)]

    def range_bounds(self, prefix: int, prefix_len: int) -> Tuple[int, int]:
        """Index bounds ``[low, high)`` of the keys sharing ``prefix``."""
        if prefix_len <= 0:
            return 0, len(self._keys)
        shift = KEY_BITS - prefix_len
        base = (prefix >> shift) << shift
        low_index = bisect_left(self._keys, base)
        high_index = bisect_left(self._keys, base + (1 << shift))
        return low_index, high_index

    def sample_range(self, prefix: int, prefix_len: int, count: int, rng) -> List[PeerID]:
        """Up to ``count`` random online servers whose keys share the given
        prefix — the population of one k-bucket subtree."""
        return self.sample_range_info(prefix, prefix_len, count, rng)[0]

    def sample_range_info(
        self, prefix: int, prefix_len: int, count: int, rng
    ) -> Tuple[List[PeerID], bool]:
        """Like :meth:`sample_range`, also reporting whether ``rng`` was
        consumed (it is drawn from only when the subtree population
        exceeds ``count``) — the refresh-skip bookkeeping needs this to
        prove a maintenance pass was a no-op."""
        low_index, high_index = self.range_bounds(prefix, prefix_len)
        size = high_index - low_index
        if size <= 0:
            return [], False
        if size <= count:
            chosen = range(low_index, high_index)
            consumed_rng = False
        else:
            chosen = rng.sample(range(low_index, high_index), count)
            consumed_rng = True
        keys = self._keys
        by_key = self._by_key
        return [by_key[keys[index]] for index in chosen], consumed_rng
