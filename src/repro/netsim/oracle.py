"""A sorted index over the online DHT-server keyspace.

Several simulation steps need "the k XOR-closest online servers to a key":
provider-record placement, routing-table construction and refresh.  Running
a full iterative walk for each would be prohibitively slow at network
scale, and — crucially — the *result* of a healthy Kademlia walk is exactly
the set this index returns.  The exact walk remains available in
:mod:`repro.kademlia.lookup` and is used by the measurement code paths
(crawler, provider fetcher); the oracle is the fast path for *network-side*
behaviour.  DESIGN.md documents this substitution.

The XOR-closest query (shared with :func:`repro.ids.keys.select_closest`)
exploits a property of the metric: the k closest keys to a target all lie
inside the smallest *aligned binary subtree* (prefix range) around the
target containing at least k keys, and prefix ranges are contiguous in
sorted order.

Vectorized path: alongside the authoritative bigint key list the oracle
maintains a parallel ``uint64`` array of each key's top 64 bits (same
sort order).  For prefix lengths ≤ 64 a prefix range's bounds are fully
determined by those top bits — the range spans ≥ 2**192 values, so its
endpoints have all-zero / all-one low bits — which lets
:meth:`bucket_bounds_top64` answer *all* routing-table bucket bounds for
one node in a single ``searchsorted`` call instead of 2×256 bigint
bisects.  Results are exact (ties on the top-64 bits are detected and
reported so callers fall back to the scalar path); see
``tests/test_soa_properties.py`` for the brute-force pin.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.ids.keys import KEY_BITS, select_closest
from repro.ids.peerid import PeerID
from repro.netsim.soa import HAVE_NUMPY, np

#: How many leading key bits the uint64 mirror captures.
MIRROR_BITS = 64
_MIRROR_SHIFT = KEY_BITS - MIRROR_BITS

if HAVE_NUMPY:
    #: per-bucket shift amounts / range spans, hoisted out of the
    #: per-join :meth:`KeyspaceOracle.bucket_bounds_top64` hot path.
    _SHIFTS = np.arange(MIRROR_BITS - 1, -1, -1, dtype=np.uint64)
    _SPANS_MINUS1 = (np.uint64(1) << _SHIFTS) - np.uint64(1)
else:  # pragma: no cover - the numpy-less CI lane
    _SHIFTS = _SPANS_MINUS1 = None


class KeyspaceOracle:
    """Sorted (dht_key, peer) index of online DHT servers."""

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._by_key: Dict[int, PeerID] = {}
        #: bumped on every membership change; callers may cache query
        #: results keyed on this counter (e.g. per-CID resolver sets).
        self.generation = 0
        #: parallel uint64 array of ``key >> 192`` in the same sort order
        #: (numpy-gated; ``None`` keeps every scalar path intact).
        self._mirror = None
        self._mirror_len = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, peer: PeerID) -> bool:
        return self._by_key.get(peer.dht_key) == peer

    def add(self, peer: PeerID) -> None:
        key = peer.dht_key
        if key in self._by_key:
            if self._by_key[key] != peer:
                raise ValueError("DHT key collision between distinct peers")
            return
        self._by_key[key] = peer
        index = bisect_left(self._keys, key)
        self._keys.insert(index, key)
        if HAVE_NUMPY:
            self._mirror_insert(index, key >> _MIRROR_SHIFT)
        self.generation += 1

    def remove(self, peer: PeerID) -> None:
        key = peer.dht_key
        if self._by_key.get(key) != peer:
            return
        del self._by_key[key]
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]
            if self._mirror is not None:
                self._mirror_delete(index)
        self.generation += 1

    # -- uint64 mirror maintenance -----------------------------------------

    def _mirror_insert(self, index: int, top: int) -> None:
        buffer = self._mirror
        length = self._mirror_len
        if buffer is None or length == len(buffer):
            capacity = max(64, 2 * (0 if buffer is None else len(buffer)))
            grown = np.empty(capacity, dtype=np.uint64)
            if buffer is not None:
                grown[:length] = buffer[:length]
            self._mirror = buffer = grown
        if index < length:
            buffer[index + 1 : length + 1] = buffer[index:length]
        buffer[index] = top
        self._mirror_len = length + 1

    def _mirror_delete(self, index: int) -> None:
        buffer = self._mirror
        length = self._mirror_len
        buffer[index : length - 1] = buffer[index + 1 : length]
        self._mirror_len = length - 1

    def peers(self) -> List[PeerID]:
        return [self._by_key[key] for key in self._keys]

    def closest(self, target: int, count: int) -> List[PeerID]:
        """The ``count`` online servers XOR-closest to ``target``."""
        by_key = self._by_key
        return [by_key[key] for key in select_closest(self._keys, target, count)]

    def range_bounds(self, prefix: int, prefix_len: int) -> Tuple[int, int]:
        """Index bounds ``[low, high)`` of the keys sharing ``prefix``."""
        if prefix_len <= 0:
            return 0, len(self._keys)
        shift = KEY_BITS - prefix_len
        base = (prefix >> shift) << shift
        low_index = bisect_left(self._keys, base)
        high_index = bisect_left(self._keys, base + (1 << shift))
        return low_index, high_index

    def bucket_bounds_top64(self, own_key: int):
        """All k-bucket subtree bounds around ``own_key`` in one shot.

        Returns ``(lows, highs)`` lists where entry ``b`` holds the
        ``[low, high)`` index bounds of bucket ``b``'s subtree (prefix
        length ``b + 1``) for ``b`` in ``0..63`` — exactly what
        :meth:`range_bounds` computes per bucket, via one vectorized
        ``searchsorted`` over the uint64 mirror.  Buckets ≥ 64 are
        provably empty in the returned regime: the method returns
        ``None`` (caller falls back to the scalar path) whenever any
        *other* key shares ``own_key``'s top 64 bits, so every deeper
        subtree around ``own_key`` contains no foreign keys.  Also
        returns ``None`` when numpy is unavailable.
        """
        if self._mirror is None:
            return None
        length = self._mirror_len
        view = self._mirror[:length]
        own_top = own_key >> _MIRROR_SHIFT
        own_top_u = np.uint64(own_top)
        tie_low = int(np.searchsorted(view, own_top_u, side="left"))
        tie_high = int(np.searchsorted(view, own_top_u, side="right"))
        ties = tie_high - tie_low
        if ties > (1 if own_key in self._by_key else 0):
            return None
        bases = ((own_top_u >> _SHIFTS) ^ np.uint64(1)) << _SHIFTS
        # last key of each range: base + span - 1 (never overflows: the
        # base's low ``shift`` bits are zero).
        lasts = bases + _SPANS_MINUS1
        lows = np.searchsorted(view, bases, side="left")
        highs = np.searchsorted(view, lasts, side="right")
        return lows.tolist(), highs.tolist()

    def sample_range(self, prefix: int, prefix_len: int, count: int, rng) -> List[PeerID]:
        """Up to ``count`` random online servers whose keys share the given
        prefix — the population of one k-bucket subtree."""
        return self.sample_range_info(prefix, prefix_len, count, rng)[0]

    def sample_range_info(
        self, prefix: int, prefix_len: int, count: int, rng
    ) -> Tuple[List[PeerID], bool]:
        """Like :meth:`sample_range`, also reporting whether ``rng`` was
        consumed (it is drawn from only when the subtree population
        exceeds ``count``) — the refresh-skip bookkeeping needs this to
        prove a maintenance pass was a no-op."""
        low_index, high_index = self.range_bounds(prefix, prefix_len)
        return self.sample_bounds_info(low_index, high_index, count, rng)

    def sample_bounds_info(
        self, low_index: int, high_index: int, count: int, rng
    ) -> Tuple[List[PeerID], bool]:
        """:meth:`sample_range_info` over precomputed index bounds (the
        vectorized refresh path gets its bounds from
        :meth:`bucket_bounds_top64`)."""
        size = high_index - low_index
        if size <= 0:
            return [], False
        if size <= count:
            chosen = range(low_index, high_index)
            consumed_rng = False
        else:
            chosen = rng.sample(range(low_index, high_index), count)
            consumed_rng = True
        keys = self._keys
        by_key = self._by_key
        return [by_key[keys[index]] for index in chosen], consumed_rng
