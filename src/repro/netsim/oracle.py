"""A sorted index over the online DHT-server keyspace.

Several simulation steps need "the k XOR-closest online servers to a key":
provider-record placement, routing-table construction and refresh.  Running
a full iterative walk for each would be prohibitively slow at network
scale, and — crucially — the *result* of a healthy Kademlia walk is exactly
the set this index returns.  The exact walk remains available in
:mod:`repro.kademlia.lookup` and is used by the measurement code paths
(crawler, provider fetcher); the oracle is the fast path for *network-side*
behaviour.  DESIGN.md documents this substitution.

The XOR-closest query exploits a property of the metric: the k closest
keys to a target all lie inside the smallest *aligned binary subtree*
(prefix range) around the target containing at least k keys, and prefix
ranges are contiguous in sorted order.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List

from repro.ids.keys import KEY_BITS
from repro.ids.peerid import PeerID


class KeyspaceOracle:
    """Sorted (dht_key, peer) index of online DHT servers."""

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._by_key: Dict[int, PeerID] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, peer: PeerID) -> bool:
        return self._by_key.get(peer.dht_key) == peer

    def add(self, peer: PeerID) -> None:
        key = peer.dht_key
        if key in self._by_key:
            if self._by_key[key] != peer:
                raise ValueError("DHT key collision between distinct peers")
            return
        self._by_key[key] = peer
        insort(self._keys, key)

    def remove(self, peer: PeerID) -> None:
        key = peer.dht_key
        if self._by_key.get(key) != peer:
            return
        del self._by_key[key]
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]

    def peers(self) -> List[PeerID]:
        return [self._by_key[key] for key in self._keys]

    def closest(self, target: int, count: int) -> List[PeerID]:
        """The ``count`` online servers XOR-closest to ``target``.

        Finds the smallest aligned prefix range around the target holding
        at least ``3 * count`` keys (or everything), then exact-sorts that
        slice by XOR distance.  The overshoot factor guarantees the true
        closest set is contained: a prefix range with >= count keys
        sharing a longer prefix than anything outside it dominates all
        outside keys in XOR distance.
        """
        keys = self._keys
        if not keys or count <= 0:
            return []
        want = min(len(keys), 3 * count)
        low, high = 0, len(keys)
        # Shrink the aligned range while it still holds enough keys.
        for prefix_len in range(1, KEY_BITS + 1):
            shift = KEY_BITS - prefix_len
            range_base = (target >> shift) << shift
            new_low = bisect_left(keys, range_base, low, high)
            new_high = bisect_left(keys, range_base + (1 << shift), low, high)
            if new_high - new_low < want:
                break
            low, high = new_low, new_high
        candidates = keys[low:high]
        if len(candidates) < want:
            # Expand symmetrically in sorted order to regain the overshoot.
            extra = want - len(candidates)
            low = max(0, low - extra)
            high = min(len(keys), high + extra)
            candidates = keys[low:high]
        candidates.sort(key=lambda key: key ^ target)
        return [self._by_key[key] for key in candidates[:count]]

    def sample_range(self, prefix: int, prefix_len: int, count: int, rng) -> List[PeerID]:
        """Up to ``count`` random online servers whose keys share the given
        prefix — the population of one k-bucket subtree."""
        if prefix_len <= 0:
            low_index, high_index = 0, len(self._keys)
        else:
            shift = KEY_BITS - prefix_len
            base = (prefix >> shift) << shift
            low_index = bisect_left(self._keys, base)
            high_index = bisect_left(self._keys, base + (1 << shift))
        size = high_index - low_index
        if size <= 0:
            return []
        if size <= count:
            chosen = range(low_index, high_index)
        else:
            chosen = rng.sample(range(low_index, high_index), count)
        return [self._by_key[self._keys[index]] for index in chosen]
