"""Event-driven simulation of the IPFS overlay network.

* :mod:`repro.netsim.clock` — simulated time and the event scheduler,
* :mod:`repro.netsim.oracle` — a sorted index over online DHT-server keys
  (the fast path for closest-peer queries and bucket filling),
* :mod:`repro.netsim.node` — a live IPFS node (routing table, provider
  store, address set, DHT request handlers),
* :mod:`repro.netsim.network` — the overlay: registration, dialing,
  queries, provider registry,
* :mod:`repro.netsim.nat` — relay selection and circuit addressing for
  NAT-ed peers,
* :mod:`repro.netsim.churn` — session/gap processes, IP rotation and
  peer-ID regeneration.
"""

from repro.netsim.clock import Clock, EventScheduler
from repro.netsim.network import Overlay
from repro.netsim.node import Node
from repro.netsim.oracle import KeyspaceOracle

__all__ = ["Clock", "EventScheduler", "KeyspaceOracle", "Node", "Overlay"]
