"""Struct-of-arrays (SoA) acceleration core for the tick engine.

The per-node Python loop in the churn/traffic tick is the scalability
wall (see ``BENCH_core_hotpaths.json``): at the paper's 25.8 k peers —
let alone the 100 k–1 M regime the roadmap targets — object-at-a-time
dispatch dominates the campaign runtime.  This module holds the node
population as numpy arrays (class codes, activity weights, liveness,
rotation probabilities) plus the one primitive that makes *bit-identical*
batching possible at all: a numpy ``RandomState`` that shares CPython's
Mersenne-Twister stream.

Determinism contract
--------------------
Every batched algorithm in this repo consumes **exactly the same RNG
draws in exactly the same order** as its scalar counterpart and computes
decision-bearing floats with **the same operation ordering** (and the
same libm, i.e. ``math.exp``/``math.log``, never numpy's SIMD
transcendentals, which may differ by 1 ulp).  The speedups come from
removing Python dispatch around identical draws — never from changing
the stream — so campaign outputs stay bit-identical to the goldens and
to the retained scalar engine (pinned by ``tests/test_tick_parity.py``).

Why the mirror works: ``random.Random`` and ``numpy.random.RandomState``
both run MT19937 and both derive doubles as
``((a >> 5) * 2**26 + (b >> 6)) / 2**53`` from two consecutive 32-bit
outputs, so transplanting the 624-word state vector in either direction
reproduces the other's ``random()`` stream exactly.

Everything here degrades gracefully: without numpy the module imports
fine, ``HAVE_NUMPY`` is ``False``, and the scalar engine runs unchanged.
Requesting the SoA engine explicitly without numpy raises a clear error
(:func:`require_numpy`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.world.population import NodeClass, NodeSpec, World

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the numpy-less CI lane
    _np = None

#: Minimum supported numpy (matches the floor declared in pyproject.toml).
NUMPY_FLOOR = (1, 24)


def _numpy_ok() -> bool:
    if _np is None:
        return False
    try:
        major, minor = (int(part) for part in _np.__version__.split(".")[:2])
    except (ValueError, AttributeError):  # pragma: no cover - exotic builds
        return True  # unparseable version: assume fine rather than disable
    return (major, minor) >= NUMPY_FLOOR


HAVE_NUMPY = _numpy_ok()
np = _np if HAVE_NUMPY else None


def require_numpy(feature: str = "the vectorized (SoA) tick engine"):
    """Return numpy or raise a clear, actionable error.

    Called on every explicit request for SoA functionality so a missing
    or too-old numpy fails fast at configuration time instead of deep
    inside a campaign.
    """
    if _np is None:
        raise RuntimeError(
            f"{feature} requires numpy>={NUMPY_FLOOR[0]}.{NUMPY_FLOOR[1]}, "
            "which is not installed. Install it (pip install "
            f"'numpy>={NUMPY_FLOOR[0]}.{NUMPY_FLOOR[1]}') or select the "
            'scalar engine (ScenarioConfig.engine="scalar").'
        )
    if not HAVE_NUMPY:
        raise RuntimeError(
            f"{feature} requires numpy>={NUMPY_FLOOR[0]}.{NUMPY_FLOOR[1]} "
            f"(found {_np.__version__}). Upgrade numpy or select the "
            'scalar engine (ScenarioConfig.engine="scalar").'
        )
    return _np


def resolve_engine(requested: str) -> str:
    """Map a ``ScenarioConfig.engine`` value to ``"soa"`` or ``"scalar"``.

    ``"auto"`` picks the SoA engine when a suitable numpy is available
    and falls back to the scalar engine otherwise; ``"soa"`` fails fast
    without numpy (see :func:`require_numpy`).  Both engines produce
    bit-identical campaigns — the choice is purely about speed.
    """
    if requested == "auto":
        return "soa" if HAVE_NUMPY else "scalar"
    if requested == "soa":
        require_numpy('the SoA tick engine (ScenarioConfig.engine="soa")')
        return "soa"
    if requested == "scalar":
        return "scalar"
    raise ValueError(
        f"unknown engine {requested!r}; expected 'auto', 'soa' or 'scalar'"
    )


#: Stable class <-> small-int code mapping for the SoA arrays.
CLASS_ORDER: Tuple[NodeClass, ...] = tuple(NodeClass)
CLASS_CODE: Dict[NodeClass, int] = {cls: code for code, cls in enumerate(CLASS_ORDER)}


class MirroredRandom:
    """A numpy ``RandomState`` sharing a ``random.Random``'s MT stream.

    Usage pattern (the only safe one):

    1. ``attach()`` — transplant the Python RNG's current MT19937 state
       into the numpy generator.  The Python RNG must not be touched
       while attached.
    2. ``uniforms(n)`` — draw uniforms in chunks; the returned buffer's
       first ``n`` entries are exactly what ``n`` sequential
       ``py_rng.random()`` calls would have produced.
    3. ``sync_python_to(consumed)`` — set the Python RNG to the state it
       would have after exactly ``consumed`` of those draws (chunk
       snapshots make this cheap even mid-buffer), preserving
       ``gauss_next`` so interleaved ``gauss()`` calls stay identical.
    """

    #: Draw granularity; snapshots at chunk boundaries bound the rewind
    #: cost of :meth:`sync_python_to` to one partial chunk.
    CHUNK = 4096

    def __init__(self, py_rng) -> None:
        require_numpy("MirroredRandom")
        self.py = py_rng
        self._rs = np.random.RandomState()
        self._scratch = np.random.RandomState()
        self._chunks: List = []
        self._states: List = []
        self._count = 0
        self._cat = None
        self._gauss_next = None
        self.attached = False

    def attach(self) -> None:
        """Mirror the Python RNG's current state; resets the buffer."""
        version, internal, gauss_next = self.py.getstate()
        if version != 3:  # pragma: no cover - every CPython ≥2.4 uses 3
            raise RuntimeError(f"unsupported random.Random state version {version}")
        self._rs.set_state(
            ("MT19937", np.asarray(internal[:-1], dtype=np.uint32), internal[-1])
        )
        self._gauss_next = gauss_next
        self._chunks = []
        self._states = []
        self._count = 0
        self._cat = None
        self.attached = True

    def uniforms(self, n: int):
        """A buffer of ≥ ``n`` uniforms continuing the mirrored stream."""
        if not self.attached:
            raise RuntimeError("attach() first")
        while self._count < n:
            self._states.append(self._rs.get_state(legacy=True))
            self._chunks.append(self._rs.random_sample(self.CHUNK))
            self._count += self.CHUNK
            self._cat = None
        if self._cat is None:
            if not self._chunks:
                return np.empty(0, dtype=np.float64)
            self._cat = (
                self._chunks[0]
                if len(self._chunks) == 1
                else np.concatenate(self._chunks)
            )
        return self._cat

    def sync_python_to(self, consumed: int) -> None:
        """Advance the Python RNG past exactly ``consumed`` mirror draws."""
        if not self.attached:
            raise RuntimeError("attach() first")
        if consumed > self._count:
            raise ValueError(f"only {self._count} draws buffered, not {consumed}")
        chunk_idx, remainder = divmod(consumed, self.CHUNK)
        if chunk_idx < len(self._states):
            source = self._states[chunk_idx]
        else:
            # consumed == buffered total, exactly at a chunk boundary.
            source = self._rs.get_state(legacy=True)
        self._scratch.set_state(source)
        if remainder:
            self._scratch.random_sample(remainder)
        state = self._scratch.get_state(legacy=True)
        # ndarray.tolist() converts the 624 words to Python ints in C —
        # an order of magnitude faster than a per-word genexpr, and this
        # runs once per mirror round-trip on the tick hot path.
        internal = tuple(state[1].tolist()) + (int(state[2]),)
        self.py.setstate((3, internal, self._gauss_next))
        self.attached = False

    def take(self, n: int):
        """One-shot bulk draw: exactly the next ``n`` Python uniforms.

        The attach → draw → re-sync round trip as a single call, for
        callers (e.g. the open-loop workload driver) that consume a
        known count up front rather than scanning an open-ended buffer.
        """
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        self.attach()
        values = self.uniforms(n)[:n].copy()
        self.sync_python_to(n)
        return values


class SoAState:
    """Struct-of-arrays mirror of the node population.

    The object graph (:class:`~repro.netsim.node.Node`) stays
    authoritative — this is a parallel columnar view maintained at the
    overlay's single liveness choke points (``bring_online`` /
    ``take_offline`` / ``add_node``), which is what lets the batched
    algorithms answer "who is online, in registry order?" and "what are
    everyone's rates?" without touching a single Python object.

    The online registry reproduces ``online_by_peer``'s *insertion
    order* exactly: an append-only index array with tombstones,
    compacted when more than half the slots are dead.  Spec indexes are
    assumed contiguous (``spec.index == position``), which
    ``PopulationBuilder`` guarantees and attack injection preserves.
    """

    def __init__(self, world: World) -> None:
        require_numpy("SoAState")
        specs = world.specs
        n = len(specs)
        self.size = n
        capacity = max(n, 1)
        self.class_code = np.zeros(capacity, dtype=np.int8)
        self.activity_weight = np.zeros(capacity, dtype=np.float64)
        self.rotation_prob = np.zeros(capacity, dtype=np.float64)
        self.is_server = np.zeros(capacity, dtype=bool)
        self.online = np.zeros(capacity, dtype=bool)
        for spec in specs:
            self._fill_spec(spec)
        # -- insertion-ordered online registry (tombstoned) ----------------
        self._seq = np.zeros(max(64, capacity), dtype=np.int64)
        self._alive = np.zeros(max(64, capacity), dtype=bool)
        self._seq_len = 0
        self._dead = 0
        self._slot_of: Dict[int, int] = {}
        #: bumped on every membership change; callers cache on it.
        self.epoch = 0
        self._cache_epoch = -1
        self._cache = None

    # -- population ------------------------------------------------------

    def _fill_spec(self, spec: NodeSpec) -> None:
        index = spec.index
        self.class_code[index] = CLASS_CODE[spec.node_class]
        self.activity_weight[index] = spec.activity_weight
        self.rotation_prob[index] = spec.behavior.daily_ip_rotation_prob
        self.is_server[index] = spec.node_class.is_dht_server

    def grow(self, spec: NodeSpec) -> None:
        """Extend the arrays for a late-injected spec (attack hooks)."""
        index = spec.index
        capacity = len(self.class_code)
        if index >= capacity:
            new_capacity = max(capacity * 2, index + 1)
            for name in (
                "class_code",
                "activity_weight",
                "rotation_prob",
                "is_server",
                "online",
            ):
                old = getattr(self, name)
                grown = np.zeros(new_capacity, dtype=old.dtype)
                grown[:capacity] = old
                setattr(self, name, grown)
        self._fill_spec(spec)
        self.size = max(self.size, index + 1)

    # -- liveness registry ------------------------------------------------

    def set_online(self, index: int) -> None:
        if self.online[index]:
            return
        self.online[index] = True
        if self._seq_len == len(self._seq):
            self._compact(force_grow=True)
        slot = self._seq_len
        self._seq[slot] = index
        self._alive[slot] = True
        self._seq_len = slot + 1
        self._slot_of[index] = slot
        self.epoch += 1

    def set_offline(self, index: int) -> None:
        if not self.online[index]:
            return
        self.online[index] = False
        slot = self._slot_of.pop(index)
        self._alive[slot] = False
        self._dead += 1
        self.epoch += 1
        if self._dead > 64 and self._dead * 2 > self._seq_len:
            self._compact()

    def _compact(self, force_grow: bool = False) -> None:
        live = self._seq[: self._seq_len][self._alive[: self._seq_len]]
        needed = max(64, len(self._seq) * 2 if force_grow else len(self._seq))
        if needed != len(self._seq):
            self._seq = np.zeros(needed, dtype=np.int64)
            self._alive = np.zeros(needed, dtype=bool)
        self._seq[: len(live)] = live
        self._alive[: len(live)] = True
        self._alive[len(live) :] = False
        self._seq_len = len(live)
        self._dead = 0
        self._slot_of = {int(index): slot for slot, index in enumerate(live)}

    def online_indices(self):
        """Spec indexes of online nodes, in ``online_by_peer`` insertion
        order (cached per epoch)."""
        if self._cache_epoch != self.epoch:
            self._cache = self._seq[: self._seq_len][self._alive[: self._seq_len]]
            self._cache_epoch = self.epoch
        return self._cache

    def online_count(self) -> int:
        return self._seq_len - self._dead
