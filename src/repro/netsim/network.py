"""The simulated IPFS overlay.

The :class:`Overlay` owns every runtime node, the online registry, the
keyspace oracle, the provider-record registry and the routing-table
book-keeping (including *stale entries*: peers that went offline but are
still referenced in other peers' k-buckets, which is why DHT crawls
discover more peers than are crawlable — paper §3).

Hot-path note: the overlay maintains *incremental* indexes alongside the
``online_by_peer`` registry — the online DHT servers, the NAT clients and
the relay-capable servers, each in registration order.  Every index is a
strict subsequence of ``online_by_peer``'s insertion order, so list-valued
queries (``online_servers``, ``pick_relay``) return exactly what a filter
over the full registry would, without the O(N) scan — and, crucially, the
RNG draws made against those lists are bit-identical to the scan-based
implementation.
"""

from __future__ import annotations

import math
import random
import warnings
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Set, Tuple

from repro.ids.cid import CID
from repro.ids.keys import KEY_BITS
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.messages import PeerInfo
from repro.kademlia.providers import DEFAULT_RECORD_TTL, ProviderRecord
from repro.kademlia.routing_table import RoutingTable
from repro.netsim.clock import EventScheduler, SECONDS_PER_HOUR
from repro.netsim.node import Node
from repro.netsim.oracle import MIRROR_BITS, KeyspaceOracle
from repro.netsim.soa import HAVE_NUMPY, SoAState
from repro.obs import metrics as obs
from repro.obs import trace
from repro.world.population import NodeClass, NodeSpec, World


class ProviderRegistry:
    """Network-wide provider-record state.

    In the real network each record lives on the ~20 resolvers closest to
    the CID.  Storing 20 physical copies per record is pure memory overhead
    for the analyses, so the registry keeps one logical copy and answers
    "is this node currently a resolver for that CID?" via the keyspace
    oracle at query time (see DESIGN.md, fast-path substitutions).

    Pruning is lazy and per-CID: ``_oldest`` tracks the earliest
    ``published_at`` per CID so ``get`` can skip the expiry sweep entirely
    while nothing can have expired yet.
    """

    def __init__(self, ttl: float = DEFAULT_RECORD_TTL, max_per_cid: int = 200) -> None:
        self.ttl = ttl
        self.max_per_cid = max_per_cid
        self._records: Dict[CID, Dict[PeerID, ProviderRecord]] = {}
        #: earliest ``published_at`` per CID — lets ``get`` skip the prune
        #: entirely while nothing can have expired yet.
        self._oldest: Dict[CID, float] = {}

    def add(self, record: ProviderRecord) -> None:
        by_provider = self._records.setdefault(record.cid, {})
        by_provider[record.provider] = record
        oldest = self._oldest.get(record.cid)
        if oldest is None or record.published_at < oldest:
            self._oldest[record.cid] = record.published_at
        if len(by_provider) > self.max_per_cid:
            victim = min(by_provider.values(), key=lambda rec: rec.published_at)
            del by_provider[victim.provider]
            # The eviction may have removed the record behind ``_oldest``;
            # a stale floor would force a futile full prune on every
            # subsequent ``get``, so recompute it from the survivors.
            self._oldest[record.cid] = min(
                rec.published_at for rec in by_provider.values()
            )

    def _prune(self, cid: CID, now: float) -> None:
        by_provider = self._records.get(cid)
        if not by_provider:
            return
        alive = {
            provider: record
            for provider, record in by_provider.items()
            if now - record.published_at < self.ttl
        }
        if alive:
            self._records[cid] = alive
            self._oldest[cid] = min(record.published_at for record in alive.values())
        else:
            del self._records[cid]
            self._oldest.pop(cid, None)

    def get(self, cid: CID, now: float) -> List[ProviderRecord]:
        by_provider = self._records.get(cid)
        if not by_provider:
            return []
        if now - self._oldest.get(cid, now) >= self.ttl:
            self._prune(cid, now)
            by_provider = self._records.get(cid, {})
        return list(by_provider.values())

    def has_records(self, cid: CID, now: float) -> bool:
        by_provider = self._records.get(cid)
        if not by_provider:
            return False
        if now - self._oldest.get(cid, now) >= self.ttl:
            self._prune(cid, now)
            by_provider = self._records.get(cid)
        return bool(by_provider)

    def cids(self) -> List[CID]:
        return list(self._records)

    def __len__(self) -> int:
        return sum(len(by_provider) for by_provider in self._records.values())


class Overlay:
    """The global network state and its mechanics."""

    def __init__(
        self,
        world: World,
        scheduler: Optional[EventScheduler] = None,
        rng: Optional[random.Random] = None,
        k: int = 20,
        refresh_interval_hours: float = 6.0,
        stale_detect_prob: float = 0.85,
        vectorized: Optional[bool] = None,
    ) -> None:
        self.world = world
        self.scheduler = scheduler or EventScheduler()
        self.rng = rng or random.Random(world.profile.seed + 1)
        self.k = k
        self.refresh_interval_hours = refresh_interval_hours
        self.stale_detect_prob = stale_detect_prob

        # -- struct-of-arrays mirror (see repro.netsim.soa) ----------------
        #: columnar view of the population, maintained at the liveness
        #: choke points below; ``None`` without numpy.
        self.soa: Optional[SoAState] = SoAState(world) if HAVE_NUMPY else None
        #: gates the batched (array-op) algorithm variants.  Every batched
        #: variant is bit-identical to its scalar twin (same RNG draws,
        #: same float op order) — the flag exists for the differential
        #: parity harness and for explicit ``engine="scalar"`` runs.
        if vectorized is None:
            vectorized = self.soa is not None
        self.vectorized: bool = bool(vectorized) and self.soa is not None

        self.nodes: List[Node] = [Node(spec, self) for spec in world.specs]
        self.online_by_peer: Dict[PeerID, Node] = {}
        self.oracle = KeyspaceOracle()
        self.providers = ProviderRegistry()
        #: peer ID -> nodes whose routing table currently references it.
        self._holders: Dict[PeerID, Set[Node]] = {}
        #: last announced addresses per peer ID (stale peers keep theirs).
        self._last_infos: Dict[PeerID, PeerInfo] = {}
        #: persistent peer IDs per spec index (survive sessions w/o regen).
        self._persistent_peer: Dict[int, PeerID] = {}
        self._persistent_ips: Dict[int, List[int]] = {}
        #: whether a spec offers the circuit-relay service (stable trait).
        self._relay_capable: Dict[int, bool] = {}

        # -- incremental indexes (registration order) ----------------------
        #: online DHT servers / NAT clients, each a subsequence of
        #: ``online_by_peer`` insertion order.
        self._online_servers: Dict[PeerID, Node] = {}
        self._online_clients: Dict[PeerID, Node] = {}
        #: monotonic per-session sequence number of every online server —
        #: the sort key that keeps ``_relay_known`` in registration order.
        self._server_seq: Dict[PeerID, int] = {}
        self._session_counter = 0
        #: online servers known relay-capable, sorted by session sequence.
        self._relay_known: List[Tuple[int, Node]] = []
        #: online servers whose relay capability has not been sampled yet
        #: (capability RNG is drawn lazily at the next ``pick_relay``, in
        #: registration order — exactly when and where the scan-based
        #: implementation drew it).
        self._relay_unsampled: Dict[PeerID, Tuple[int, Node]] = {}
        #: static membership index (specs never change class at runtime).
        self._nodes_by_class: Dict[NodeClass, List[Node]] = {}
        for node in self.nodes:
            self._nodes_by_class.setdefault(node.node_class, []).append(node)

        # -- refresh-skip bookkeeping --------------------------------------
        #: maintenance passes are skipped for nodes whose last refresh was
        #: provably a no-op (zero RNG draws, zero table changes) and whose
        #: observable inputs have not changed since; see ``refresh_node``.
        self.refresh_skip_enabled = True
        self._refresh_clean: Set[Node] = set()
        #: (prefix_len -> prefix_base -> clean nodes whose under-full
        #: buckets cover that subtree): a server joining inside a watched
        #: range invalidates the watchers.
        self._watch_index: Dict[int, Dict[int, Set[Node]]] = {}
        self._node_watches: Dict[Node, List[Tuple[int, int]]] = {}
        self._refresh_depth = self._expected_depth()

        #: one-slot resolver cache, valid for a single oracle generation —
        #: a FindProviders walk asks for the same CID's resolvers ~k times
        #: with no membership change in between.
        self._resolver_cache: Optional[Tuple[int, CID, List[PeerID]]] = None

    # ------------------------------------------------------------------
    # clock helpers
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.clock.now

    def nodes_of_class(self, node_class: NodeClass) -> List[Node]:
        return list(self._nodes_by_class.get(node_class, ()))

    def online_servers(self) -> List[Node]:
        return list(self._online_servers.values())

    def online_nat_clients(self) -> List[Node]:
        return list(self._online_clients.values())

    # ------------------------------------------------------------------
    # late node injection (adversarial scenarios)
    # ------------------------------------------------------------------

    def add_node(self, spec: NodeSpec) -> Node:
        """Register a node created after construction (attack injection).

        The node joins every static index but starts offline; callers
        bring it online through the normal session mechanics.  Spec
        indexes must stay unique — the persistent identity and relay
        capability maps key on them.
        """
        if any(existing.spec.index == spec.index for existing in self.nodes):
            raise ValueError(f"spec index {spec.index} already registered")
        node = Node(spec, self)
        self.nodes.append(node)
        self._nodes_by_class.setdefault(node.node_class, []).append(node)
        if self.soa is not None:
            self.soa.grow(spec)
        return node

    def adopt_identity(self, node: Node, peer: PeerID) -> None:
        """Pin the peer ID ``node`` will use for its next sessions.

        This is the hook for adversaries that *choose* their identities
        (ground sybil IDs, churn-bomb fresh IDs) instead of drawing them
        from the overlay RNG: the pinned ID is installed as the node's
        persistent identity, so a subsequent ``bring_online`` adopts it
        without consuming any shared randomness.
        """
        if node.online:
            raise ValueError("cannot adopt an identity while the node is online")
        self._persistent_peer[node.spec.index] = peer

    # ------------------------------------------------------------------
    # join / leave mechanics
    # ------------------------------------------------------------------

    def _assign_identity(self, node: Node, rotate_ip: bool, regen_peer: bool) -> None:
        spec = node.spec
        if regen_peer or spec.index not in self._persistent_peer:
            self._persistent_peer[spec.index] = PeerID.generate(self.rng)
        node.peer = self._persistent_peer[spec.index]
        if rotate_ip or spec.index not in self._persistent_ips:
            allocator = self.world.allocator
            ips = []
            for position in range(spec.num_addrs):
                block = spec.blocks[position % len(spec.blocks)]
                try:
                    ips.append(allocator.next_address(block))
                except RuntimeError:
                    ips.append(allocator.random_address(block, self.rng))
            self._persistent_ips[spec.index] = ips
        node.ips = list(self._persistent_ips[spec.index])
        node.invalidate_addr_cache()

    def _register_server(self, node: Node) -> None:
        """Index an online DHT server (registration order) and join the
        keyspace oracle."""
        seq = self._session_counter
        self._session_counter += 1
        self._server_seq[node.peer] = seq
        self._online_servers[node.peer] = node
        capable = self._relay_capable.get(node.spec.index)
        if capable is None:
            self._relay_unsampled[node.peer] = (seq, node)
        elif capable:
            # ``seq`` is the largest so far: appending keeps the sort.
            self._relay_known.append((seq, node))
        self.oracle.add(node.peer)
        self._note_oracle_change(added_key=node.peer.dht_key)

    def _unregister_server(self, node: Node) -> None:
        self.oracle.remove(node.peer)
        seq = self._server_seq.pop(node.peer, None)
        self._online_servers.pop(node.peer, None)
        self._relay_unsampled.pop(node.peer, None)
        if seq is not None and self._relay_capable.get(node.spec.index):
            position = bisect_left(self._relay_known, (seq,))
            if (
                position < len(self._relay_known)
                and self._relay_known[position][0] == seq
            ):
                del self._relay_known[position]
        self._note_oracle_change()

    def bring_online(
        self, node: Node, rotate_ip: bool = False, regen_peer: bool = False
    ) -> None:
        """Start a session for ``node``: identity, registration, DHT join."""
        if node.online:
            return
        self._assign_identity(node, rotate_ip, regen_peer)
        node.sample_session_traits(self.rng)
        node.online = True
        node.session_started_at = self.now
        node.sessions_seen += 1
        if node.peer in self.online_by_peer:
            # Peer-ID collision from a returning identity raced by a ghost;
            # regenerate to keep the registry one-to-one.
            self._assign_identity(node, rotate_ip, regen_peer=True)
        self.online_by_peer[node.peer] = node
        if self.soa is not None:
            self.soa.set_online(node.spec.index)
        if not node.is_dht_server:
            self._online_clients[node.peer] = node
            node.relay = self.pick_relay(exclude=node)
            if node.relay is not None and trace.get_tracer().enabled:
                self._trace_relay(node, node.relay)
        else:
            self._register_server(node)
        self._last_infos[node.peer] = node.peer_info()
        if node.is_dht_server:
            self._join_dht(node)
        obs.inc("netsim.sessions_started")

    def rotate_addresses(self, node: Node) -> None:
        """Mid-session DHCP re-lease: the node's addresses change while it
        stays online with the same peer ID."""
        if not node.online or node.peer is None:
            return
        allocator = self.world.allocator
        spec = node.spec
        ips = []
        for position in range(spec.num_addrs):
            block = spec.blocks[position % len(spec.blocks)]
            try:
                ips.append(allocator.next_address(block))
            except RuntimeError:
                ips.append(allocator.random_address(block, self.rng))
        self._persistent_ips[spec.index] = ips
        node.ips = list(ips)
        node.invalidate_addr_cache()
        self._last_infos[node.peer] = node.peer_info()

    def take_offline(self, node: Node) -> None:
        """End the session: unregister; stale table entries linger."""
        if not node.online:
            return
        node.online = False
        if self.soa is not None:
            self.soa.set_offline(node.spec.index)
        if node.peer is not None:
            self.online_by_peer.pop(node.peer, None)
            if node.is_dht_server:
                self._unregister_server(node)
            else:
                self._online_clients.pop(node.peer, None)
            # Everyone referencing the departed peer now has a stale table
            # entry: their next maintenance pass is no longer a no-op.
            holders = self._holders.get(node.peer)
            if holders:
                for holder in list(holders):
                    self._mark_refresh_dirty(holder)
        node.relay = None
        # Routing-table state of the departed node is dropped; peers that
        # reference it keep a stale entry until their next refresh.
        if node.routing_table is not None:
            for peer in node.routing_table.peers():
                holders = self._holders.get(peer)
                if holders is not None:
                    holders.discard(node)
            node.routing_table = None
        self._mark_refresh_dirty(node)
        obs.inc("netsim.sessions_ended")

    # ------------------------------------------------------------------
    # DHT join, refresh, stale handling
    # ------------------------------------------------------------------

    def _expected_depth(self) -> int:
        size = max(len(self.oracle), 2)
        return int(math.log2(size)) + 1

    def _fill_routing_table(self, node: Node) -> None:
        """Populate the joiner's k-buckets.

        Fast path equivalent of the self-lookup walk a joining node
        performs: each bucket is filled with up to ``k`` random online
        servers from that bucket's subtree (see DESIGN.md).
        """
        if self.vectorized and self._fill_routing_table_batched(node):
            return
        table = RoutingTable(node.peer, bucket_size=self.k)
        own = node.peer.dht_key
        empty_streak = 0
        max_depth = self._expected_depth() + 8
        for bucket_idx in range(KEY_BITS):
            shift = KEY_BITS - bucket_idx - 1
            prefix_base = (((own >> shift) ^ 1) << shift)
            peers = self.oracle.sample_range(prefix_base, bucket_idx + 1, self.k, self.rng)
            found = False
            for peer in peers:
                if peer != node.peer and table.add(peer):
                    self._holders.setdefault(peer, set()).add(node)
                    found = True
            if found:
                empty_streak = 0
            else:
                empty_streak += 1
                if bucket_idx > max_depth and empty_streak >= 3:
                    break
        node.routing_table = table

    def _fill_routing_table_batched(self, node: Node) -> bool:
        """Vectorized twin of :meth:`_fill_routing_table`.

        One :meth:`~repro.netsim.oracle.KeyspaceOracle.bucket_bounds_top64`
        call replaces the per-bucket bigint prefix computation and
        bisects; only non-empty buckets are then visited (empty buckets
        consume no RNG, so skipping them is draw-for-draw identical),
        with the scalar loop's ``empty_streak``/break bookkeeping
        reproduced arithmetically across the skipped gaps.  Returns
        ``False`` — caller runs the scalar loop — when the oracle cannot
        vouch for the top-64-bit bounds (foreign key sharing our 64-bit
        prefix), so results are exact in every case.
        """
        bounds = self.oracle.bucket_bounds_top64(node.peer.dht_key)
        if bounds is None:
            return False
        lows, highs = bounds
        table = RoutingTable(node.peer, bucket_size=self.k)
        max_depth = self._expected_depth() + 8
        own_peer = node.peer
        holders = self._holders
        oracle = self.oracle
        rng = self.rng
        k = self.k
        empty_streak = 0
        previous = -1
        for bucket_idx in range(len(lows)):
            low = lows[bucket_idx]
            high = highs[bucket_idx]
            if low >= high:
                continue
            gap = bucket_idx - previous - 1
            if gap:
                # Would the scalar loop have broken inside this run of
                # empty buckets?  The first breaking index needs both
                # ``empty_streak >= 3`` and ``bucket_idx > max_depth``.
                first_break = max(previous + max(1, 3 - empty_streak), max_depth + 1)
                if first_break < bucket_idx:
                    node.routing_table = table
                    return True
                empty_streak += gap
            peers, _ = oracle.sample_bounds_info(low, high, k, rng)
            found = False
            for peer in peers:
                if peer != own_peer and table.add(peer):
                    holders.setdefault(peer, set()).add(node)
                    found = True
            if found:
                empty_streak = 0
            else:
                empty_streak += 1
                if bucket_idx > max_depth and empty_streak >= 3:
                    break
            previous = bucket_idx
        # Buckets beyond the last non-empty one (including everything past
        # the 64-bit mirror depth, empty by the ``bounds`` contract) add
        # no peers and draw no RNG: the scalar loop just walks them until
        # its break condition fires.
        node.routing_table = table
        return True

    def _join_dht(self, node: Node) -> None:
        self._fill_routing_table(node)
        # The join walk makes the newcomer known: the k closest peers store
        # it in their (near, sparse) buckets, and a handful of random peers
        # contacted along the way may opportunistically add it.
        for neighbor_peer in self.oracle.closest(node.peer.dht_key, self.k):
            self._try_table_insert(self.online_by_peer.get(neighbor_peer), node.peer)
        contacted = min(len(self.online_by_peer), 24)
        for neighbor_peer in self.rng.sample(list(self.online_by_peer), contacted):
            neighbor = self.online_by_peer[neighbor_peer]
            if neighbor.is_dht_server:
                self._try_table_insert(neighbor, node.peer)

    def _try_table_insert(
        self, holder: Optional[Node], peer: PeerID, force_prob: float = 0.0
    ) -> bool:
        """Attempt to place ``peer`` into ``holder``'s table.

        Classic Kademlia only evicts dead entries; ``force_prob`` models
        modified, aggressively connected clients that stay at the fresh
        end of buckets and eventually displace the incumbent.
        """
        if (
            holder is None
            or not holder.online
            or holder.routing_table is None
            or peer == holder.peer
        ):
            return False
        table = holder.routing_table
        bucket = table.bucket(table.bucket_index_for(peer))
        if bucket.is_full and peer not in bucket:
            # Kademlia evicts an entry only if it is dead; check the oldest.
            oldest = bucket.oldest()
            if oldest is not None and (
                oldest not in self.online_by_peer or self.rng.random() < force_prob
            ):
                table.remove(oldest)
                self._mark_refresh_dirty(holder)
                holders = self._holders.get(oldest)
                if holders is not None:
                    holders.discard(holder)
        newly_stored = peer not in table
        if table.add(peer):
            self._holders.setdefault(peer, set()).add(holder)
            if newly_stored:
                self._mark_refresh_dirty(holder)
            return True
        return False

    def advertise_presence(self, node: Node, attempts: int = 40) -> int:
        """Aggressive self-insertion used by modified clients (e.g. the
        Filebase nodes the paper finds at the top of the in-degree
        distribution, §4).  A modified client keeps its connections warm,
        so it occasionally displaces the least-recently seen incumbent."""
        if not node.online or node.peer is None:
            return 0
        inserted = 0
        servers = self.online_servers()
        if not servers:
            return 0
        for target in self.rng.sample(servers, min(attempts, len(servers))):
            if self._try_table_insert(target, node.peer, force_prob=0.35):
                inserted += 1
        return inserted

    # -- refresh-skip bookkeeping --------------------------------------

    def _mark_refresh_dirty(self, node: Node) -> None:
        """Forget that ``node``'s next maintenance pass would be a no-op."""
        if node not in self._refresh_clean:
            return
        self._refresh_clean.discard(node)
        for prefix_len, base in self._node_watches.pop(node, ()):
            by_base = self._watch_index.get(prefix_len)
            if by_base is None:
                continue
            watchers = by_base.get(base)
            if watchers is None:
                continue
            watchers.discard(node)
            if not watchers:
                del by_base[base]
                if not by_base:
                    del self._watch_index[prefix_len]

    def _note_oracle_change(self, added_key: Optional[int] = None) -> None:
        """React to oracle membership changes.

        A change of the expected trie depth alters which buckets a refresh
        pass inspects, so every no-op certificate is voided.  A *join*
        additionally invalidates the clean nodes whose under-full buckets
        cover the newcomer's subtree (their next top-up would store it).
        Departures need no extra handling: a clean node's under-full
        buckets contain *every* server of their subtree, so a departure
        from such a range is always a departure of a held peer — covered
        by the holder invalidation in :meth:`take_offline`.
        """
        depth = self._expected_depth()
        if depth != self._refresh_depth:
            self._refresh_depth = depth
            if self._refresh_clean:
                self._refresh_clean.clear()
                self._node_watches.clear()
                self._watch_index.clear()
        if added_key is not None and self._watch_index:
            for prefix_len, by_base in list(self._watch_index.items()):
                shift = KEY_BITS - prefix_len
                base = (added_key >> shift) << shift
                watchers = by_base.get(base)
                if watchers:
                    for watcher in list(watchers):
                        self._mark_refresh_dirty(watcher)

    def refresh_node(self, node: Node) -> None:
        """One maintenance pass: evict dead entries, top up buckets.

        The pass also determines whether it was a *no-op* — no RNG drawn,
        no table change.  If so, the node is marked clean and its
        under-full bucket ranges are registered as watches; until churn
        touches the node's table, its depth assumptions or a watched
        range, ``refresh_all`` may skip it without perturbing either the
        network state or the shared RNG stream.
        """
        if not node.online or node.routing_table is None:
            return
        self._mark_refresh_dirty(node)
        table = node.routing_table
        online = self.online_by_peer
        rng = self.rng
        clean = True
        for peer in table.peers():
            if peer not in online:
                clean = False
                if rng.random() < self.stale_detect_prob:
                    table.remove(peer)
                    holders = self._holders.get(peer)
                    if holders is not None:
                        holders.discard(node)
        own = node.peer.dht_key
        watches: List[Tuple[int, int]] = []
        depth = min(self._expected_depth() + 4, KEY_BITS)
        # Vectorized path: all bucket bounds in one searchsorted instead
        # of two bigint bisects per bucket.  Bit-identical — the bounds
        # are exact (else ``bounds is None`` and we fall back) and the
        # per-bucket sampling below is shared with the scalar path.
        # Computed lazily: a pass over a fully-topped-up table never
        # needs them.
        bounds = None
        want_bounds = self.vectorized and depth <= MIRROR_BITS
        for bucket_idx in range(depth):
            bucket = table.bucket(bucket_idx)
            missing = self.k - len(bucket)
            if missing <= 0:
                continue
            if want_bounds:
                bounds = self.oracle.bucket_bounds_top64(own)
                want_bounds = False
            shift = KEY_BITS - bucket_idx - 1
            prefix_base = (((own >> shift) ^ 1) << shift)
            if bounds is not None:
                peers, consumed_rng = self.oracle.sample_bounds_info(
                    bounds[0][bucket_idx], bounds[1][bucket_idx], missing * 2, rng
                )
            else:
                peers, consumed_rng = self.oracle.sample_range_info(
                    prefix_base, bucket_idx + 1, missing * 2, rng
                )
            if consumed_rng:
                clean = False
            for peer in peers:
                if peer != node.peer and peer not in bucket and table.add(peer):
                    self._holders.setdefault(peer, set()).add(node)
                    clean = False
            if len(bucket) < self.k:
                watches.append((bucket_idx + 1, prefix_base))
        if clean and self.refresh_skip_enabled:
            self._refresh_clean.add(node)
            self._node_watches[node] = watches
            for prefix_len, base in watches:
                self._watch_index.setdefault(prefix_len, {}).setdefault(
                    base, set()
                ).add(node)

    def refresh_all(self) -> None:
        """A network-wide maintenance pass (run periodically by scenarios).

        Nodes whose previous pass was certified a no-op (see
        :meth:`refresh_node`) are skipped; skipping them changes neither
        the network state nor the RNG stream, so the simulation stays
        bit-identical to an unconditional full pass.
        """
        clean = self._refresh_clean if self.refresh_skip_enabled else ()
        refreshed = skipped = 0
        for node in self.online_servers():
            if node in clean:
                skipped += 1
                continue
            self.refresh_node(node)
            refreshed += 1
        obs.inc("netsim.refresh_passes")
        obs.inc("netsim.refresh_nodes", refreshed)
        obs.inc("netsim.refresh_skips", skipped)
        obs.set_gauge("netsim.online_servers", refreshed + skipped)

    def schedule_periodic_refresh(self) -> None:
        interval = self.refresh_interval_hours * SECONDS_PER_HOUR

        def tick() -> None:
            self.refresh_all()
            self.scheduler.schedule_in(interval, tick)

        self.scheduler.schedule_in(interval, tick)

    # ------------------------------------------------------------------
    # relays (circuit relay protocol, §2/§6)
    # ------------------------------------------------------------------

    #: Probability a node of a class offers the circuit-relay service.
    #: Stable home servers often enable it; ephemeral nodes and gateway
    #: pools rarely do.
    RELAY_CAPABILITY = {
        NodeClass.CLOUD_STABLE: 0.55,
        NodeClass.RESIDENTIAL_STABLE: 0.95,
        NodeClass.RESIDENTIAL_EPHEMERAL: 0.30,
        NodeClass.HYBRID: 0.80,
        NodeClass.PLATFORM: 0.90,
        NodeClass.GATEWAY: 0.20,
        NodeClass.NAT_CLIENT: 0.0,
    }

    def _is_relay_capable(self, node: Node) -> bool:
        if node.spec.index not in self._relay_capable:
            probability = self.RELAY_CAPABILITY[node.node_class]
            self._relay_capable[node.spec.index] = self.rng.random() < probability
        return self._relay_capable[node.spec.index]

    def _drain_relay_unsampled(self, exclude: Optional[Node]) -> None:
        """Sample relay capability for pending servers, in registration
        order — the draw order of the scan-based implementation.  The
        excluded node is left pending: the old scan short-circuited on it
        before sampling."""
        remaining: Dict[PeerID, Tuple[int, Node]] = {}
        for peer, entry in self._relay_unsampled.items():
            seq, node = entry
            if node is exclude:
                remaining[peer] = entry
                continue
            if self._is_relay_capable(node):
                insort(self._relay_known, entry)
        self._relay_unsampled = remaining

    def _relay_pool(self) -> List[Node]:
        """The current relay candidates, in registration order (no RNG is
        drawn for servers whose capability is already sampled)."""
        if self._relay_unsampled:
            self._drain_relay_unsampled(exclude=None)
        return [node for _, node in self._relay_known]

    def pick_relay(self, exclude: Optional[Node] = None) -> Optional[Node]:
        """A NAT-ed peer connects to a random relay-capable DHT server."""
        obs.inc("netsim.relay_picks")
        if self._relay_unsampled:
            self._drain_relay_unsampled(exclude)
        known = self._relay_known
        if not known:
            return None
        if (
            exclude is not None
            and exclude.online
            and exclude.peer is not None
            and self._relay_capable.get(exclude.spec.index)
            and exclude.peer in self._server_seq
        ):
            excluded_seq = self._server_seq[exclude.peer]
            pool = [node for seq, node in known if seq != excluded_seq]
            if not pool:
                return None
            return self.rng.choice(pool)
        return self.rng.choice(known)[1]

    def _trace_relay(self, node: Node, relay: Node) -> None:
        """Emit the relay-assignment event (caller guards on ``enabled``).

        The attrs restate the protocol law the auditor checks: relayed
        connectivity only exists between a NAT'd client and a
        relay-capable DHT server (paper §4).
        """
        trace.trace_event(
            "relay.assign",
            client_nat=not node.is_dht_server,
            relay_server=relay.is_dht_server,
            relay_online=relay.online,
        )

    def ensure_relay(self, node: Node) -> Optional[Node]:
        """NAT clients re-select their relay when it disappears."""
        if node.relay is None or not node.relay.online:
            node.relay = self.pick_relay(exclude=node)
            if node.peer is not None and node.relay is not None:
                self._last_infos[node.peer] = node.peer_info()
                if trace.get_tracer().enabled:
                    self._trace_relay(node, node.relay)
        return node.relay

    # ------------------------------------------------------------------
    # queries (used by the measurement tooling)
    # ------------------------------------------------------------------

    def last_info(self, peer: PeerID) -> Optional[PeerInfo]:
        """The last-announced :class:`PeerInfo` for ``peer``, if any
        (stale peers keep their final announcement)."""
        return self._last_infos.get(peer)

    def peer_infos(self, peers: List[PeerID]) -> List[PeerInfo]:
        """Last-announced PeerInfo for each peer (stale peers included —
        their old addresses are what the DHT still hands out)."""
        get = self._last_infos.get
        infos = [get(peer) for peer in peers]
        for position, info in enumerate(infos):
            if info is None:
                infos[position] = PeerInfo(peer=peers[position], addrs=())
        return infos

    def dial(self, peer: PeerID, timeout: float = 180.0) -> Optional[Node]:
        """Attempt to connect to a peer; None models a failed/timed-out dial."""
        node = self.online_by_peer.get(peer)
        if node is None or not node.is_dht_server:
            return None
        if not node.reachable or node.response_latency > timeout:
            return None
        return node

    def _trace_message(self, kind: str, node: Optional[Node]) -> None:
        """Emit the per-message trace event (caller guards on ``enabled``).

        ``sent``/``recv`` are simulated timestamps: a reply arrives one
        responder latency after the request leaves; a failed dial is
        observed as an instantaneous timeout at the querier.
        """
        now = self.now
        if node is None:
            trace.trace_event("msg.query", kind=kind, ok=False, sent=now, recv=now)
        else:
            trace.trace_event(
                "msg.query", kind=kind, ok=True, sent=now, recv=now + node.response_latency
            )

    def find_node_query(self, timeout: float = 180.0):
        """A :func:`repro.kademlia.lookup` query callable over this overlay."""

        def query(peer: PeerID, target_key: int):
            node = self.dial(peer, timeout)
            if trace.get_tracer().enabled:
                self._trace_message("find_node", node)
            if node is None:
                return None
            return node.handle_find_node(target_key, self.k)

        return query

    def get_providers_query(self, timeout: float = 180.0):
        def query(peer: PeerID, cid: CID):
            node = self.dial(peer, timeout)
            if trace.get_tracer().enabled:
                self._trace_message("get_providers", node)
            if node is None:
                return None
            return node.handle_get_providers(cid, self.k)

        return query

    def provider_records_at(self, node: Node, cid: CID) -> List[ProviderRecord]:
        """Records ``node`` would return for ``cid`` — only resolvers
        (the k closest servers to the CID) hold them."""
        if node.peer is None:
            return []
        resolvers = self.resolvers_for(cid)
        if node.peer not in resolvers:
            return []
        return self.providers.get(cid, self.now)

    def resolvers_for(self, cid: CID) -> List[PeerID]:
        cache = self._resolver_cache
        generation = self.oracle.generation
        if cache is not None and cache[0] == generation and cache[1] == cid:
            obs.inc("netsim.resolver_cache_hits")
            if trace.get_tracer().enabled:
                trace.trace_event("resolver.cache", hit=True)
            return cache[2]
        obs.inc("netsim.resolver_cache_misses")
        if trace.get_tracer().enabled:
            trace.trace_event("resolver.cache", hit=False)
        resolvers = self.oracle.closest(cid.dht_key, self.k)
        self._resolver_cache = (generation, cid, resolvers)
        return resolvers

    # ------------------------------------------------------------------
    # in-degree (public surface over the holder book-keeping)
    # ------------------------------------------------------------------

    def in_degree(self, peer: PeerID) -> int:
        """How many online nodes currently reference ``peer`` in their
        routing table (the paper's §4 in-degree estimate)."""
        holders = self._holders.get(peer)
        if not holders:
            return 0
        return sum(1 for holder in holders if holder.online)

    def in_degrees(self) -> Dict[PeerID, int]:
        """In-degree for every peer with at least one live holder."""
        counts: Dict[PeerID, int] = {}
        for peer, holders in self._holders.items():
            live_holders = sum(1 for holder in holders if holder.online)
            if live_holders:
                counts[peer] = live_holders
        return counts

    # ------------------------------------------------------------------
    # provide / content plumbing
    # ------------------------------------------------------------------

    def publish_provider_record(self, node: Node, cid: CID) -> Optional[ProviderRecord]:
        """Execute the effect of a Provide(): store a provider record
        mapping the CID to the node's current multiaddresses."""
        if not node.online or node.peer is None:
            return None
        if not node.is_dht_server:
            self.ensure_relay(node)
        addrs = tuple(node.multiaddrs())
        if not addrs:
            return None
        record = ProviderRecord(cid=cid, provider=node.peer, addrs=addrs, published_at=self.now)
        self.providers.add(record)
        node.provided_cids.add(cid)
        return record

    def is_provider_reachable(self, record: ProviderRecord) -> bool:
        """The §6 reachability verification: can the provider be reached at
        record-collection time (directly, or through its relay)?"""
        node = self.online_by_peer.get(record.provider)
        if node is None:
            return False
        if node.is_dht_server:
            return node.reachable
        # NAT-ed: reachable while its advertised relay is still up.
        relays = {addr.relay for addr in record.addrs if addr.relay is not None}
        return any(relay in self.online_by_peer for relay in relays)

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def bootstrap(self) -> None:
        """Bring the steady-state population online at t=0.

        Each spec starts online with probability equal to its class
        uptime, so crawl #1 already sees a typical snapshot.
        """
        starters = [
            node for node in self.nodes if self.rng.random() < node.spec.behavior.uptime
        ]
        # Join servers in random order; tables fill against the oracle as
        # it grows, then a global refresh evens out early joiners.
        self.rng.shuffle(starters)
        for node in starters:
            if node.is_dht_server:
                self.bring_online(node)
        for node in starters:
            if not node.is_dht_server:
                self.bring_online(node)
        self.refresh_all()


def in_degree_counts(overlay: Overlay) -> Dict[PeerID, int]:
    """How often each peer appears in other peers' buckets (the estimate
    of in-degree the paper uses, §4).

    .. deprecated::
        Use :meth:`Overlay.in_degrees` instead.
    """
    warnings.warn(
        "in_degree_counts() is deprecated; use Overlay.in_degrees() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return overlay.in_degrees()
