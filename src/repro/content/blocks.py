"""Chunking data into content-addressed blocks.

IPFS splits files into blocks (256 KiB by default) and links them from a
root object; the root's CID is the file's identifier.  We implement a
flat, single-level DAG — enough to exercise multi-block Bitswap transfers
in the examples without reproducing the full UnixFS format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ids.cid import CID

DEFAULT_CHUNK_SIZE = 256 * 1024


@dataclass(frozen=True)
class DagObject:
    """A root object linking the chunks of one data item."""

    root: CID
    links: Tuple[CID, ...]
    total_size: int

    def __len__(self) -> int:
        return len(self.links)


def chunk_data(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Tuple[DagObject, List[Tuple[CID, bytes]]]:
    """Split ``data`` into blocks and build the root object.

    Returns the DAG descriptor and the ``(cid, bytes)`` block list,
    including the serialized root block itself (whose CID is the root).
    Empty input yields a single empty block.
    """
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    chunks = [data[offset : offset + chunk_size] for offset in range(0, len(data), chunk_size)]
    if not chunks:
        chunks = [b""]
    blocks: List[Tuple[CID, bytes]] = []
    link_cids: List[CID] = []
    for chunk in chunks:
        cid = CID.for_data(chunk)
        blocks.append((cid, chunk))
        link_cids.append(cid)
    if len(link_cids) == 1:
        # Single-chunk items are addressed by the chunk itself, like IPFS.
        root = link_cids[0]
        return DagObject(root=root, links=tuple(link_cids), total_size=len(data)), blocks
    root_payload = b"".join(cid.binary for cid in link_cids)
    root = CID.for_data(root_payload)
    blocks.append((root, root_payload))
    return DagObject(root=root, links=tuple(link_cids), total_size=len(data)), blocks


def reassemble(dag: DagObject, fetch) -> bytes:
    """Reconstruct the original data by fetching every linked block.

    :param fetch: callable ``CID -> bytes`` (e.g. a Bitswap engine's
        ``fetch_block``). Raises :class:`KeyError` if a block is missing.
    """
    parts = []
    for cid in dag.links:
        data = fetch(cid)
        if data is None:
            raise KeyError(f"missing block {cid}")
        parts.append(data)
    return b"".join(parts)
