"""Deprecated alias for :mod:`repro.workload`.

The traffic engine outgrew a single module when the open-loop session
driver landed; it now lives in the :mod:`repro.workload` package
(``repro.workload.engine`` holds the classes that used to live here).
Importing through this path keeps working but warns once per name.
"""

from __future__ import annotations

import warnings

_MOVED = ("WorkloadConfig", "TrafficEngine", "VectorizedTrafficEngine", "_poisson")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.content.workload.{name} moved to repro.workload; "
            "update the import (this alias will be removed)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.workload as _workload

        return getattr(_workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(_MOVED)
