"""The calibrated traffic engine.

Generates the network's content activity — downloads, publishes, platform
re-provides, Hydra amplification — and feeds the two capture instruments
(the Hydra-booster DHT log and the Bitswap monitor log) plus the
provider-record registry.

Capture sampling: a DHT walk touches ~50 of ~25 000 servers, so the
monitoring Hydra sees each message with probability ``heads/servers``
(§3 estimates 4 % total capture).  Rather than routing every walk hop
through the simulator, the engine draws the *captured* messages directly
from that geometry — an importance-sampling shortcut that leaves every
per-message share unchanged (see DESIGN.md).  Exact walks remain in use
for every measurement operation (crawls, provider fetches, probes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.content.catalog import ContentCatalog, ContentItem
from repro.ids.cid import CID
from repro.kademlia.messages import MessageType
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.netsim.network import Overlay
from repro.netsim.node import Node, OrderedCIDSet
from repro.world.population import NodeClass


@dataclass
class WorkloadConfig:
    """Rates (per online node per hour) and protocol constants.

    Defaults are calibrated against the paper's §5 traffic shares; the
    ablation benches sweep individual knobs.
    """

    # Content-request rate by node class.  The gateway rate is the *fleet*
    # rate at reference scale (2 500 servers) and is scaled by network
    # size: gateways serve the web-user population, not themselves.
    request_rates: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.90,
            NodeClass.RESIDENTIAL_EPHEMERAL: 1.00,
            NodeClass.RESIDENTIAL_STABLE: 0.55,
            NodeClass.CLOUD_STABLE: 0.22,
            NodeClass.HYBRID: 0.25,
            NodeClass.PLATFORM: 0.10,
            NodeClass.GATEWAY: 1.0,  # per node at reference scale
        }
    )
    #: Fleet-wide request rates (per hour, reference scale) of the
    #: automated resolver platforms — no Bitswap side, almost every
    #: request walks the DHT.
    indexer_rates: Dict[str, float] = field(
        default_factory=lambda: {"aws-mystery": 330.0, "cid-scraper": 260.0}
    )
    #: Per-operator multipliers on the gateway rate; ipfs-bank is the
    #: Bitswap-dominating gateway platform of Fig. 13.
    gateway_rate_multipliers: Dict[str, float] = field(
        default_factory=lambda: {"ipfs-bank": 6.0, "cloudflare": 2.0}
    )
    # Fresh-content publish rate by node class.
    publish_rates: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.100,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.080,
            NodeClass.RESIDENTIAL_STABLE: 0.090,
            NodeClass.CLOUD_STABLE: 0.020,
            NodeClass.HYBRID: 0.050,
            NodeClass.PLATFORM: 0.0,   # platforms re-provide their sets
            NodeClass.GATEWAY: 0.0,    # gateways only re-provide downloads
        }
    )
    #: Probability a downloader becomes a provider for what it fetched
    #: (§2 auto-scaling default; completing the re-provide walk is less
    #: likely for short-lived clients, all but certain for gateways).
    reprovide_probs: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.60,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.50,
            NodeClass.RESIDENTIAL_STABLE: 0.55,
            NodeClass.CLOUD_STABLE: 0.08,
            NodeClass.HYBRID: 0.40,
            NodeClass.PLATFORM: 0.50,
            # Gateways serve from their HTTP cache and rarely re-announce.
            NodeClass.GATEWAY: 0.15,
        }
    )
    #: Probability the 1-hop Bitswap broadcast resolves the request, per
    #: node class.  Gateways keep hundreds of connections and fixed links
    #: to the industrial providers, so they almost never need the DHT (§5).
    bitswap_hit_probs: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.42,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.42,
            NodeClass.RESIDENTIAL_STABLE: 0.40,
            NodeClass.CLOUD_STABLE: 0.45,
            NodeClass.HYBRID: 0.42,
            NodeClass.PLATFORM: 0.70,
            NodeClass.GATEWAY: 0.93,
        }
    )
    #: Extra hit probability for gateways fetching platform-pinned content
    #: (their fixed Bitswap links to pinata/nft.storage etc.).
    gateway_platform_hit_prob: float = 0.985
    #: Share of requests targeting content that does not exist (anymore).
    missing_content_prob: float = 0.06
    #: Peers contacted by a FindProviders walk (the paper's ≈50).
    download_walk_contacts: int = 50
    #: Walk plus PutProvider fan-out for a Provide operation.
    advert_walk_contacts: int = 34
    #: FIND_NODE messages captured per join/maintenance walk.
    other_walk_contacts: int = 15
    #: Proactive lookups the Protocol-Labs Hydra fleet launches per cache
    #: miss it witnesses (the §5 amplification / DoS vector).
    hydra_amplification_walks: float = 2.5
    #: Probability a user's DHT walk is witnessed by the PL hydra fleet.
    hydra_fleet_visibility: float = 0.9
    #: The fleet's provider-record cache TTL (misses trigger lookups).
    hydra_cache_ttl: float = 6 * 3600.0
    #: Size of each storage platform's pinned set at reference scale
    #: (scaled by network size and by the platform's pinned_set_scale).
    platform_set_size: int = 11000
    #: How many distinct platform nodes provide each pinned item.
    platform_replicas: int = 4
    #: Per-node cap on remembered provided CIDs (drives daily re-provides).
    max_provided_cids: int = 40
    #: How many of its provided CIDs a node re-announces per day (real
    #: IPFS re-provides its whole provider store every 12-24 h, so the
    #: default covers the full capped set).
    daily_reprovide_sample: int = 40
    #: Probability a freshly published user item is *also* pinned at a
    #: storage platform (pinata et al. ingest user uploads) — one of the
    #: §6 mechanisms pulling content into the cloud.
    user_pin_prob: float = 0.35
    #: Probability a platform-pinned item has a user co-provider (the
    #: original uploader — an NFT creator's own node, say) that keeps
    #: re-providing it.
    platform_coprovider_prob: float = 0.85
    #: Class mix of those co-providers.
    coprovider_class_weights: Dict[NodeClass, float] = field(
        default_factory=lambda: {
            NodeClass.NAT_CLIENT: 0.50,
            NodeClass.RESIDENTIAL_EPHEMERAL: 0.12,
            NodeClass.RESIDENTIAL_STABLE: 0.26,
            NodeClass.CLOUD_STABLE: 0.12,
        }
    )
    #: Per-item popularity damping for platform content: the pinned sets
    #: are long-tail (billions of rarely-requested NFT assets).
    platform_weight_scale: float = 0.35
    #: Daily re-provide fraction logged for platforms (they re-announce
    #: every CID; capture keeps a sample).
    platform_reprovide_share: float = 1.0
    #: "Other" (join/maintenance) walks per online server per hour.
    other_rate: float = 0.45
    #: Cap on provider records tracked per CID (memory guard; far above
    #: what the analyses need).
    max_providers_per_cid: int = 200


class TrafficEngine:
    """Drives daily content activity over an overlay."""

    def __init__(
        self,
        overlay: Overlay,
        catalog: ContentCatalog,
        hydra: HydraBooster,
        bitswap_monitor: BitswapMonitor,
        config: Optional[WorkloadConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.overlay = overlay
        self.catalog = catalog
        self.hydra = hydra
        self.monitor = bitswap_monitor
        self.config = config or WorkloadConfig()
        self.rng = rng or random.Random(overlay.world.profile.seed + 4)
        self._pl_hydra_nodes: List[Node] = [
            node for node in overlay.nodes if node.spec.platform == "hydra"
        ]
        #: the PL hydra fleet's provider-record cache: CID -> last refresh.
        self._amp_cache: Dict[CID, float] = {}
        #: user uploads ingested by pinning platforms: node -> CIDs.
        self._platform_pins: Dict[Node, OrderedCIDSet] = {}
        self._indexer_fleet_sizes: Dict[str, int] = {}
        for node in overlay.nodes:
            platform = node.spec.platform or ""
            if platform in self.config.indexer_rates:
                self._indexer_fleet_sizes[platform] = (
                    self._indexer_fleet_sizes.get(platform, 0) + 1
                )
        self.stats = {
            "downloads": 0,
            "publishes": 0,
            "bitswap_hits": 0,
            "dht_walks": 0,
            "amplified_walks": 0,
        }

    # ------------------------------------------------------------------
    # capture helpers
    # ------------------------------------------------------------------

    def _network_size(self) -> int:
        return max(len(self.overlay.oracle), 1)

    def _capture(self, walk_messages: int) -> int:
        return self.hydra.capture_count(walk_messages, self._network_size(), self.rng)

    def _log_dht(
        self,
        node: Node,
        message_type: MessageType,
        cid: Optional[CID],
        walk_messages: int,
        via_relay=None,
    ) -> None:
        """Log the captured subset of a walk's messages at the Hydra."""
        captured = self._capture(walk_messages)
        if captured <= 0 or node.peer is None or not node.ips:
            return
        from repro.world.ipspace import format_ip

        now = self.overlay.now
        for _ in range(captured):
            # Multihomed nodes originate requests from any of their
            # announced interfaces.
            sender_ip = format_ip(self.rng.choice(node.ips))
            self.hydra.record(
                timestamp=now,
                sender=node.peer,
                sender_ip=sender_ip,
                message_type=message_type,
                target_cid=cid,
                via_relay=via_relay,
            )

    # ------------------------------------------------------------------
    # the three activity types
    # ------------------------------------------------------------------

    def download(self, node: Node) -> None:
        """One content retrieval: Bitswap broadcast, then DHT on miss."""
        config = self.config
        self.stats["downloads"] += 1
        missing_prob = config.missing_content_prob
        if node.node_class is NodeClass.GATEWAY:
            # Gateway URLs mostly reference content that exists; dead-CID
            # requests are a fringe of their HTTP traffic.
            missing_prob *= 0.3
        missing = self.rng.random() < missing_prob
        item = None if missing else self.catalog.sample_request(self.rng)
        cid = CID.generate(self.rng) if item is None else item.cid
        is_indexer = node.spec.platform in config.indexer_rates

        if is_indexer:
            # Automated resolvers query the DHT directly, never Bitswap,
            # and do not become providers.
            self.stats["dht_walks"] += 1
            self._log_dht(node, MessageType.GET_PROVIDERS, cid, config.download_walk_contacts)
            self._hydra_amplification(cid)
            return

        self.monitor.observe_broadcast(self.overlay.now, node, cid)

        hit_prob = config.bitswap_hit_probs[node.node_class]
        if node.node_class is NodeClass.GATEWAY and item is not None and isinstance(
            item.publisher, str
        ):
            hit_prob = config.gateway_platform_hit_prob
        if item is not None and self.rng.random() < hit_prob:
            self.stats["bitswap_hits"] += 1
            self._maybe_reprovide(node, cid)
            return

        # DHT walk (FindProviders).
        self.stats["dht_walks"] += 1
        self._log_dht(node, MessageType.GET_PROVIDERS, cid, config.download_walk_contacts)
        self._hydra_amplification(cid)

        if item is not None and self.overlay.providers.has_records(cid, self.overlay.now):
            self._maybe_reprovide(node, cid)

    def _hydra_amplification(self, cid: CID) -> None:
        """Protocol-Labs hydra heads proactively look up cache misses."""
        config = self.config
        if not self._pl_hydra_nodes:
            return
        if self.rng.random() >= config.hydra_fleet_visibility:
            return
        now = self.overlay.now
        last = self._amp_cache.get(cid)
        if last is not None and now - last < config.hydra_cache_ttl:
            return  # fleet cache hit: no proactive lookup
        self._amp_cache[cid] = now
        walks = int(config.hydra_amplification_walks)
        if self.rng.random() < config.hydra_amplification_walks - walks:
            walks += 1
        for _ in range(walks):
            hydra_node = self.rng.choice(self._pl_hydra_nodes)
            if hydra_node.online:
                self.stats["amplified_walks"] += 1
                self._log_dht(
                    hydra_node, MessageType.GET_PROVIDERS, cid, config.download_walk_contacts
                )

    def induced_amplification(self, cid: CID, rng: random.Random) -> List[Node]:
        """Fleet lookups triggered by a request aimed *at* the fleet.

        The adversarial variant of :meth:`_hydra_amplification`: an
        attacker sends its cache-missing request straight to the PL
        hydra heads (the §5 amplification vector), so no visibility draw
        applies, and all randomness comes from the caller's attack RNG —
        the honest engine stream is untouched.  Returns the online fleet
        nodes that launched a walk; the caller logs their traffic and
        tags them as induced actors in the ground truth.
        """
        config = self.config
        if not self._pl_hydra_nodes:
            return []
        now = self.overlay.now
        last = self._amp_cache.get(cid)
        if last is not None and now - last < config.hydra_cache_ttl:
            return []
        self._amp_cache[cid] = now
        walks = int(config.hydra_amplification_walks)
        if rng.random() < config.hydra_amplification_walks - walks:
            walks += 1
        launched = []
        for _ in range(walks):
            hydra_node = rng.choice(self._pl_hydra_nodes)
            if hydra_node.online:
                self.stats["amplified_walks"] += 1
                launched.append(hydra_node)
        return launched

    def _maybe_reprovide(self, node: Node, cid: CID) -> None:
        if self.rng.random() >= self.config.reprovide_probs[node.node_class]:
            return
        self.publish(node, cid=cid, fresh=False)

    def publish(self, node: Node, cid: Optional[CID] = None, fresh: bool = True) -> None:
        """One Provide(): store the record, log the advertisement walk."""
        if not node.online:
            return
        if cid is None:
            item = self.catalog.mint_user_item(self.overlay_clock_day, node.spec.index)
            cid = item.cid
            if fresh and self.rng.random() < self.config.user_pin_prob:
                self._pin_at_platform(cid)
        record = self.overlay.publish_provider_record(node, cid)
        if record is None:
            return
        while len(node.provided_cids) > self.config.max_provided_cids:
            node.provided_cids.pop_oldest()
        self.stats["publishes"] += 1
        via_relay = None
        if not node.is_dht_server and node.relay is not None:
            via_relay = node.relay.peer
        self._log_dht(
            node, MessageType.ADD_PROVIDER, cid, self.config.advert_walk_contacts, via_relay
        )

    def _pin_at_platform(self, cid: CID) -> None:
        """Ingest a user upload at a random pinning/storage platform."""
        candidates = [
            node
            for node in self.overlay.nodes
            if node.online
            and node.spec.platform is not None
            and node.node_class is NodeClass.PLATFORM
            and node.spec.platform not in self.config.indexer_rates
            and node.spec.platform != "hydra"
        ]
        if not candidates:
            return
        pinner = self.rng.choice(candidates)
        self._platform_pins.setdefault(pinner, OrderedCIDSet()).add(cid)
        self.overlay.publish_provider_record(pinner, cid)

    def other_walk(self, node: Node) -> None:
        """Join/maintenance FIND_NODE traffic (the §5 'other' 3 %)."""
        if node.peer is None or not node.ips:
            return
        self._log_dht(
            node, MessageType.FIND_NODE, None, self.config.other_walk_contacts
        )

    # ------------------------------------------------------------------
    # daily driver
    # ------------------------------------------------------------------

    def seed_platform_content(self) -> None:
        """Mint and provide each storage platform's pinned set (day 0)."""
        scale = len(self.overlay.oracle) / 2500.0
        for platform in self.overlay.world.profile.platforms:
            if platform.role not in ("storage", "pinning"):
                continue
            size = max(
                100, int(self.config.platform_set_size * scale * platform.pinned_set_scale)
            )
            items = self.catalog.mint_platform_set(
                platform.name, size, weight_scale=self.config.platform_weight_scale
            )
            online_nodes = [
                node
                for node in self.overlay.nodes
                if node.spec.platform == platform.name and node.online
            ]
            if not online_nodes:
                continue
            replicas = min(self.config.platform_replicas, len(online_nodes))
            coprovider_pools = {
                cls: self.overlay.nodes_of_class(cls)
                for cls in self.config.coprovider_class_weights
            }
            classes = list(self.config.coprovider_class_weights)
            weights = [self.config.coprovider_class_weights[cls] for cls in classes]
            for item in items:
                for node in self.rng.sample(online_nodes, replicas):
                    self.overlay.publish_provider_record(node, item.cid)
                # The original uploader often keeps providing the item
                # alongside the pinning service.
                if self.rng.random() < self.config.platform_coprovider_prob:
                    pool = coprovider_pools[self.rng.choices(classes, weights=weights)[0]]
                    if pool:
                        uploader = self.rng.choice(pool)
                        uploader.provided_cids.add(item.cid)
                        if uploader.online:
                            self.overlay.publish_provider_record(uploader, item.cid)

    def platform_reprovide_pass(self) -> None:
        """Daily re-announcement of every pinned CID by storage platforms.

        Records are refreshed exactly; the Hydra log receives the
        capture-sampled share of the advertisement walks.
        """
        for platform in self.overlay.world.profile.platforms:
            if platform.role not in ("storage", "pinning"):
                continue
            items = self.catalog.platform_items(platform.name)
            if not items:
                continue
            nodes = [
                node
                for node in self.overlay.nodes
                if node.spec.platform == platform.name and node.online
            ]
            if not nodes:
                continue
            share = self.config.platform_reprovide_share
            for item in items:
                if share < 1.0 and self.rng.random() >= share:
                    continue
                node = self.rng.choice(nodes)
                self.overlay.publish_provider_record(node, item.cid)
                self._log_dht(
                    node,
                    MessageType.ADD_PROVIDER,
                    item.cid,
                    self.config.advert_walk_contacts,
                )
        # Pinned user uploads are re-announced by their pinning node.
        day = self.overlay_clock_day
        for node, cids in self._platform_pins.items():
            if not node.online:
                continue
            for cid in list(cids):
                item = self.catalog.by_cid.get(cid)
                if item is not None and not item.alive_on(day):
                    cids.discard(cid)
                    continue
                self.overlay.publish_provider_record(node, cid)
                self._log_dht(
                    node, MessageType.ADD_PROVIDER, cid, self.config.advert_walk_contacts
                )

    def user_reprovide_pass(self) -> None:
        """Daily re-announcement of previously provided content.

        Real IPFS nodes re-provide everything in their provider store
        every 12-24 h; this is what keeps user content resolvable beyond
        the 24 h record TTL and a large source of advertisement traffic.
        """
        config = self.config
        for node in list(self.overlay.online_by_peer.values()):
            if node.node_class in (NodeClass.PLATFORM, NodeClass.GATEWAY):
                continue  # platforms have their own pass; gateways cache
            if not node.provided_cids:
                continue
            cids = list(node.provided_cids)
            if len(cids) > config.daily_reprovide_sample:
                cids = self.rng.sample(cids, config.daily_reprovide_sample)
            for cid in cids:
                item = self.catalog.by_cid.get(cid)
                if item is not None and not item.alive_on(self.overlay_clock_day):
                    node.provided_cids.discard(cid)
                    continue
                self.publish(node, cid=cid, fresh=False)

    @property
    def overlay_clock_day(self) -> int:
        return self.overlay.scheduler.clock.day

    def run_tick(self, hours: float) -> None:
        """Generate ``hours`` worth of traffic from the current online set."""
        config = self.config
        online = list(self.overlay.online_by_peer.values())
        # Gateways serve the web-user population: their volume grows with
        # the network, not with the (fixed, 119-node) gateway fleet.
        gateway_scale = max(len(self.overlay.oracle), 1) / 2500.0
        for node in online:
            weight = node.spec.activity_weight
            platform = node.spec.platform or ""
            if platform in config.indexer_rates:
                fleet = self._indexer_fleet_sizes.get(platform, 1)
                rate = config.indexer_rates[platform] / fleet * gateway_scale * hours
            else:
                rate = config.request_rates[node.node_class] * weight * hours
                if node.node_class is NodeClass.GATEWAY:
                    rate *= gateway_scale * config.gateway_rate_multipliers.get(
                        platform, 1.0
                    )
            for _ in range(_poisson(rate, self.rng)):
                self.download(node)
            rate = config.publish_rates[node.node_class] * weight * hours
            for _ in range(_poisson(rate, self.rng)):
                self.publish(node)
        # Join / maintenance traffic.
        servers = [node for node in online if node.is_dht_server]
        if servers:
            walks = _poisson(config.other_rate * len(servers) * hours, self.rng)
            for _ in range(walks):
                self.other_walk(self.rng.choice(servers))

    def run_day(self, ticks_per_day: int = 4) -> None:
        """One simulated day: index content, re-provide, then traffic ticks
        interleaved with the churn events on the scheduler."""
        day = self.overlay_clock_day
        self.catalog.build_day_index(day)
        self.platform_reprovide_pass()
        self.user_reprovide_pass()
        hours = 24.0 / ticks_per_day
        for _ in range(ticks_per_day):
            target = self.overlay.now + hours * SECONDS_PER_HOUR
            self.run_tick(hours)
            self.overlay.scheduler.run_until(min(target, (day + 1) * SECONDS_PER_DAY))


def _poisson(mean: float, rng: random.Random) -> int:
    """Poisson sample (Knuth for small means, normal approx for large)."""
    if mean <= 0.0:
        return 0
    if mean > 30.0:
        value = int(rng.gauss(mean, mean ** 0.5) + 0.5)
        return max(0, value)
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
