"""The population of content items and their request popularity.

The paper finds that the vast majority of CIDs are downloaded or
advertised for only 1-3 days, suggesting IPFS is mostly used for direct
content transfer rather than persistent storage, while persistent content
is held by cloud storage platforms (§5, Fig. 9).  The catalog models both
populations: short-lived user content and long-lived platform sets.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ids.cid import CID


@dataclass
class ContentItem:
    """One published data item.

    :ivar cid: the item's identifier.
    :ivar publisher: opaque publisher tag (spec index or platform name).
    :ivar created_day: simulation day the item appeared.
    :ivar lifetime_days: days during which the item attracts requests.
    :ivar weight: relative request popularity.
    """

    cid: CID
    publisher: object
    created_day: int
    lifetime_days: int
    weight: float = 1.0

    def alive_on(self, day: int) -> bool:
        return self.created_day <= day < self.created_day + self.lifetime_days


def sample_user_lifetime(rng: random.Random) -> int:
    """Lifetime of user-published content: heavily skewed to 1-3 days."""
    roll = rng.random()
    if roll < 0.55:
        return 1
    if roll < 0.75:
        return 2
    if roll < 0.86:
        return 3
    # Exponential tail for the minority of longer-lived items.
    return 4 + int(rng.expovariate(0.35))


def sample_popularity_weight(rng: random.Random, alpha: float = 1.1) -> float:
    """Pareto-distributed popularity — a few items draw most requests."""
    return rng.paretovariate(alpha)


class ContentCatalog:
    """All content items, with per-day weighted request sampling."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(7)
        self.items: List[ContentItem] = []
        self.by_cid: Dict[CID, ContentItem] = {}
        self._index_day: Optional[int] = None
        self._alive: List[ContentItem] = []
        self._cumulative: List[float] = []

    def __len__(self) -> int:
        return len(self.items)

    def add(self, item: ContentItem) -> ContentItem:
        self.items.append(item)
        self.by_cid[item.cid] = item
        if self._index_day is not None and item.alive_on(self._index_day):
            # Keep the day index usable without a full rebuild.
            self._alive.append(item)
            last = self._cumulative[-1] if self._cumulative else 0.0
            self._cumulative.append(last + item.weight)
        return item

    def mint_user_item(self, day: int, publisher: object) -> ContentItem:
        """Create a fresh user-published item with skewed lifetime/popularity."""
        item = ContentItem(
            cid=CID.generate(self.rng),
            publisher=publisher,
            created_day=day,
            lifetime_days=sample_user_lifetime(self.rng),
            weight=sample_popularity_weight(self.rng),
        )
        return self.add(item)

    def mint_platform_set(
        self, platform: str, size: int, weight_scale: float = 1.0, horizon_days: int = 4000
    ) -> List[ContentItem]:
        """A persistent content set pinned by a storage platform."""
        items = []
        for _ in range(size):
            items.append(
                self.add(
                    ContentItem(
                        cid=CID.generate(self.rng),
                        publisher=platform,
                        created_day=0,
                        lifetime_days=horizon_days,
                        weight=sample_popularity_weight(self.rng) * weight_scale,
                    )
                )
            )
        return items

    def build_day_index(self, day: int) -> None:
        """Prepare O(log n) weighted sampling among items alive on ``day``."""
        self._index_day = day
        self._alive = [item for item in self.items if item.alive_on(day)]
        cumulative = []
        total = 0.0
        for item in self._alive:
            if isinstance(item.publisher, str):
                # Platform-pinned content stays popular (persistent sets).
                total += item.weight
            else:
                # User content decays: older items attract fewer requests.
                age = day - item.created_day
                total += item.weight / (1.0 + 0.8 * age)
            cumulative.append(total)
        self._cumulative = cumulative

    def alive_items(self, day: int) -> List[ContentItem]:
        return [item for item in self.items if item.alive_on(day)]

    def sample_request(self, rng: random.Random) -> Optional[ContentItem]:
        """Draw an item proportionally to its (recency-decayed) weight.

        Requires :meth:`build_day_index` to have been called for the
        current day; returns ``None`` when nothing is alive.
        """
        if not self._cumulative:
            return None
        total = self._cumulative[-1]
        index = bisect.bisect_left(self._cumulative, rng.random() * total)
        index = min(index, len(self._alive) - 1)
        return self._alive[index]

    def platform_items(self, platform: str) -> List[ContentItem]:
        return [item for item in self.items if item.publisher == platform]
