"""Content: blocks, catalogs and request popularity.

* :mod:`repro.content.blocks` — chunking data into content-addressed
  blocks with a flat DAG root,
* :mod:`repro.content.catalog` — the population of content items, their
  publishers, lifetimes and request popularity.

The traffic engine that used to live here is now the
:mod:`repro.workload` package (``repro.content.workload`` remains as a
deprecation shim); the re-exports below keep old call sites working.
"""

from repro.content.blocks import chunk_data, DagObject
from repro.content.catalog import ContentCatalog, ContentItem

__all__ = [
    "ContentCatalog",
    "ContentItem",
    "DagObject",
    "TrafficEngine",
    "WorkloadConfig",
    "chunk_data",
]


def __getattr__(name: str):
    # Lazy: the engine imports the catalog, so an eager re-export here
    # would be circular now that the engine lives in repro.workload.
    if name in ("TrafficEngine", "WorkloadConfig"):
        from repro.workload import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
