"""Content: blocks, catalogs, popularity and workload generation.

* :mod:`repro.content.blocks` — chunking data into content-addressed
  blocks with a flat DAG root,
* :mod:`repro.content.catalog` — the population of content items, their
  publishers, lifetimes and request popularity,
* :mod:`repro.content.workload` — the calibrated traffic engine driving
  downloads, advertisements and platform re-provides.
"""

from repro.content.blocks import chunk_data, DagObject
from repro.content.catalog import ContentCatalog, ContentItem
from repro.content.workload import TrafficEngine, WorkloadConfig

__all__ = [
    "ContentCatalog",
    "ContentItem",
    "DagObject",
    "TrafficEngine",
    "WorkloadConfig",
    "chunk_data",
]
