"""Streaming per-peer windowed features over the monitor logs.

The extractor is single-pass: each Hydra/Bitswap entry updates one
accumulator keyed by ``(window, sender)``; nothing is buffered beyond
the per-peer sets, so it scales to disk-backed logs streamed through
:class:`~repro.store.eventlog.EventLog`.

Feature notes:

* *Targets* are DHT keys (a CID's key, or a FIND_NODE's raw key).  The
  capture model logs several messages per walk for the *same* target, so
  ``distinct_targets / messages`` naturally sits near the inverse of the
  per-walk capture mean for bulk-but-honest advertisers — much lower for
  record spammers hammering a fixed CID set.
* ``top_bucket_*`` measure target concentration inside one
  ``focus_bits``-bit keyspace bucket.  Many *distinct* keys inside one
  narrow bucket is the Sybil-reconnaissance fingerprint: honest repeated
  lookups of a hot CID concentrate too, but on a single key.
* ``unseen_targets`` counts distinct targets whose globally-first log
  appearance came from this peer in this window — ≈1 for the
  amplification attacker's always-fresh CIDs, low for indexers and the
  hydra fleet, whose targets exist in the catalog and have usually been
  advertised (and hence logged) before.
* ``first_seen`` marks the peer's first appearance across both logs —
  the churn-bomb's one-shot identities are first-seen, FIND_NODE-only
  and Bitswap-silent, en masse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ids.keys import KEY_BITS
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, MessageType
from repro.monitors.bitswap_monitor import BitswapLogEntry

DEFAULT_WINDOW_SECONDS = 21_600.0  # one campaign tick at 4 ticks/day
DEFAULT_FOCUS_BITS = 12


@dataclass
class PeerWindowFeatures:
    """One peer's behaviour inside one time window, as a monitor sees it."""

    window_start: float
    window_end: float
    peer: PeerID
    messages: int = 0
    get_providers: int = 0
    add_provider: int = 0
    find_node: int = 0
    targeted: int = 0
    distinct_targets: int = 0
    unseen_targets: int = 0
    top_bucket_count: int = 0
    top_bucket_distinct: int = 0
    first_ts: float = 0.0
    last_ts: float = 0.0
    first_seen: bool = False
    bitswap_broadcasts: int = 0
    bitswap_distinct_cids: int = 0

    @property
    def top_bucket_share(self) -> float:
        """Fraction of targeted messages aimed into the hottest bucket."""
        return self.top_bucket_count / self.targeted if self.targeted else 0.0

    @property
    def distinct_ratio(self) -> float:
        """Distinct targets per targeted message (fan-out vs. repetition)."""
        return self.distinct_targets / self.targeted if self.targeted else 0.0

    @property
    def unseen_ratio(self) -> float:
        """Share of this peer's distinct targets that were globally new."""
        return self.unseen_targets / self.distinct_targets if self.distinct_targets else 0.0

    @property
    def span(self) -> float:
        """Active time span inside the window (inter-arrival summary)."""
        return self.last_ts - self.first_ts

    @property
    def mean_interarrival(self) -> float:
        events = self.messages + self.bitswap_broadcasts
        return self.span / (events - 1) if events > 1 else 0.0


@dataclass
class _Acc:
    first_ts: float
    last_ts: float
    messages: int = 0
    get_providers: int = 0
    add_provider: int = 0
    find_node: int = 0
    targeted: int = 0
    targets: Set[int] = field(default_factory=set)
    unseen: Set[int] = field(default_factory=set)
    bucket_counts: Dict[int, int] = field(default_factory=dict)
    bucket_targets: Dict[int, Set[int]] = field(default_factory=dict)
    bitswap_broadcasts: int = 0
    bitswap_cids: Set[int] = field(default_factory=set)


class FeatureExtractor:
    """Single-pass feature accumulation over the two monitor logs.

    Feed entries in log order (both logs are append-ordered by
    timestamp); ``unseen_targets`` depends on global first-appearance
    order within the Hydra stream.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        focus_bits: int = DEFAULT_FOCUS_BITS,
    ) -> None:
        self.window_seconds = window_seconds
        self.focus_bits = focus_bits
        self._accs: Dict[Tuple[int, PeerID], _Acc] = {}
        self._seen_targets: Set[int] = set()

    def _acc(self, timestamp: float, peer: PeerID) -> _Acc:
        window = int(timestamp // self.window_seconds)
        acc = self._accs.get((window, peer))
        if acc is None:
            acc = _Acc(first_ts=timestamp, last_ts=timestamp)
            self._accs[(window, peer)] = acc
        else:
            acc.last_ts = max(acc.last_ts, timestamp)
        return acc

    def add_hydra(self, entry: MessageEnvelope) -> None:
        acc = self._acc(entry.timestamp, entry.sender)
        acc.messages += 1
        if entry.message_type is MessageType.GET_PROVIDERS:
            acc.get_providers += 1
        elif entry.message_type is MessageType.ADD_PROVIDER:
            acc.add_provider += 1
        elif entry.message_type is MessageType.FIND_NODE:
            acc.find_node += 1
        target = entry.target_key
        if target is None and entry.target_cid is not None:
            target = entry.target_cid.dht_key
        if target is None:
            return
        acc.targeted += 1
        if target not in self._seen_targets:
            self._seen_targets.add(target)
            acc.unseen.add(target)
        acc.targets.add(target)
        bucket = target >> (KEY_BITS - self.focus_bits)
        acc.bucket_counts[bucket] = acc.bucket_counts.get(bucket, 0) + 1
        acc.bucket_targets.setdefault(bucket, set()).add(target)

    def add_bitswap(self, entry: BitswapLogEntry) -> None:
        acc = self._acc(entry.timestamp, entry.sender)
        acc.bitswap_broadcasts += 1
        acc.bitswap_cids.add(entry.cid.dht_key)

    def extract(
        self,
        hydra_entries: Iterable[MessageEnvelope],
        bitswap_entries: Iterable[BitswapLogEntry] = (),
    ) -> List[PeerWindowFeatures]:
        for entry in hydra_entries:
            self.add_hydra(entry)
        for entry in bitswap_entries:
            self.add_bitswap(entry)
        return self.finalize()

    def finalize(self) -> List[PeerWindowFeatures]:
        """Materialize features, sorted by (window, peer key).

        ``first_seen`` is resolved here from each peer's earliest window
        across both streams, so the hydra/bitswap feed order between the
        two ``add_*`` methods does not matter.
        """
        first_window: Dict[PeerID, int] = {}
        for window, peer in self._accs:
            if peer not in first_window or window < first_window[peer]:
                first_window[peer] = window
        features = []
        for (window, peer), acc in self._accs.items():
            if acc.bucket_counts:
                top_bucket, top_count = max(
                    acc.bucket_counts.items(), key=lambda kv: (kv[1], -kv[0])
                )
                top_distinct = len(acc.bucket_targets[top_bucket])
            else:
                top_count = top_distinct = 0
            features.append(
                PeerWindowFeatures(
                    window_start=window * self.window_seconds,
                    window_end=(window + 1) * self.window_seconds,
                    peer=peer,
                    messages=acc.messages,
                    get_providers=acc.get_providers,
                    add_provider=acc.add_provider,
                    find_node=acc.find_node,
                    targeted=acc.targeted,
                    distinct_targets=len(acc.targets),
                    unseen_targets=len(acc.unseen),
                    top_bucket_count=top_count,
                    top_bucket_distinct=top_distinct,
                    first_ts=acc.first_ts,
                    last_ts=acc.last_ts,
                    first_seen=first_window[peer] == window,
                    bitswap_broadcasts=acc.bitswap_broadcasts,
                    bitswap_distinct_cids=len(acc.bitswap_cids),
                )
            )
        features.sort(key=lambda f: (f.window_start, f.peer.dht_key))
        return features
