"""Exact detector scoring against simulator ground truth.

An alert is a true positive iff its peer is adversary-linked in the
ground truth (``attacker`` or ``induced``) and its window overlaps the
labelled attack window (± one feature window of slack at the front,
``grace`` at the back, for boundary-straddling activity).

Recall is deliberately stricter than precision credit: the denominator
is the *observable* attacker identities of the detector's target attack
— adversary-controlled peers that produced at least one logged message.
Induced accomplices (hydra fleet nodes) never enter the denominator;
unobservable attackers (e.g. flood nodes the Bitswap monitor happens to
have no connection to) cannot be detected by any log-based method and
are excluded rather than silently forgiven via a lower floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.attack.ground_truth import GroundTruthLog
from repro.detect.detectors import Alert, Detector, default_detectors
from repro.detect.features import (
    DEFAULT_FOCUS_BITS,
    DEFAULT_WINDOW_SECONDS,
    FeatureExtractor,
    PeerWindowFeatures,
)
from repro.ids.peerid import PeerID


@dataclass
class DetectorScore:
    """Exact outcome of one detector against its target attack."""

    detector: str
    attack: str
    true_positives: int
    false_positives: int
    detected_attackers: int
    observable_attackers: int
    precision: float
    recall: float
    f1: float
    #: seconds from attack start to the first true-positive window;
    #: None when the detector never fired correctly (or no attack ran).
    time_to_detection: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class ScoreCard:
    """All detector scores plus the micro-averaged overall numbers."""

    per_detector: List[DetectorScore]
    num_alerts: int
    overall_precision: float
    overall_recall: float
    overall_f1: float

    def score_for(self, detector_name: str) -> Optional[DetectorScore]:
        for score in self.per_detector:
            if score.detector == detector_name:
                return score
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_alerts": self.num_alerts,
            "overall_precision": self.overall_precision,
            "overall_recall": self.overall_recall,
            "overall_f1": self.overall_f1,
            "per_detector": [score.to_dict() for score in self.per_detector],
        }

    def render(self) -> str:
        return render_scorecard(self.to_dict())


def render_scorecard(card: Dict[str, object]) -> str:
    """Human-readable scorecard (CLI and report output)."""
    lines = [
        f"{'detector':<24} {'attack':<20} {'prec':>6} {'rec':>6} {'f1':>6} "
        f"{'tp':>5} {'fp':>5} {'ttd[h]':>7}"
    ]
    for row in card["per_detector"]:
        ttd = row["time_to_detection"]
        ttd_text = f"{ttd / 3600.0:7.1f}" if ttd is not None else "      -"
        lines.append(
            f"{row['detector']:<24} {row['attack']:<20} "
            f"{row['precision']:6.3f} {row['recall']:6.3f} {row['f1']:6.3f} "
            f"{row['true_positives']:5d} {row['false_positives']:5d} {ttd_text}"
        )
    lines.append(
        f"overall: precision {card['overall_precision']:.3f}  "
        f"recall {card['overall_recall']:.3f}  f1 {card['overall_f1']:.3f}  "
        f"({card['num_alerts']} alerts)"
    )
    return "\n".join(lines)


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def _ratio(numerator: int, denominator: int) -> float:
    """Vacuous truth convention: a 0/0 score is perfect, not broken."""
    return numerator / denominator if denominator else 1.0


def run_detection(
    hydra_entries: Iterable,
    bitswap_entries: Iterable = (),
    ground_truth: Optional[GroundTruthLog] = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    focus_bits: int = DEFAULT_FOCUS_BITS,
    detectors: Optional[List[Detector]] = None,
    grace: Optional[float] = None,
) -> ScoreCard:
    """Extract features, run detectors, score against ground truth.

    Works with any iterables of Hydra envelopes / Bitswap entries —
    in-memory monitor logs or re-opened disk stores alike.  With no
    ground truth (or an empty one), every alert is a false positive and
    recalls are vacuously 1.0: the honest-baseline false-alarm check.
    """
    if grace is None:
        grace = window_seconds
    extractor = FeatureExtractor(window_seconds=window_seconds, focus_bits=focus_bits)
    features = extractor.extract(hydra_entries, bitswap_entries)
    observed_peers = {feature.peer for feature in features}

    windows: Dict[str, Tuple[float, float]] = {}
    peer_attack: Dict[PeerID, str] = {}
    attacker_kind: Dict[str, Set[PeerID]] = {}
    if ground_truth is not None:
        windows = ground_truth.windows()
        for entry in ground_truth:
            if entry.peer is None or entry.event not in ("attacker", "induced"):
                continue
            peer_attack.setdefault(entry.peer, entry.attack)
            if entry.event == "attacker":
                attacker_kind.setdefault(entry.attack, set()).add(entry.peer)

    by_window: Dict[float, List[PeerWindowFeatures]] = {}
    for feature in features:
        by_window.setdefault(feature.window_start, []).append(feature)

    if detectors is None:
        detectors = default_detectors()
    alerts: List[Alert] = []
    for window_start in sorted(by_window):
        window_features = by_window[window_start]
        for detector in detectors:
            alerts.extend(detector.window_alerts(window_start, window_features))

    def is_true_positive(alert: Alert) -> bool:
        attack = peer_attack.get(alert.peer)
        if attack is None:
            return False
        start, end = windows.get(attack, (float("-inf"), float("inf")))
        return start - window_seconds <= alert.window_start <= end + grace

    per_detector: List[DetectorScore] = []
    total_tp = total_fp = 0
    for detector in detectors:
        own_alerts = [alert for alert in alerts if alert.detector == detector.name]
        tp_alerts = [alert for alert in own_alerts if is_true_positive(alert)]
        tp, fp = len(tp_alerts), len(own_alerts) - len(tp_alerts)
        total_tp += tp
        total_fp += fp
        observable = attacker_kind.get(detector.attack, set()) & observed_peers
        detected = {
            alert.peer for alert in tp_alerts if alert.peer in observable
        }
        precision = _ratio(tp, tp + fp)
        recall = _ratio(len(detected), len(observable))
        attack_window = windows.get(detector.attack)
        ttd: Optional[float] = None
        if attack_window is not None:
            own_attack_hits = [
                alert.window_start
                for alert in tp_alerts
                if peer_attack.get(alert.peer) == detector.attack
            ]
            if own_attack_hits:
                ttd = max(0.0, min(own_attack_hits) - attack_window[0])
        per_detector.append(
            DetectorScore(
                detector=detector.name,
                attack=detector.attack,
                true_positives=tp,
                false_positives=fp,
                detected_attackers=len(detected),
                observable_attackers=len(observable),
                precision=precision,
                recall=recall,
                f1=_f1(precision, recall),
                time_to_detection=ttd,
            )
        )

    all_observable: Set[PeerID] = set()
    for attack, peers in attacker_kind.items():
        all_observable |= peers & observed_peers
    all_detected: Set[PeerID] = set()
    for alert in alerts:
        if is_true_positive(alert) and alert.peer in all_observable:
            all_detected.add(alert.peer)
    overall_precision = _ratio(total_tp, total_tp + total_fp)
    overall_recall = _ratio(len(all_detected), len(all_observable))
    return ScoreCard(
        per_detector=per_detector,
        num_alerts=len(alerts),
        overall_precision=overall_precision,
        overall_recall=overall_recall,
        overall_f1=_f1(overall_precision, overall_recall),
    )
