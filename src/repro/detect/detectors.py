"""Threshold detectors over the windowed features.

Each detector encodes one attack signature and names the attack it
targets — the scorer uses that to compute per-attack recall.  The
default thresholds are calibrated against the honest baseline of the
packaged scenarios (see ``tests/test_detect.py``): the binding
constraints are the heavy-tailed honest activity weights (whale clients
can emit hundreds of Bitswap broadcasts per window), the indexer
platforms' bulk GET_PROVIDERS volume and the storage platforms' daily
re-provide bursts (bulk ADD_PROVIDERs with a distinct ratio set by the
capture mean, ≈1/2.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.detect.features import PeerWindowFeatures
from repro.ids.peerid import PeerID


@dataclass(frozen=True)
class Alert:
    """One detector firing on one peer in one window."""

    detector: str
    attack: str
    peer: PeerID
    window_start: float
    score: float
    reason: str


class Detector:
    """A named threshold rule targeting one attack."""

    name = "abstract"
    attack = "abstract"

    def window_alerts(
        self, window_start: float, features: List[PeerWindowFeatures]
    ) -> List[Alert]:
        raise NotImplementedError

    def _alert(self, feature: PeerWindowFeatures, score: float, reason: str) -> Alert:
        return Alert(
            detector=self.name,
            attack=self.attack,
            peer=feature.peer,
            window_start=feature.window_start,
            score=score,
            reason=reason,
        )


@dataclass(frozen=True)
class SybilEclipseDetector(Detector):
    """Many *distinct* lookup keys packed into one narrow keyspace bucket.

    A 12-bit bucket is 1/4096 of the keyspace; honest traffic only
    concentrates there by repeating a single hot key (distinct ≈ 1).
    """

    min_targeted: int = 20
    min_focus: float = 0.75
    min_bucket_distinct: int = 6

    name = "sybil-eclipse-focus"
    attack = "sybil-eclipse"

    def window_alerts(self, window_start, features):
        alerts = []
        for f in features:
            if (
                f.targeted >= self.min_targeted
                and f.top_bucket_share >= self.min_focus
                and f.top_bucket_distinct >= self.min_bucket_distinct
            ):
                alerts.append(
                    self._alert(
                        f,
                        score=f.top_bucket_share,
                        reason=(
                            f"{f.top_bucket_distinct} distinct keys, "
                            f"{f.top_bucket_share:.0%} of {f.targeted} lookups "
                            "in one keyspace bucket"
                        ),
                    )
                )
        return alerts


@dataclass(frozen=True)
class ProviderSpamDetector(Detector):
    """Bulk ADD_PROVIDER volume recycling a tiny CID set.

    Honest bulk advertisers (platform re-provide passes) announce each
    CID once per pass, so their distinct ratio sits at the capture mean
    (≈0.35); spammers hammer a fixed set and land two orders lower.
    """

    min_add_provider: int = 150
    max_distinct_ratio: float = 0.1

    name = "provider-spam-recycle"
    attack = "provider-spam"

    def window_alerts(self, window_start, features):
        alerts = []
        for f in features:
            if f.add_provider >= self.min_add_provider and (
                f.distinct_ratio <= self.max_distinct_ratio
            ):
                alerts.append(
                    self._alert(
                        f,
                        score=1.0 - f.distinct_ratio,
                        reason=(
                            f"{f.add_provider} provider announcements over only "
                            f"{f.distinct_targets} CIDs"
                        ),
                    )
                )
        return alerts


@dataclass(frozen=True)
class BitswapFloodDetector(Detector):
    """Raw want-have broadcast volume beyond any honest whale."""

    min_broadcasts: int = 1500

    name = "bitswap-flood-rate"
    attack = "bitswap-flood"

    def window_alerts(self, window_start, features):
        alerts = []
        for f in features:
            if f.bitswap_broadcasts >= self.min_broadcasts:
                alerts.append(
                    self._alert(
                        f,
                        score=float(f.bitswap_broadcasts),
                        reason=f"{f.bitswap_broadcasts} Bitswap broadcasts in one window",
                    )
                )
        return alerts


@dataclass(frozen=True)
class HydraAmplificationDetector(Detector):
    """High-volume lookups of CIDs nobody has ever mentioned before.

    Indexer platforms resolve *existing* content, so their targets have
    almost always been advertised (and therefore logged) earlier; the
    amplification attacker's always-fresh CIDs are globally new.
    """

    min_get_providers: int = 150
    min_distinct_targets: int = 50
    min_unseen_ratio: float = 0.8

    name = "amplification-novelty"
    attack = "hydra-amplification"

    def window_alerts(self, window_start, features):
        alerts = []
        for f in features:
            if (
                f.get_providers >= self.min_get_providers
                and f.distinct_targets >= self.min_distinct_targets
                and f.unseen_ratio >= self.min_unseen_ratio
            ):
                alerts.append(
                    self._alert(
                        f,
                        score=f.unseen_ratio,
                        reason=(
                            f"{f.get_providers} provider lookups, "
                            f"{f.unseen_ratio:.0%} of targets never seen before"
                        ),
                    )
                )
        return alerts


@dataclass(frozen=True)
class ChurnBombDetector(Detector):
    """A wave of first-seen, FIND_NODE-only, Bitswap-silent identities.

    Individual one-shot identities are indistinguishable from honest
    newcomers; the signature is the *count* per window.  ``skip_seconds``
    masks the campaign cold start, where every peer is first-seen.
    """

    min_new_peers: int = 60
    skip_seconds: float = 86_400.0

    name = "churn-bomb-wave"
    attack = "churn-bomb"

    def window_alerts(self, window_start, features):
        if window_start < self.skip_seconds:
            return []
        wave = [
            f
            for f in features
            if f.first_seen
            and f.messages == f.find_node
            and f.bitswap_broadcasts == 0
        ]
        if len(wave) < self.min_new_peers:
            return []
        return [
            self._alert(
                f,
                score=float(len(wave)),
                reason=f"one of {len(wave)} brand-new lookup-only identities this window",
            )
            for f in wave
        ]


def default_detectors() -> List[Detector]:
    """The packaged detector set, one per attack scenario."""
    return [
        SybilEclipseDetector(),
        ProviderSpamDetector(),
        BitswapFloodDetector(),
        HydraAmplificationDetector(),
        ChurnBombDetector(),
    ]
