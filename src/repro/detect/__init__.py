"""Online attack detection over the monitor vantage points.

What a real monitoring operator could do with the paper's instruments:
the Hydra-booster DHT log and the passive Bitswap monitor are the only
inputs — never simulator internals.  :mod:`repro.detect.features`
streams those logs into per-peer windowed features (rate, fan-out,
target-prefix concentration, novelty, inter-arrival),
:mod:`repro.detect.detectors` applies threshold rules per attack
signature, and :mod:`repro.detect.score` joins the alerts against the
simulator's ground truth (:mod:`repro.attack.ground_truth`) for *exact*
precision/recall/F1 and time-to-detection.
"""

from repro.detect.detectors import (
    Alert,
    BitswapFloodDetector,
    ChurnBombDetector,
    Detector,
    HydraAmplificationDetector,
    ProviderSpamDetector,
    SybilEclipseDetector,
    default_detectors,
)
from repro.detect.features import FeatureExtractor, PeerWindowFeatures
from repro.detect.score import DetectorScore, ScoreCard, render_scorecard, run_detection

__all__ = [
    "Alert",
    "BitswapFloodDetector",
    "ChurnBombDetector",
    "Detector",
    "DetectorScore",
    "FeatureExtractor",
    "HydraAmplificationDetector",
    "PeerWindowFeatures",
    "ProviderSpamDetector",
    "ScoreCard",
    "SybilEclipseDetector",
    "default_detectors",
    "render_scorecard",
    "run_detection",
]
