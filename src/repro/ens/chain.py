"""A minimal event-log blockchain.

Contracts append :class:`LogEvent` records; consumers read them back
through a paginated, Etherscan-like query API.  Consensus, gas and state
proofs are irrelevant to the paper's measurement (it only walks event
logs), so the chain is a strictly ordered append-only log with block
numbering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class LogEvent:
    """One emitted contract event."""

    address: str                 # emitting contract
    event: str                   # event name (topic0 stand-in)
    topics: Tuple[str, ...]      # indexed arguments
    data: Dict[str, object]      # non-indexed arguments
    block_number: int
    log_index: int


class Chain:
    """Append-only ordered event log with block numbering."""

    BLOCK_TIME = 12.0  # seconds per block, for timestamp mapping

    def __init__(self, genesis_block: int = 16_000_000) -> None:
        self.genesis_block = genesis_block
        self._events: List[LogEvent] = []
        self._current_block = genesis_block
        self._logs_in_block = 0

    @property
    def current_block(self) -> int:
        return self._current_block

    def mine(self, blocks: int = 1) -> int:
        """Advance the chain by ``blocks`` empty blocks."""
        if blocks < 0:
            raise ValueError("cannot mine a negative number of blocks")
        self._current_block += blocks
        self._logs_in_block = 0
        return self._current_block

    def emit(self, address: str, event: str, topics: Tuple[str, ...], data: Dict[str, object]) -> LogEvent:
        log = LogEvent(
            address=address,
            event=event,
            topics=topics,
            data=dict(data),
            block_number=self._current_block,
            log_index=self._logs_in_block,
        )
        self._events.append(log)
        self._logs_in_block += 1
        return log

    # -- the Etherscan-like read API ------------------------------------------

    def get_logs(
        self,
        address: Optional[str] = None,
        event: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
        page: int = 1,
        page_size: int = 1000,
    ) -> List[LogEvent]:
        """Paginated event-log query, newest pages last."""
        if page < 1:
            raise ValueError("pages are 1-indexed")
        to_block = to_block if to_block is not None else self._current_block
        matches = [
            log
            for log in self._events
            if (address is None or log.address == address)
            and (event is None or log.event == event)
            and from_block <= log.block_number <= to_block
        ]
        start = (page - 1) * page_size
        return matches[start : start + page_size]

    def iter_all_logs(self, address: str, event: Optional[str] = None, page_size: int = 1000):
        """Traverse the *full* history of a contract's logs, page by page —
        the paper's extraction loop."""
        page = 1
        while True:
            batch = self.get_logs(address=address, event=event, page=page, page_size=page_size)
            if not batch:
                return
            yield from batch
            page += 1

    def __len__(self) -> int:
        return len(self._events)
