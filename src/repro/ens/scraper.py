"""The Etherscan-style ENS extraction pipeline (paper §3).

Starting from a compiled set of resolver contracts, traverse the full
history of their event logs, filter for ``setContenthash`` calls, keep
records whose contenthash uses the ``ipfs-ns`` codec, and decode the CIDs
for subsequent provider resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ens.chain import Chain
from repro.ens.contracts import Contenthash
from repro.ids.cid import CID
from repro.ids.encoding import base32_decode


@dataclass
class ENSContenthashRecord:
    """One extracted ipfs-ns record."""

    node: str
    resolver: str
    block_number: int
    cid_string: str
    cid: Optional[CID]  # None when the CID string does not decode


@dataclass
class ENSScrapeResult:
    events_scanned: int = 0
    contenthash_events: int = 0
    records: List[ENSContenthashRecord] = field(default_factory=list)

    def cids(self) -> List[CID]:
        return [record.cid for record in self.records if record.cid is not None]


class ENSContenthashScraper:
    """Walks resolver event logs and extracts ipfs-ns contenthashes."""

    def __init__(self, chain: Chain, resolver_addresses: Sequence[str]) -> None:
        if not resolver_addresses:
            raise ValueError("need at least one resolver contract to scrape")
        self.chain = chain
        self.resolver_addresses = list(resolver_addresses)

    def scrape(self) -> ENSScrapeResult:
        """Extract the latest ipfs-ns contenthash per node."""
        result = ENSScrapeResult()
        latest: Dict[str, ENSContenthashRecord] = {}
        for address in self.resolver_addresses:
            for log in self.chain.iter_all_logs(address):
                result.events_scanned += 1
                if log.event != "ContenthashChanged":
                    continue
                result.contenthash_events += 1
                try:
                    contenthash = Contenthash.decode(str(log.data["hash"]))
                except (KeyError, ValueError):
                    continue
                if contenthash.codec != "ipfs-ns":
                    continue
                node = log.topics[0]
                latest[node] = ENSContenthashRecord(
                    node=node,
                    resolver=address,
                    block_number=log.block_number,
                    cid_string=contenthash.value,
                    cid=_decode_cid(contenthash.value),
                )
        result.records = list(latest.values())
        return result


def _decode_cid(text: str) -> Optional[CID]:
    """Decode a CIDv1 base32 string back into a :class:`CID`."""
    if not text.startswith("b"):
        return None
    try:
        binary = base32_decode(text[1:])
    except ValueError:
        return None
    # version (0x01) + codec + 34-byte multihash
    if len(binary) != 36 or binary[0] != 0x01 or binary[2:4] != b"\x12\x20":
        return None
    return CID(binary[4:])
