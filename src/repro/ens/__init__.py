"""The Ethereum Name Service substrate and its measurement.

ENS maps human-readable names to values (such as IPFS CIDs) via smart
contracts on Ethereum (paper §2).  The paper compiles 16 resolver
contracts, traverses their full event logs through the Etherscan API,
filters ``setContenthash`` calls (EIP-1577), keeps ``ipfs-ns`` records
and resolves each CID's providers (§3, Fig. 20).

* :mod:`repro.ens.chain` — an event-log blockchain model,
* :mod:`repro.ens.contracts` — registry, registrar and resolver
  contracts emitting the events,
* :mod:`repro.ens.scraper` — the Etherscan-style extraction pipeline,
* :mod:`repro.ens.seeding` — populating the name space.
"""

from repro.ens.chain import Chain, LogEvent
from repro.ens.contracts import ENSRegistry, EthRegistrar, PublicResolver, namehash
from repro.ens.scraper import ENSContenthashScraper

__all__ = [
    "Chain",
    "ENSContenthashScraper",
    "ENSRegistry",
    "EthRegistrar",
    "LogEvent",
    "PublicResolver",
    "namehash",
]
