"""ENS smart contracts: registry, registrar, resolvers.

Namespace management in ENS is governed by several contracts (paper §2):
the *Registry* maps every node to its owner, resolver and TTL; *Registrar*
contracts own individual TLDs (``.eth``); *resolver* contracts hold the
actual value mappings, including the EIP-1577 ``contenthash`` field that
can carry an IPFS CID.

The real namehash uses keccak-256; this model substitutes SHA-256 (the
only property used anywhere is collision-free name→node mapping).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ens.chain import Chain

ZERO_NODE = "0x" + "00" * 32


def _hash(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def namehash(name: str) -> str:
    """The ENS namehash of a dotted name (EIP-137 structure)."""
    node = b"\x00" * 32
    if name:
        for label in reversed(name.split(".")):
            if not label:
                raise ValueError(f"empty label in name: {name!r}")
            node = _hash(node + _hash(label.encode()))
    return "0x" + node.hex()


@dataclass(frozen=True)
class Contenthash:
    """An EIP-1577 contenthash value."""

    codec: str  # "ipfs-ns" | "ipns-ns" | "swarm-ns" | ...
    value: str  # CID string / key hash / swarm reference

    def encode(self) -> str:
        return f"{self.codec}://{self.value}"

    @classmethod
    def decode(cls, encoded: str) -> "Contenthash":
        codec, _, value = encoded.partition("://")
        if not codec or not value:
            raise ValueError(f"malformed contenthash: {encoded!r}")
        return cls(codec=codec, value=value)


@dataclass
class RegistryRecord:
    owner: str
    resolver: Optional[str] = None
    ttl: int = 0


class ENSRegistry:
    """The top-level node → (owner, resolver, ttl) mapping."""

    ADDRESS = "0x00000000000C2E074eC69A0dFb2997BA6C7d2e1e"

    def __init__(self, chain: Chain) -> None:
        self.chain = chain
        self._records: Dict[str, RegistryRecord] = {
            ZERO_NODE: RegistryRecord(owner="0xroot")
        }

    def owner(self, node: str) -> Optional[str]:
        record = self._records.get(node)
        return record.owner if record else None

    def resolver(self, node: str) -> Optional[str]:
        record = self._records.get(node)
        return record.resolver if record else None

    def set_subnode_owner(self, parent: str, label: str, owner: str, caller: str) -> str:
        parent_record = self._records.get(parent)
        if parent_record is None or parent_record.owner != caller:
            raise PermissionError(f"{caller} does not own parent node {parent}")
        node = "0x" + _hash(bytes.fromhex(parent[2:]) + _hash(label.encode())).hex()
        self._records[node] = RegistryRecord(owner=owner)
        self.chain.emit(
            self.ADDRESS, "NewOwner", (parent, label), {"owner": owner, "node": node}
        )
        return node

    def set_resolver(self, node: str, resolver: str, caller: str) -> None:
        record = self._records.get(node)
        if record is None or record.owner != caller:
            raise PermissionError(f"{caller} does not own node {node}")
        record.resolver = resolver
        self.chain.emit(self.ADDRESS, "NewResolver", (node,), {"resolver": resolver})


class EthRegistrar:
    """Ownership of ``.eth`` second-level names."""

    ADDRESS = "0x57f1887a8BF19b14fC0dF6Fd9B2acc9Af147eA85"

    def __init__(self, registry: ENSRegistry, chain: Chain) -> None:
        self.registry = registry
        self.chain = chain
        eth_node = namehash("eth")
        registry._records[eth_node] = RegistryRecord(owner=self.ADDRESS)
        self._eth_node = eth_node
        self._names: Dict[str, str] = {}  # label -> owner

    def register(self, label: str, owner: str) -> str:
        """Register ``<label>.eth``; returns the node."""
        if "." in label or not label:
            raise ValueError("registrar registers single .eth labels")
        if label in self._names:
            raise ValueError(f"{label}.eth already registered")
        self._names[label] = owner
        node = self.registry.set_subnode_owner(self._eth_node, label, owner, self.ADDRESS)
        self.chain.emit(
            self.ADDRESS, "NameRegistered", (label,), {"owner": owner, "node": node}
        )
        return node

    def is_registered(self, label: str) -> bool:
        return label in self._names


class PublicResolver:
    """A resolver contract with addr and EIP-1577 contenthash records."""

    def __init__(self, chain: Chain, registry: ENSRegistry, address: str) -> None:
        self.chain = chain
        self.registry = registry
        self.address = address
        self._addr: Dict[str, str] = {}
        self._contenthash: Dict[str, Contenthash] = {}

    def set_addr(self, node: str, addr: str, caller: str) -> None:
        self._require_owner(node, caller)
        self._addr[node] = addr
        self.chain.emit(self.address, "AddrChanged", (node,), {"addr": addr})

    def set_contenthash(self, node: str, contenthash: Contenthash, caller: str) -> None:
        """The EIP-1577 ``setContenthash`` call the paper filters for."""
        self._require_owner(node, caller)
        self._contenthash[node] = contenthash
        self.chain.emit(
            self.address,
            "ContenthashChanged",
            (node,),
            {"hash": contenthash.encode()},
        )

    def addr(self, node: str) -> Optional[str]:
        return self._addr.get(node)

    def contenthash(self, node: str) -> Optional[Contenthash]:
        return self._contenthash.get(node)

    def _require_owner(self, node: str, caller: str) -> None:
        if self.registry.owner(node) != caller:
            raise PermissionError(f"{caller} does not own {node}")
