"""Populating ENS with names and ipfs-ns contenthash records.

The referenced CIDs are drawn from the content the simulated network
actually hosts — mostly platform-pinned content plus some user-published
items — so the Fig. 20 pipeline (scrape → resolve providers → attribute)
measures real provider records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.content.catalog import ContentCatalog, ContentItem
from repro.ens.chain import Chain
from repro.ens.contracts import Contenthash, ENSRegistry, EthRegistrar, PublicResolver
from repro.ids.cid import CID

_LABEL_WORDS = (
    "vitalik", "degen", "wagmi", "mirror", "zora", "punk", "loot",
    "meta", "dao", "defi", "mint", "vault", "oracle", "stark",
)


@dataclass
class ENSSeedConfig:
    """How many names to register and where their content lives."""

    num_names: int = 600
    num_resolvers: int = 16
    #: Shares of contenthash targets by hosting category.  Persistent user
    #: content (websites kept alive by their publishers' daily re-provides)
    #: is supplied by the caller; ephemeral user content mostly rots away
    #: before resolution, as do dead CIDs.
    share_platform_content: float = 0.42
    share_persistent_user: float = 0.38
    share_ephemeral_user: float = 0.10
    share_dead_cids: float = 0.10
    #: Some owners update their contenthash several times; only the last
    #: value counts (the scraper keeps the latest per node).
    update_prob: float = 0.25


@dataclass
class ENSWorld:
    chain: Chain
    registry: ENSRegistry
    registrar: EthRegistrar
    resolvers: List[PublicResolver]
    names: List[Tuple[str, str]]  # (label, node)


def seed_ens_world(
    catalog: ContentCatalog,
    config: Optional[ENSSeedConfig] = None,
    rng: Optional[random.Random] = None,
    persistent_items: Optional[List[ContentItem]] = None,
) -> ENSWorld:
    """Build the chain, contracts and name records.

    :param persistent_items: long-lived user-published content (ENS
        websites); supplied by the campaign, which also keeps the items
        provided on the overlay.
    """
    config = config or ENSSeedConfig()
    rng = rng or random.Random(0xE45)
    chain = Chain()
    registry = ENSRegistry(chain)
    registrar = EthRegistrar(registry, chain)
    resolvers = [
        PublicResolver(chain, registry, address=f"0xresolver{index:02d}")
        for index in range(config.num_resolvers)
    ]

    platform_items = [item for item in catalog.items if isinstance(item.publisher, str)]
    user_items = [item for item in catalog.items if not isinstance(item.publisher, str)]
    persistent_items = persistent_items or []

    def pick_target() -> str:
        roll = rng.random()
        if roll < config.share_platform_content and platform_items:
            return rng.choice(platform_items).cid.to_base32()
        roll -= config.share_platform_content
        if roll < config.share_persistent_user and persistent_items:
            return rng.choice(persistent_items).cid.to_base32()
        roll -= config.share_persistent_user
        if roll < config.share_ephemeral_user and user_items:
            return rng.choice(user_items).cid.to_base32()
        # Dead content: a CID nobody provides (stale website, rotted NFT).
        return CID.generate(rng).to_base32()

    names: List[Tuple[str, str]] = []
    used_labels: set = set()
    for index in range(config.num_names):
        label = f"{rng.choice(_LABEL_WORDS)}{index}"
        if label in used_labels:
            continue
        used_labels.add(label)
        owner = f"0x{rng.getrandbits(160):040x}"
        node = registrar.register(label, owner)
        resolver = rng.choice(resolvers)
        registry.set_resolver(node, resolver.address, caller=owner)
        chain.mine(rng.randrange(1, 50))
        resolver.set_contenthash(node, Contenthash("ipfs-ns", pick_target()), caller=owner)
        while rng.random() < config.update_prob:
            chain.mine(rng.randrange(1, 500))
            resolver.set_contenthash(node, Contenthash("ipfs-ns", pick_target()), caller=owner)
        names.append((label, node))
    # A sprinkle of non-IPFS contenthashes the scraper must filter out.
    for index in range(config.num_names // 20):
        label = f"swarmsite{index}"
        owner = f"0x{rng.getrandbits(160):040x}"
        node = registrar.register(label, owner)
        resolver = rng.choice(resolvers)
        registry.set_resolver(node, resolver.address, caller=owner)
        resolver.set_contenthash(
            node, Contenthash("swarm-ns", f"{rng.getrandbits(256):064x}"), caller=owner
        )
    return ENSWorld(
        chain=chain, registry=registry, registrar=registrar, resolvers=resolvers, names=names
    )
