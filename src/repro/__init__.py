"""repro — a reproduction of "The Cloud Strikes Back: Investigating the
Decentralization of IPFS" (IMC '23).

The package provides a faithful synthetic IPFS network (Kademlia DHT,
Bitswap, NAT/relay, churn, a calibrated cloud/geo world model, HTTP
gateways, DNS and ENS substrates) together with the paper's measurement
toolchain: DHT crawler, Hydra-booster and Bitswap monitors, exhaustive
provider-record collection, gateway probing, active/passive DNS scanning,
ENS scraping, and the counting/attribution analyses behind every figure.

Quick start::

    from repro import ScenarioConfig, run_campaign
    result = run_campaign(ScenarioConfig.smoke())
    print(result.crawls.avg_discovered())

Campaigns can collect observability metrics (counters, histograms and
per-phase timings; see :mod:`repro.obs`)::

    from repro import ScenarioConfig, render_report, run_campaign
    result = run_campaign(ScenarioConfig(metrics=True))
    print(render_report(result.metrics))

and causal event traces (per-lookup/per-crawl spans; see
:mod:`repro.obs.trace`) that can be audited for protocol invariants and
exported for ``ui.perfetto.dev``::

    from repro import ScenarioConfig, audit_trace, run_campaign, write_chrome_trace
    result = run_campaign(ScenarioConfig(trace=True))
    print(audit_trace(result.trace).render())
    write_chrome_trace(result.trace, "out/run.json")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from repro.obs import (
    MetricsRegistry,
    Tracer,
    audit_trace,
    chrome_trace,
    read_metrics,
    read_trace,
    render_report,
    write_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import CampaignResult, MeasurementCampaign, run_campaign
from repro.store import StorageSpec, open_store, parse_spec
from repro.workload import WorkloadSpec, build_workload, parse_workload_spec
from repro.world.profiles import PAPER, PaperCalibration, WorldProfile

__version__ = "1.0.0"

__all__ = [
    "PAPER",
    "CampaignResult",
    "MeasurementCampaign",
    "MetricsRegistry",
    "PaperCalibration",
    "ScenarioConfig",
    "StorageSpec",
    "Tracer",
    "WorkloadSpec",
    "WorldProfile",
    "audit_trace",
    "build_workload",
    "chrome_trace",
    "open_store",
    "parse_spec",
    "parse_workload_spec",
    "read_metrics",
    "read_trace",
    "render_report",
    "run_campaign",
    "write_chrome_trace",
    "write_metrics",
    "write_trace",
    "__version__",
]
