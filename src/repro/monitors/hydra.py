"""The (modified) Hydra-booster DHT monitor.

The paper runs a Hydra-booster with 20 virtual peer IDs co-located on one
VM and modified to write all incoming DHT requests to disk: timestamp,
sender peer ID and IP, request type, target key, and the proxy DHT server
when the sender used NAT traversal (§3).  The authors estimate the node
captures ≈4 % of all IPFS DHT traffic because an average query contacts
~50 nodes out of ~25 000 servers: ``50 × 20 / 25 000 = 4 %``.

The simulated Hydra uses exactly that geometry: its virtual heads sit
uniformly in the keyspace, so each message of a DHT walk reaches a head
with probability ``heads / servers``; the workload engine asks
:meth:`capture_count` how many messages of a walk land in the log.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, MessageType, TrafficClass
from repro.obs import metrics as obs
from repro.obs import stream as obs_stream
from repro.obs import trace

if TYPE_CHECKING:  # pragma: no cover - the store imports us for the codec
    from repro.store.backend import StorageBackend
    from repro.store.eventlog import EventLog


class HydraBooster:
    """A multi-headed DHT server that logs every incoming request.

    The log lives in an :class:`~repro.store.eventlog.EventLog`; pass a
    ``store`` backend or spec string (e.g. ``"sqlite:out/hydra.sqlite"``,
    see :func:`repro.store.open_store`) to spill it to disk instead of RAM.
    """

    def __init__(
        self,
        num_heads: int = 20,
        rng: Optional[random.Random] = None,
        cache_ttl: float = 24 * 3600.0,
        store: Optional["StorageBackend"] = None,
    ) -> None:
        # Imported here: repro.store's codecs need the monitor modules,
        # so a module-level import would be circular.
        from repro.store import HYDRA_CODEC, EventLog, open_store

        if isinstance(store, str):
            store = open_store(store)
        if num_heads < 1:
            raise ValueError("a Hydra needs at least one head")
        self.rng = rng or random.Random(0x47D2A)
        self.heads: List[PeerID] = [PeerID.generate(self.rng) for _ in range(num_heads)]
        self.log: "EventLog" = EventLog(HYDRA_CODEC, store)
        self.cache_ttl = cache_ttl
        #: provider-record cache: CID -> last refresh time.  A miss is what
        #: triggers the proactive lookups of Protocol Labs' hydra fleet.
        self._cache: Dict[CID, float] = {}

    @property
    def num_heads(self) -> int:
        return len(self.heads)

    # -- capture geometry ----------------------------------------------------

    def capture_probability(self, network_servers: int) -> float:
        """Per-message probability of hitting one of our heads."""
        if network_servers <= 0:
            return 0.0
        return min(1.0, self.num_heads / network_servers)

    def capture_count(
        self, walk_messages: int, network_servers: int, rng: random.Random
    ) -> int:
        """How many of a walk's messages land in our log.

        Exact binomial for short walks; for the common small-probability
        case a Poisson draw with the same mean is indistinguishable and
        much cheaper (the engine calls this for every walk).
        """
        probability = self.capture_probability(network_servers)
        if probability <= 0.0 or walk_messages <= 0:
            return 0
        mean = probability * walk_messages
        if probability < 0.2:
            from repro.workload.engine import _poisson

            return min(walk_messages, _poisson(mean, rng))
        count = 0
        for _ in range(walk_messages):
            if rng.random() < probability:
                count += 1
        return count

    # -- logging ---------------------------------------------------------------

    def record(
        self,
        timestamp: float,
        sender: PeerID,
        sender_ip: str,
        message_type: MessageType,
        target_cid: Optional[CID] = None,
        target_key: Optional[int] = None,
        via_relay: Optional[PeerID] = None,
    ) -> MessageEnvelope:
        envelope = MessageEnvelope(
            timestamp=timestamp,
            sender=sender,
            sender_ip=sender_ip,
            message_type=message_type,
            target_key=target_key if target_key is not None else (
                target_cid.dht_key if target_cid is not None else None
            ),
            target_cid=target_cid,
            via_relay=via_relay,
        )
        self.log.append(envelope)
        obs.inc("hydra.messages_logged")
        obs_stream.observe_hydra(envelope)
        if trace.get_tracer().enabled:
            trace.trace_event(
                "hydra.request",
                mtype=message_type.value,
                relayed=via_relay is not None,
            )
        return envelope

    # -- hydra cache behaviour ---------------------------------------------------

    def cache_lookup(self, cid: CID, now: float) -> bool:
        """True on cache hit; a miss marks the CID as being fetched."""
        last = self._cache.get(cid)
        if last is not None and now - last < self.cache_ttl:
            obs.inc("hydra.cache_hits")
            return True
        obs.inc("hydra.cache_misses")
        self._cache[cid] = now
        return False

    # -- analysis helpers -----------------------------------------------------------

    def entries(self, traffic_class: Optional[TrafficClass] = None) -> List[MessageEnvelope]:
        if traffic_class is None:
            return list(self.log)
        return [entry for entry in self.log if entry.traffic_class is traffic_class]

    def __len__(self) -> int:
        return len(self.log)
