"""Measurement infrastructure (the paper's §3 instruments).

* :mod:`repro.monitors.hydra` — the modified Hydra-booster logging all
  incoming DHT requests,
* :mod:`repro.monitors.bitswap_monitor` — the unbounded-connection
  Bitswap monitor logging discovery broadcasts,
* :mod:`repro.monitors.provider_fetcher` — the modified, exhaustive
  ``FindProviders`` collecting complete provider-record sets,
* :mod:`repro.monitors.gateway_probe` — gateway identification via
  unique random content requested through the HTTP side.
"""

from repro.monitors.bitswap_monitor import BitswapLogEntry, BitswapMonitor
from repro.monitors.gateway_probe import GatewayProbeReport, GatewayProber
from repro.monitors.hydra import HydraBooster
from repro.monitors.provider_fetcher import ProviderObservation, ProviderRecordFetcher

__all__ = [
    "BitswapLogEntry",
    "BitswapMonitor",
    "GatewayProbeReport",
    "GatewayProber",
    "HydraBooster",
    "ProviderObservation",
    "ProviderRecordFetcher",
]
