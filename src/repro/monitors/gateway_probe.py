"""Gateway identification via crafted-content probes (paper §3).

To identify a gateway on the overlay: generate a unique random piece of
data, store it on our monitoring node (so we are its only provider),
request it through the gateway's HTTP side, and watch our Bitswap monitor
for the resulting discovery broadcast — the broadcast's sender is one of
the gateway's overlay nodes.  Repeating the probe over time enumerates
the operator's whole backend pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.gateway.service import GatewayService
from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.netsim.network import Overlay
from repro.netsim.node import Node


@dataclass
class GatewayProbeReport:
    """What the probing campaign learned about one HTTP endpoint."""

    domain: str
    functional: bool
    overlay_ids: Set[PeerID] = field(default_factory=set)
    overlay_ips: Set[str] = field(default_factory=set)
    probes_sent: int = 0


class GatewayProber:
    """Runs the probe campaign against a set of gateway services."""

    def __init__(
        self,
        overlay: Overlay,
        monitor: BitswapMonitor,
        provider_node: Node,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.overlay = overlay
        self.monitor = monitor
        self.provider_node = provider_node
        self.rng = rng or random.Random(overlay.world.profile.seed + 7)

    def probe_once(self, domain: str, service: Optional[GatewayService]) -> Tuple[bool, Optional[Node]]:
        """One probe: unique content, HTTP request, log inspection."""
        if service is None:
            return False, None  # dead endpoint: HTTP never answers
        probe_cid = CID.generate(self.rng)
        # Store the unique data on our monitoring node: we become the only
        # provider in the network.
        self.overlay.publish_provider_record(self.provider_node, probe_cid)
        log_position = len(self.monitor.log)
        response = service.http_get(probe_cid)
        if response.status != 200 or response.served_by is None:
            return False, None
        # The gateway's backend broadcast shows up in our Bitswap log.
        for entry in self.monitor.log[log_position:]:
            if entry.cid == probe_cid:
                return True, response.served_by
        # Served from cache or the backend isn't connected to the monitor;
        # the HTTP side still proves the endpoint functions.
        return True, None

    def run_campaign(
        self,
        services_by_domain: Dict[str, Optional[GatewayService]],
        probes_per_endpoint: int = 40,
    ) -> Dict[str, GatewayProbeReport]:
        """Probe every listed endpoint repeatedly.

        Large operators answer each probe from a different pool node, so
        repeated probes gradually enumerate all their overlay IDs (§3).
        """
        reports: Dict[str, GatewayProbeReport] = {}
        for domain, service in services_by_domain.items():
            report = GatewayProbeReport(domain=domain, functional=False)
            for _ in range(probes_per_endpoint):
                report.probes_sent += 1
                worked, backend = self.probe_once(domain, service)
                report.functional = report.functional or worked
                if backend is not None and backend.peer is not None:
                    report.overlay_ids.add(backend.peer)
                    if backend.ips:
                        report.overlay_ips.add(backend.primary_ip_str)
            reports[domain] = report
        return reports
