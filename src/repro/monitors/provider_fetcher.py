"""Exhaustive provider-record collection (the paper's §3 modification).

Stock ``FindProviders(c)`` terminates when 20 providers are found or all
resolvers were asked.  The paper modifies the walk to terminate *only*
when all resolvers of ``c`` have been queried, retrieving every provider
record, and verifies each provider's reachability at collection time
(unreachable ones are ignored in the §6 analyses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ids.cid import CID
from repro.kademlia.lookup import iterative_find_providers
from repro.kademlia.providers import ProviderRecord
from repro.netsim.network import Overlay
from repro.obs import metrics as obs
from repro.obs import trace


@dataclass
class ProviderObservation:
    """All provider records collected for one CID, with reachability."""

    cid: CID
    collected_at: float
    records: Tuple[ProviderRecord, ...]
    reachable: Tuple[ProviderRecord, ...]
    resolvers_queried: int
    walk_messages: int

    @property
    def num_providers(self) -> int:
        return len(self.records)


class ProviderRecordFetcher:
    """Runs exhaustive FindProviders walks against the live overlay."""

    def __init__(
        self,
        overlay: Overlay,
        rng: Optional[random.Random] = None,
        bootstrap_size: int = 8,
        timeout: float = 60.0,
        exhaustive: bool = True,
    ) -> None:
        self.overlay = overlay
        self.rng = rng or random.Random(overlay.world.profile.seed + 6)
        self.bootstrap_size = bootstrap_size
        self.timeout = timeout
        self.exhaustive = exhaustive
        self.observations: List[ProviderObservation] = []

    def _start_peers(self):
        servers = self.overlay.online_servers()
        if not servers:
            return []
        sample = self.rng.sample(servers, min(self.bootstrap_size, len(servers)))
        return [node.peer_info() for node in sample]

    def fetch(self, cid: CID) -> ProviderObservation:
        """Collect all provider records for ``cid`` and verify reachability."""
        tracer = trace.get_tracer()
        # The fetch span wraps the lookup, so the walk's span (and its
        # per-round/message events) nests under it as one causal tree.
        with tracer.span("providers.fetch") as fetch_span:
            result = iterative_find_providers(
                cid,
                start=self._start_peers(),
                query=self.overlay.get_providers_query(self.timeout),
                exhaustive=self.exhaustive,
            )
            records = tuple(result.providers)
            reachable = tuple(
                record for record in records if self.overlay.is_provider_reachable(record)
            )
            if tracer.enabled:
                fetch_span.note(
                    records=len(records),
                    reachable=len(reachable),
                    messages=result.messages,
                )
        observation = ProviderObservation(
            cid=cid,
            collected_at=self.overlay.now,
            records=records,
            reachable=reachable,
            resolvers_queried=len(result.resolvers_queried),
            walk_messages=result.messages,
        )
        self.observations.append(observation)
        obs.inc("providers.fetches")
        obs.inc("providers.walk_messages", result.messages)
        obs.inc("providers.records", len(records))
        obs.inc("providers.reachable_records", len(reachable))
        return observation

    def fetch_many(self, cids: Sequence[CID]) -> List[ProviderObservation]:
        """The daily collection pass over a sampled CID set."""
        return [self.fetch(cid) for cid in cids]
