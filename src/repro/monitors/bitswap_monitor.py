"""The Bitswap monitor.

A modified IPFS node with unbounded connection capacity that logs all
incoming Bitswap traffic to disk (paper §3).  The monitor sees the 1-hop
discovery broadcasts of every peer it is connected to — a large portion
of the network, but not everyone, and only the locally broadcast requests
(not unicast responses).

Connectivity is modelled per participant: stable, well-connected nodes
(gateways, platforms, cloud servers) are almost always connected to the
monitor; the churning fringe less so.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.netsim.node import Node
from repro.obs import metrics as obs
from repro.obs import stream as obs_stream
from repro.obs import trace
from repro.world.population import NodeClass

if TYPE_CHECKING:  # pragma: no cover - the store imports us for the codec
    from repro.store.backend import StorageBackend
    from repro.store.eventlog import EventLog

#: Probability that a node of a class holds a connection to the monitor.
CONNECTION_PROBABILITY = {
    NodeClass.PLATFORM: 0.98,
    NodeClass.GATEWAY: 0.97,
    NodeClass.CLOUD_STABLE: 0.85,
    NodeClass.HYBRID: 0.85,
    NodeClass.RESIDENTIAL_STABLE: 0.70,
    NodeClass.RESIDENTIAL_EPHEMERAL: 0.50,
    NodeClass.NAT_CLIENT: 0.40,
}


@dataclass(frozen=True, slots=True)
class BitswapLogEntry:
    """One logged incoming want broadcast."""

    timestamp: float
    sender: PeerID
    sender_ip: str
    cid: CID


class BitswapMonitor:
    """Logs want-have broadcasts from connected peers."""

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        store: Optional["StorageBackend"] = None,
    ) -> None:
        # Imported here: repro.store's codecs need this module, so a
        # module-level import would be circular.
        from repro.store import BITSWAP_CODEC, EventLog, open_store

        if isinstance(store, str):
            store = open_store(store)
        self.rng = rng or random.Random(0xB17)
        self.log: "EventLog" = EventLog(BITSWAP_CODEC, store)
        self._connected_specs: Dict[int, bool] = {}

    def is_connected(self, node: Node) -> bool:
        """Whether the monitor holds a Bitswap connection to this peer.

        The decision is persistent per physical participant: stable nodes
        that connected once stay connected (the monitor never prunes).
        """
        spec_index = node.spec.index
        if spec_index not in self._connected_specs:
            probability = CONNECTION_PROBABILITY[node.node_class]
            self._connected_specs[spec_index] = self.rng.random() < probability
        return self._connected_specs[spec_index]

    def observe_broadcast(self, timestamp: float, node: Node, cid: CID) -> bool:
        """Log the broadcast if the sender is connected to us."""
        obs.inc("bitswap.broadcasts_seen")
        if not self.is_connected(node) or node.peer is None or not node.ips:
            if trace.get_tracer().enabled:
                trace.trace_event("bitswap.request", logged=False)
            return False
        obs.inc("bitswap.broadcasts_logged")
        if trace.get_tracer().enabled:
            trace.trace_event("bitswap.request", logged=True)
        self.log.append(
            BitswapLogEntry(
                timestamp=timestamp,
                sender=node.peer,
                sender_ip=node.primary_ip_str,
                cid=cid,
            )
        )
        obs_stream.observe_bitswap(timestamp, node, cid)
        return True

    # -- derived datasets -------------------------------------------------------

    def cids_on_day(self, day: int) -> Set[CID]:
        """All distinct CIDs requested on a given simulated day."""
        from repro.netsim.clock import SECONDS_PER_DAY

        low = day * SECONDS_PER_DAY
        high = low + SECONDS_PER_DAY
        return {entry.cid for entry in self.log.window(low, high)}

    def cids_in_window(self, start: float, end: float) -> Set[CID]:
        """Distinct CIDs requested in a time window (newest log suffix)."""
        return {entry.cid for entry in self.log.window(start, end)}

    def sampled_cids_in_window(
        self, start: float, end: float, sample_size: int, rng: Optional[random.Random] = None
    ) -> List[CID]:
        """Deduplicated random sample of a window's requested CIDs."""
        rng = rng or self.rng
        cids = sorted(self.cids_in_window(start, end), key=lambda cid: cid.digest)
        if len(cids) <= sample_size:
            return cids
        return rng.sample(cids, sample_size)

    def daily_sampled_cids(
        self, day: int, sample_size: int, rng: Optional[random.Random] = None
    ) -> List[CID]:
        """The paper's daily dataset: dedupe the day's requested CIDs and
        draw a fixed-size random sample (200 k at paper scale)."""
        rng = rng or self.rng
        cids = sorted(self.cids_on_day(day), key=lambda cid: cid.digest)
        if len(cids) <= sample_size:
            return cids
        return rng.sample(cids, sample_size)

    def __len__(self) -> int:
        return len(self.log)
