"""Text renderings of the paper's figures.

Each ``render_*`` function turns the corresponding report into a
terminal-friendly figure (bar charts, concentration curves, CDFs) using
:mod:`repro.viz`.  The CLI's ``--render`` flag and the examples use these
to show the reproduced figures, not just their numbers.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.scenario import report as R
from repro.scenario.run import CampaignResult
from repro.viz import bar_chart, cdf_chart, line_chart
from repro.core import topology


def render_fig3(result: CampaignResult) -> str:
    f3 = R.fig3_report(result)
    return "\n\n".join(
        [
            "Fig. 3 — participants of the IPFS DHT by cloud status",
            bar_chart(f3["A-N"], "A-N (average over crawls, unique nodes):"),
            bar_chart(f3["G-IP"], "G-IP (global, unique IPs):"),
        ]
    )


def render_fig4(result: CampaignResult) -> str:
    f4 = R.fig4_report(result)
    gip = [(float(k), ratio) for k, ratio in f4["G-IP"]]
    an = [(float(k), ratio) for k, ratio in f4["A-N"]]
    return "\n\n".join(
        [
            "Fig. 4 — cloud:non-cloud ratio vs cumulative crawls",
            line_chart(gip, "G-IP (decays as rotated IPs accumulate):",
                       x_label="crawls", y_label="ratio"),
            line_chart(an, "A-N (flat):", x_label="crawls", y_label="ratio"),
        ]
    )


def render_fig5(result: CampaignResult) -> str:
    f5 = R.fig5_report(result)
    return "\n\n".join(
        [
            "Fig. 5 — nodes of the IPFS DHT by cloud provider",
            bar_chart(f5["A-N"], "A-N:", limit=10),
            bar_chart(f5["G-IP"], "G-IP:", limit=10),
        ]
    )


def render_fig6(result: CampaignResult) -> str:
    f6 = R.fig6_report(result)
    return "\n\n".join(
        [
            "Fig. 6 — nodes of the IPFS DHT by origin country",
            bar_chart(f6["A-N"], "A-N:", limit=10),
            bar_chart(f6["G-IP"], "G-IP:", limit=10),
        ]
    )


def render_fig7(result: CampaignResult) -> str:
    snapshot = result.crawls.snapshots[-1]
    outs = list(topology.out_degrees(snapshot).values())
    ins = list(topology.estimated_in_degrees(snapshot).values())
    return "\n\n".join(
        [
            "Fig. 7 — degree distribution (CDF)",
            cdf_chart(outs, "out-degree:"),
            cdf_chart(ins, "estimated in-degree:"),
        ]
    )


def render_fig8(result: CampaignResult) -> str:
    f8 = R.fig8_report(result, repetitions=3)
    random_points = list(zip(f8["random_fractions"], f8["random_mean_lcc"]))
    targeted_points = list(zip(f8["targeted_fractions"], f8["targeted_lcc"]))
    return "\n\n".join(
        [
            "Fig. 8 — resilience to node removals (LCC share of remaining)",
            line_chart(random_points, "random removal:", x_label="removed", y_label="LCC"),
            line_chart(targeted_points, "targeted removal:", x_label="removed", y_label="LCC"),
        ]
    )


def render_fig9(result: CampaignResult) -> str:
    f9 = R.fig9_report(result)
    sections = ["Fig. 9 — request frequency per identifier (days seen)"]
    for label, key in (("CIDs", "cid_days"), ("IPs", "ip_days"), ("peer IDs", "peerid_days")):
        histogram = f9[key]
        total = sum(histogram.values())
        shares = {f"{days}d": count / total for days, count in sorted(histogram.items())}
        sections.append(bar_chart(shares, f"{label}:", limit=10))
    return "\n\n".join(sections)


def render_fig10(result: CampaignResult) -> str:
    f10 = R.fig10_report(result)
    return "\n\n".join(
        [
            "Fig. 10 — DHT/Bitswap peer-ID simplified Pareto chart",
            line_chart(f10["dht_curve"], "DHT:", x_label="top share of peer IDs", y_label="traffic"),
            line_chart(f10["bitswap_curve"], "Bitswap:", x_label="top share of peer IDs", y_label="traffic"),
        ]
    )


def render_fig11(result: CampaignResult) -> str:
    f11 = R.fig11_report(result)
    return "\n\n".join(
        [
            "Fig. 11 — DHT/Bitswap IP simplified Pareto chart",
            line_chart(f11["dht_curve"], "DHT:", x_label="top share of IPs", y_label="traffic"),
            line_chart(f11["bitswap_curve"], "Bitswap:", x_label="top share of IPs", y_label="traffic"),
        ]
    )


def render_fig12(result: CampaignResult) -> str:
    f12 = R.fig12_report(result)
    return "\n\n".join(
        [
            "Fig. 12 — cloud per traffic type",
            bar_chart(
                {
                    "all (by IP count)": f12["overall_cloud_by_ip_count"],
                    "download (by IP count)": f12["download_cloud_by_ip_count"],
                    "advert (by IP count)": f12["advert_cloud_by_ip_count"],
                    "all (by volume)": f12["overall_cloud_by_volume"],
                    "download (by volume)": f12["download_cloud_by_volume"],
                },
                "cloud share:",
            ),
        ]
    )


def render_fig13(result: CampaignResult) -> str:
    f13 = R.fig13_report(result)
    return "\n\n".join(
        [
            "Fig. 13 — platforms generating traffic (reverse DNS)",
            bar_chart(f13["dht_download"], "download:", limit=7),
            bar_chart(f13["dht_advertisement"], "advertisement:", limit=7),
            bar_chart(f13["bitswap"], "Bitswap:", limit=7),
        ]
    )


def render_fig14(result: CampaignResult) -> str:
    f14 = R.fig14_report(result)
    return "\n\n".join(
        [
            "Fig. 14 — classification of providers",
            bar_chart(f14["class_shares"], "unique providers by class:"),
            bar_chart(f14["relay_provider_shares"], "relays of NAT-ed providers:", limit=7),
        ]
    )


def render_fig15(result: CampaignResult) -> str:
    f15 = R.fig15_report(result)
    return "\n\n".join(
        [
            "Fig. 15 — provider-popularity Pareto chart",
            line_chart(f15["curve"], "record appearances:", x_label="top share of peers",
                       y_label="records"),
            bar_chart(f15["record_shares_by_class"], "record appearances by class:"),
        ]
    )


def render_fig16(result: CampaignResult) -> str:
    f16 = R.fig16_report(result)
    distribution = {
        f">={threshold:.0%} cloud": share for threshold, share in f16["distribution"]
    }
    return "\n\n".join(
        [
            "Fig. 16 — CIDs classified by their providers' cloud share",
            bar_chart(distribution, "fraction of CIDs with at least x cloud providers:", limit=11),
        ]
    )


def render_fig17(result: CampaignResult) -> str:
    f17 = R.fig17_report(result)
    return "\n\n".join(
        [
            "Fig. 17 — DNSLink records pointing to IPFS content providers",
            bar_chart(f17["provider_shares"], "DNSLink-serving IPs by provider:", limit=8),
        ]
    )


def render_fig18(result: CampaignResult) -> str:
    f18 = R.fig18_19_report(result)
    return "\n\n".join(
        [
            "Fig. 18 — gateway frontend and overlay IPs by cloud provider",
            bar_chart(f18["frontend_provider_shares"], "HTTP frontends:", limit=8),
            bar_chart(f18["overlay_provider_shares"], "overlay nodes:", limit=8),
        ]
    )


def render_fig19(result: CampaignResult) -> str:
    f18 = R.fig18_19_report(result)
    return "\n\n".join(
        [
            "Fig. 19 — gateway frontend and overlay IPs by geolocation",
            bar_chart(f18["frontend_country_shares"], "HTTP frontends:", limit=8),
            bar_chart(f18["overlay_country_shares"], "overlay nodes:", limit=8),
        ]
    )


def render_fig20(result: CampaignResult) -> str:
    f20 = R.fig20_report(result)
    return "\n\n".join(
        [
            "Fig. 20 — content providers of IPFS content on ENS records",
            bar_chart(dict(f20["top_providers"]), "by cloud provider (unique IPs):"),
            bar_chart(dict(f20["top_countries"]), "by geolocation (unique IPs):"),
        ]
    )


RENDERERS: Dict[str, Callable[[CampaignResult], str]] = {
    "fig3": render_fig3,
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "fig9": render_fig9,
    "fig10": render_fig10,
    "fig11": render_fig11,
    "fig12": render_fig12,
    "fig13": render_fig13,
    "fig14": render_fig14,
    "fig15": render_fig15,
    "fig16": render_fig16,
    "fig17": render_fig17,
    "fig18": render_fig18,
    "fig19": render_fig19,
    "fig20": render_fig20,
}


def render(result: CampaignResult, figure: str) -> str:
    """Render one figure by name (``fig3`` … ``fig20``)."""
    try:
        renderer = RENDERERS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; choose from {sorted(RENDERERS)}"
        ) from None
    return renderer(result)
