"""End-to-end measurement campaigns.

* :mod:`repro.scenario.config` — campaign configuration with a
  laptop-scale default and the paper-scale preset,
* :mod:`repro.scenario.run` — builds the world, runs the simulated
  measurement period (churn, traffic, crawls, provider fetches) and the
  one-shot entry-point measurements, returning every dataset the §4-§7
  analyses consume.
"""

from repro.scenario.config import ScenarioConfig
from repro.scenario.run import CampaignResult, MeasurementCampaign, run_campaign

__all__ = ["CampaignResult", "MeasurementCampaign", "ScenarioConfig", "run_campaign"]
