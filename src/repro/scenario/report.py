"""Figure-by-figure reports over a completed campaign.

Each ``figNN_report`` function computes the statistics behind one paper
artifact from a :class:`~repro.scenario.run.CampaignResult`;
:func:`full_report` bundles them all with the paper's target values from
:data:`repro.world.profiles.PAPER`.  The benchmark suite and
EXPERIMENTS.md are both generated from these functions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import cloud as cloud_analysis
from repro.core import counting, geo, providers_analysis, resilience, topology, traffic
from repro.core.counting import CountingMethod
from repro.core.entrypoints import (
    dnslink_report,
    ens_providers_report,
    gateway_sides_report,
)
from repro.kademlia.messages import TrafficClass
from repro.scenario.run import CampaignResult
from repro.world.profiles import PAPER


def _top(shares: Dict[str, float], n: int = 5) -> List[Tuple[str, float]]:
    return sorted(shares.items(), key=lambda item: item[1], reverse=True)[:n]


# ---------------------------------------------------------------------------
# §3 / Table 1
# ---------------------------------------------------------------------------


def crawl_stats_report(result: CampaignResult) -> Dict[str, float]:
    crawls = result.crawls
    return {
        "num_crawls": float(len(crawls)),
        "avg_discovered": crawls.avg_discovered(),
        "avg_crawlable": crawls.avg_crawlable(),
        "crawlable_fraction": crawls.avg_crawlable() / max(crawls.avg_discovered(), 1.0),
        "unique_peer_ids": float(crawls.unique_peer_ids()),
        "unique_ips": float(crawls.unique_ips()),
        "ips_per_peer": crawls.avg_ips_per_peer(),
        "peer_turnover": crawls.unique_peer_ids() / max(crawls.avg_discovered(), 1.0),
        "ip_turnover": crawls.unique_ips() / max(crawls.avg_discovered(), 1.0),
    }


# ---------------------------------------------------------------------------
# §4: the network
# ---------------------------------------------------------------------------


def fig3_report(result: CampaignResult) -> Dict[str, Dict[str, float]]:
    rows = result.crawl_rows
    cloud_db = result.world.cloud_db
    return {
        "A-N": cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.A_N),
        "G-IP": cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.G_IP),
        "G-N": cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.G_N),
    }


def fig4_report(result: CampaignResult) -> Dict[str, List[Tuple[int, float]]]:
    rows = result.crawl_rows
    cloud_db = result.world.cloud_db
    return {
        "A-N": cloud_analysis.cloud_ratio_series(rows, cloud_db, CountingMethod.A_N),
        "G-IP": cloud_analysis.cloud_ratio_series(rows, cloud_db, CountingMethod.G_IP),
    }


def fig5_report(result: CampaignResult) -> Dict[str, object]:
    rows = result.crawl_rows
    cloud_db = result.world.cloud_db
    an_shares = cloud_analysis.provider_shares(rows, cloud_db, CountingMethod.A_N)
    gip_shares = cloud_analysis.provider_shares(rows, cloud_db, CountingMethod.G_IP)
    an_top, an_top3 = cloud_analysis.top_provider_concentration(an_shares)
    return {
        "A-N": an_shares,
        "G-IP": gip_shares,
        "an_top3": an_top,
        "an_top3_share": an_top3,
        "an_choopa": an_shares.get("choopa", 0.0),
        "gip_choopa": gip_shares.get("choopa", 0.0),
    }


def fig6_report(result: CampaignResult) -> Dict[str, object]:
    rows = result.crawl_rows
    geo_db = result.world.geo_db
    an_shares = geo.country_shares(rows, geo_db, CountingMethod.A_N)
    gip_shares = geo.country_shares(rows, geo_db, CountingMethod.G_IP)
    an_top10, an_outside = geo.top_countries(an_shares)
    gip_top10, gip_outside = geo.top_countries(gip_shares)
    return {
        "A-N": an_shares,
        "G-IP": gip_shares,
        "an_top10": an_top10,
        "an_non_top10": an_outside,
        "gip_top10": gip_top10,
        "gip_non_top10": gip_outside,
    }


def fig7_report(result: CampaignResult, snapshot_index: int = -1) -> Dict[str, float]:
    snapshot = result.crawls.snapshots[snapshot_index]
    return topology.degree_summary(snapshot)


def fig8_report(
    result: CampaignResult, snapshot_index: int = -1, repetitions: int = 10
) -> Dict[str, object]:
    snapshot = result.crawls.snapshots[snapshot_index]
    graph = topology.build_undirected(snapshot)
    fractions, means, halfwidths = resilience.random_removal_with_ci(
        graph, repetitions=repetitions
    )
    random_trace = resilience.RemovalTrace(list(fractions), list(means))
    targeted_trace = resilience.targeted_removal(graph)
    return {
        "random_fractions": fractions,
        "random_mean_lcc": means,
        "random_ci95": halfwidths,
        "targeted_fractions": targeted_trace.removed_fraction,
        "targeted_lcc": targeted_trace.lcc_share,
        "random_lcc_at_90pct": random_trace.share_at(0.90),
        "targeted_partition_point": targeted_trace.partition_point(),
    }


# ---------------------------------------------------------------------------
# §5: the traffic
# ---------------------------------------------------------------------------


def sec5_report(result: CampaignResult) -> Dict[str, float]:
    shares = traffic.traffic_class_shares(result.hydra.log)
    return {
        "total_messages": float(len(result.hydra.log)),
        "download_share": shares.get("download", 0.0),
        "advertisement_share": shares.get("advertisement", 0.0),
        "other_share": shares.get("other", 0.0),
        "capture_probability_per_message": result.hydra.capture_probability(
            len(result.overlay.oracle)
        ),
    }


def fig9_report(result: CampaignResult) -> Dict[str, object]:
    log = result.hydra.log
    return {
        "cid_days": traffic.days_seen_histogram(log, "cid"),
        "ip_days": traffic.days_seen_histogram(log, "ip"),
        "peerid_days": traffic.days_seen_histogram(log, "peerid"),
        "ip_cloud_share_by_days": traffic.ip_days_seen_cloud_share(
            log, result.world.cloud_db
        ),
    }


def fig10_report(result: CampaignResult) -> Dict[str, object]:
    dht = traffic.peerid_pareto(
        traffic.peerid_volumes(result.hydra.log), result.gateway_peers
    )
    bitswap = traffic.peerid_pareto(
        traffic.bitswap_peerid_volumes(result.bitswap_monitor.log), result.gateway_peers
    )
    return {
        "dht_top5pct_share": dht.top5_share,
        "dht_gateway_share": dht.subgroup_share,
        "bitswap_top5pct_share": bitswap.top5_share,
        "bitswap_gateway_share": bitswap.subgroup_share,
        "dht_curve": dht.curve,
        "bitswap_curve": bitswap.curve,
    }


def fig11_report(result: CampaignResult) -> Dict[str, object]:
    cloud_db = result.world.cloud_db
    dht = traffic.ip_pareto(traffic.ip_volumes(result.hydra.log), cloud_db)
    bitswap = traffic.ip_pareto(
        traffic.bitswap_ip_volumes(result.bitswap_monitor.log), cloud_db
    )
    return {
        "dht_top5pct_share": dht.top5_share,
        "dht_cloud_share": dht.subgroup_share,
        "bitswap_top5pct_share": bitswap.top5_share,
        "bitswap_cloud_share": bitswap.subgroup_share,
        "dht_curve": dht.curve,
        "bitswap_curve": bitswap.curve,
    }


def fig12_report(result: CampaignResult) -> Dict[str, object]:
    cloud_db = result.world.cloud_db
    reports = traffic.cloud_traffic_reports_by_class(result.hydra.log, cloud_db)
    empty = traffic.CloudTrafficReport(0.0, 0.0)
    overall = reports.get(None, empty)
    downloads = reports.get(TrafficClass.DOWNLOAD, empty)
    adverts = reports.get(TrafficClass.ADVERTISEMENT, empty)
    return {
        "overall_cloud_by_ip_count": overall.cloud_share_by_ip_count,
        "download_cloud_by_ip_count": downloads.cloud_share_by_ip_count,
        "advert_cloud_by_ip_count": adverts.cloud_share_by_ip_count,
        "overall_cloud_by_volume": overall.cloud_share_by_volume,
        "download_cloud_by_volume": downloads.cloud_share_by_volume,
        "aws_download_by_volume": downloads.provider_shares_by_volume.get("amazon-aws", 0.0),
        "top_providers_by_volume": _top(overall.provider_shares_by_volume),
    }


def fig13_report(result: CampaignResult) -> Dict[str, object]:
    rdns = result.world.rdns
    hydra_peers = result.hydra_peers
    log = result.hydra.log
    return {
        "dht_all": traffic.platform_traffic_shares(log, rdns, hydra_peers),
        "dht_download": traffic.platform_traffic_shares(
            log, rdns, hydra_peers, TrafficClass.DOWNLOAD
        ),
        "dht_advertisement": traffic.platform_traffic_shares(
            log, rdns, hydra_peers, TrafficClass.ADVERTISEMENT
        ),
        "bitswap": traffic.bitswap_platform_shares(
            result.bitswap_monitor.log, rdns, hydra_peers
        ),
    }


# ---------------------------------------------------------------------------
# §6: the content providers
# ---------------------------------------------------------------------------


def fig14_report(result: CampaignResult) -> Dict[str, object]:
    classification = providers_analysis.classify_providers(
        result.provider_observations, result.world.cloud_db
    )
    return {
        "class_shares": classification.class_shares,
        "relay_cloud_share": classification.relay_cloud_share,
        "relay_provider_shares": classification.relay_provider_shares,
        "total_providers": classification.total_providers,
    }


def fig15_report(result: CampaignResult) -> Dict[str, object]:
    popularity = providers_analysis.provider_popularity(
        result.provider_observations, result.world.cloud_db
    )
    return {
        "top1pct_record_share": popularity.top1pct_record_share,
        "record_shares_by_class": popularity.record_shares_by_class,
        "curve": popularity.curve,
    }


def fig16_report(result: CampaignResult) -> Dict[str, object]:
    reliance = providers_analysis.cid_cloud_reliance(
        result.provider_observations, result.world.cloud_db
    )
    return {
        "at_least_one_cloud": reliance.at_least_one_cloud,
        "majority_cloud": reliance.majority_cloud,
        "cloud_only": reliance.cloud_only,
        "at_least_one_noncloud": reliance.at_least_one_noncloud,
        "distribution": reliance.cloud_share_distribution,
        "total_cids": reliance.total_cids,
    }


# ---------------------------------------------------------------------------
# §7: the entry points
# ---------------------------------------------------------------------------


def fig17_report(result: CampaignResult) -> Dict[str, object]:
    public_ips = result.dns_world.passive.ips_for_domains(
        result.dns_world.gateway_domains()
    )
    report = dnslink_report(result.dns_scan, result.world.cloud_db, public_ips)
    return {
        "num_records": report.num_records,
        "num_unique_ips": report.num_unique_ips,
        "provider_shares": report.provider_shares,
        "cloudflare_share": report.provider_shares.get("cloudflare", 0.0),
        "noncloud_share": report.noncloud_share,
        "public_gateway_ip_share": report.public_gateway_ip_share,
    }


def fig18_19_report(result: CampaignResult) -> Dict[str, object]:
    frontend_ips = result.dns_world.passive.ips_for_domains(
        result.dns_world.gateway_domains()
    )
    report = gateway_sides_report(
        result.gateway_probe_reports,
        frontend_ips,
        result.world.cloud_db,
        result.world.geo_db,
    )
    return {
        "frontend_provider_shares": report.frontend_provider_shares,
        "overlay_provider_shares": report.overlay_provider_shares,
        "frontend_country_shares": report.frontend_country_shares,
        "overlay_country_shares": report.overlay_country_shares,
        "num_functional_endpoints": report.num_functional_endpoints,
        "num_overlay_ids": report.num_overlay_ids,
        "num_listed_endpoints": len(result.gateway_registry),
    }


def fig20_report(result: CampaignResult) -> Dict[str, object]:
    report = ens_providers_report(
        result.ens_observations, result.world.cloud_db, result.world.geo_db
    )
    return {
        "num_cids": report.num_cids,
        "num_provider_records": report.num_provider_records,
        "num_unique_ips": report.num_unique_ips,
        "cloud_share": report.cloud_share,
        "us_de_share": report.us_de_share,
        "top_providers": _top(report.provider_shares),
        "top_countries": _top(report.country_shares),
    }


def full_report(result: CampaignResult, resilience_reps: int = 5) -> Dict[str, object]:
    """Every figure's statistics in one bundle."""
    return {
        "crawl_stats": crawl_stats_report(result),
        "fig3": fig3_report(result),
        "fig4": fig4_report(result),
        "fig5": fig5_report(result),
        "fig6": fig6_report(result),
        "fig7": fig7_report(result),
        "fig8": fig8_report(result, repetitions=resilience_reps),
        "sec5": sec5_report(result),
        "fig9": fig9_report(result),
        "fig10": fig10_report(result),
        "fig11": fig11_report(result),
        "fig12": fig12_report(result),
        "fig13": fig13_report(result),
        "fig14": fig14_report(result),
        "fig15": fig15_report(result),
        "fig16": fig16_report(result),
        "fig17": fig17_report(result),
        "fig18_19": fig18_19_report(result),
        "fig20": fig20_report(result),
    }
