"""Campaign configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.attack.config import AttackConfig
from repro.workload.engine import WorkloadConfig
from repro.dns.seeding import DNSLinkSeedConfig
from repro.ens.seeding import ENSSeedConfig
from repro.world.profiles import WorldProfile


@dataclass
class ScenarioConfig:
    """Everything a :class:`~repro.scenario.run.MeasurementCampaign` needs.

    The default is laptop-scale (seconds to minutes); ``paper_scale()``
    reproduces the paper's dimensions (≈25.8 k online servers, 38 days,
    101 crawls, 200 k daily CID samples) at a correspondingly heavy cost.
    All reported quantities are shares and are approximately
    scale-invariant, which is what the benches check.
    """

    profile: WorldProfile = field(default_factory=WorldProfile)
    days: int = 8
    #: days of churn+traffic before measurements start (lets ghost
    #: entries, caches and provider records reach steady state).
    warmup_days: int = 1
    crawls_per_day: float = 2.66
    ticks_per_day: int = 4
    #: daily Bitswap-derived CID sample fed to the provider fetcher.
    daily_cid_sample: int = 400
    #: how many trailing days run the provider-record collection.
    provider_fetch_days: int = 6
    hydra_heads: int = 20
    gateway_probes_per_endpoint: int = 60
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: request-generation model (see :mod:`repro.workload.spec`):
    #: ``"closed"`` keeps the legacy per-node Poisson workload (the
    #: golden default — no extra RNG draws, bit-identical campaigns);
    #: ``"zipf:users=1e6,..."`` attaches the open-loop session driver.
    workload_spec: str = "closed"
    dns: DNSLinkSeedConfig = field(default_factory=DNSLinkSeedConfig)
    ens: ENSSeedConfig = field(default_factory=ENSSeedConfig)
    #: disable the content workload for crawl-only campaigns (the cheap
    #: way to run the paper's full 38-day / 101-crawl temporal design).
    traffic_enabled: bool = True
    #: storage spec for the monitor logs (see :mod:`repro.store`):
    #: ``memory`` (default), or e.g. ``sqlite:out/run1`` / ``jsonl:out/run1``
    #: / ``sharded:4:sqlite:out/run1`` to spill logs to disk, with the
    #: path used as a directory holding one log file per monitor.
    storage: str = "memory"
    #: worker processes for the crawl phase (see :mod:`repro.exec`).
    #: ``1`` runs everything inline; any value produces bit-identical
    #: datasets because every crawl derives its own seed.  Disk-backed
    #: monitor logs are automatically sharded ``workers`` ways (merged
    #: back through the order-preserving ShardedBackend heap-merge).
    workers: int = 1
    #: collect observability metrics (see :mod:`repro.obs`) during the
    #: campaign; the snapshot lands in ``CampaignResult.metrics``.  Off by
    #: default: the disabled path is a no-op null registry and campaign
    #: outputs are bit-identical either way.
    metrics: bool = False
    #: collect causal event traces (see :mod:`repro.obs.trace`): one
    #: tracer in the campaign process plus one per crawl task, merged in
    #: crawl order into ``CampaignResult.trace``.  Off by default — the
    #: disabled path is a no-op null tracer and campaign outputs are
    #: bit-identical either way.
    trace: bool = False
    #: keep ~1 causal tree in N (deterministically, by hashing the tree
    #: index through :func:`repro.exec.seeds.derive_seed`); ``1`` keeps
    #: everything.
    trace_sample: int = 1
    #: per-tracer ring-buffer capacity in events; when full, the oldest
    #: events are evicted (and counted, so ``repro obs audit`` knows the
    #: stream is incomplete).
    trace_buffer: int = 65536
    #: optional path the merged trace records are written to at the end
    #: of the run (``.trace``/``.jsonl`` → JSONL, ``.sqlite`` → SQLite);
    #: the path lands in ``CampaignResult.trace_path``.
    trace_out: Optional[str] = None
    #: render a live single-line progress heartbeat to stderr (wall-clock
    #: throttled; never feeds back into the simulation).
    progress: bool = False
    #: maintain streaming analytics sketches (see :mod:`repro.obs.stream`)
    #: over the monitor event stream: heavy-hitter peers/IPs/CIDs,
    #: quantile sketches, windowed class shares and live headline
    #: estimates.  Off by default — the disabled path is a no-op null
    #: stream and campaign outputs are bit-identical either way; with
    #: streaming on the sketch snapshot lands in
    #: ``CampaignResult.sketches``.
    stream: bool = False
    #: sketch window length in seconds (defaults to one campaign tick at
    #: 4 ticks/day, matching ``detect_window``).
    stream_window: float = 21_600.0
    #: optional path the final sketch snapshot JSON is written to; the
    #: path lands in ``CampaignResult.sketches_path``.  Implies
    #: ``stream``.
    sketches_out: Optional[str] = None
    #: optional ``host:port`` to serve the live control plane on (see
    #: :mod:`repro.obs.serve`): ``/status``, ``/metrics``, ``/sketches``,
    #: ``/stop`` and a single-page dashboard.  ``"127.0.0.1:0"`` picks a
    #: free port; the bound URL lands in ``CampaignResult.live_url``.
    #: Implies ``stream``.
    live: Optional[str] = None
    #: adversarial scenarios to inject (see :mod:`repro.attack`).  Empty
    #: by default: with no attacks the campaign allocates no attack
    #: store, draws no attack randomness and stays bit-identical to the
    #: golden figures.
    attacks: Tuple[AttackConfig, ...] = ()
    #: run the packaged detectors (:mod:`repro.detect`) over the monitor
    #: logs at the end of the campaign and score them against the attack
    #: ground truth into ``CampaignResult.detection``.
    detect: bool = False
    #: detection feature-window length in seconds (defaults to one
    #: campaign tick at 4 ticks/day, matching the engine's traffic
    #: timestamp quantization).
    detect_window: float = 21_600.0
    #: tick-engine implementation (see :mod:`repro.netsim.soa`):
    #: ``"auto"`` uses the vectorized struct-of-arrays engine when numpy
    #: is available and the scalar engine otherwise; ``"soa"`` requires
    #: numpy (fails fast with a clear error if missing); ``"scalar"``
    #: forces the per-node reference engine.  Both engines produce
    #: bit-identical campaigns (pinned by ``tests/test_tick_parity.py``)
    #: — the choice is purely about speed.
    engine: str = "auto"
    seed: int = 2023

    @property
    def num_crawls(self) -> int:
        return max(1, round(self.days * self.crawls_per_day))

    @property
    def stream_enabled(self) -> bool:
        """Streaming analytics are on (directly or implied by an output)."""
        return self.stream or self.sketches_out is not None or self.live is not None

    def scaled(self, online_servers: int) -> "ScenarioConfig":
        return replace(self, profile=self.profile.scaled(online_servers))

    @classmethod
    def smoke(cls) -> "ScenarioConfig":
        """A tiny configuration for fast tests."""
        return cls(
            profile=WorldProfile(online_servers=400),
            days=3,
            daily_cid_sample=120,
            provider_fetch_days=2,
            gateway_probes_per_endpoint=8,
            dns=DNSLinkSeedConfig(background_domains=800, dnslink_domains=120),
            ens=ENSSeedConfig(num_names=150),
        )

    @classmethod
    def paper_horizon(cls, online_servers: int = 700) -> "ScenarioConfig":
        """The paper's *temporal* design — 38 days, 101 crawls — at a
        reduced network size.  Crawl-only (no traffic), so the
        G-IP-vs-A-N divergence (Figs. 3-6) is measured over the same
        number of aggregated crawls as the paper's dataset."""
        return cls(
            profile=WorldProfile(online_servers=online_servers),
            days=38,
            crawls_per_day=101 / 38,
            traffic_enabled=False,
            daily_cid_sample=0,
            provider_fetch_days=0,
            gateway_probes_per_endpoint=4,
        )

    @classmethod
    def paper_scale(cls) -> "ScenarioConfig":
        """The paper's dimensions.  Heavy: hours of CPU, gigabytes of RAM."""
        return cls(
            profile=WorldProfile.paper_scale(),
            days=38,
            daily_cid_sample=200_000,
            provider_fetch_days=28,
            ens=ENSSeedConfig(num_names=20_600),
        )
