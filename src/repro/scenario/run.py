"""The end-to-end measurement campaign (paper §3, Fig. 2 architecture).

Builds the synthetic world and network, runs the simulated measurement
period — churn and traffic interleaved with periodic DHT crawls and daily
provider-record collection — and finally the one-shot entry-point
measurements (gateway probing, active DNS scan, ENS scrape).  The result
object carries every dataset the §4-§7 analyses need.
"""

from __future__ import annotations

import json
import random
import sys
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.attack.orchestrator import AttackOrchestrator
from repro.content.catalog import ContentCatalog
from repro.workload.engine import TrafficEngine, VectorizedTrafficEngine
from repro.workload.spec import build_workload
from repro.core.crawler import (
    CrawlDataset,
    DHTCrawler,
    execute_crawl_task,
    execute_crawl_task_observed,
    execute_crawl_task_streamed,
    execute_crawl_task_traced,
)
from repro.exec.engine import ExecError, ParallelExecutor
from repro.exec.seeds import derive_seed
from repro.dns.scanner import ActiveScanner, DNSLinkScanResult
from repro.dns.seeding import DNSWorld, seed_dns_world
from repro.ens.scraper import ENSContenthashScraper, ENSScrapeResult
from repro.ens.seeding import ENSWorld, seed_ens_world
from repro.gateway.operators import default_operators, install_gateway_specs
from repro.gateway.registry import PublicGatewayRegistry
from repro.gateway.service import GatewayService
from repro.ids.peerid import PeerID
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.gateway_probe import GatewayProbeReport, GatewayProber
from repro.monitors.hydra import HydraBooster
from repro.monitors.provider_fetcher import ProviderObservation, ProviderRecordFetcher
from repro.netsim.churn import ChurnProcess, DailyAddressRotation, PresenceAdvertiser
from repro.netsim.clock import SECONDS_PER_DAY
from repro.netsim.network import Overlay
from repro.netsim.node import Node
from repro.netsim.soa import resolve_engine
from repro.obs import metrics as obs
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, use_registry
from repro.obs.progress import ProgressReporter
from repro.obs.serve import ControlServer
from repro.obs.stream import NULL_STREAM, StreamAnalytics, use_stream
from repro.obs.trace import NULL_TRACER, Tracer, use_tracer, write_trace
from repro.scenario.config import ScenarioConfig
from repro.store import campaign_stores
from repro.world.population import NodeClass, NodeSpec, PopulationBuilder, World


@dataclass
class CampaignResult:
    """Every dataset a completed campaign produced."""

    config: ScenarioConfig
    world: World
    overlay: Overlay
    catalog: ContentCatalog
    crawls: CrawlDataset
    hydra: HydraBooster
    bitswap_monitor: BitswapMonitor
    provider_observations: List[ProviderObservation]
    gateway_registry: PublicGatewayRegistry
    gateway_probe_reports: Dict[str, GatewayProbeReport]
    dns_world: DNSWorld
    dns_scan: DNSLinkScanResult
    ens_world: ENSWorld
    ens_scrape: ENSScrapeResult
    ens_observations: List[ProviderObservation]
    gateway_peers: Set[PeerID]
    hydra_peers: Set[PeerID]
    #: crawl tasks that failed even after a retry (empty on clean runs);
    #: their snapshots are missing from ``crawls``.
    exec_errors: List[ExecError] = field(default_factory=list)
    #: observability snapshot (see :mod:`repro.obs`) when the campaign ran
    #: with ``ScenarioConfig.metrics`` enabled, else ``None``.
    metrics: Optional[Dict[str, object]] = None
    #: merged trace record stream (see :mod:`repro.obs.trace`) when the
    #: campaign ran with ``ScenarioConfig.trace`` enabled, else ``None``:
    #: the campaign tracer's records followed by each crawl task's, in
    #: crawl order.
    trace: Optional[List[Dict[str, object]]] = None
    #: where the trace was persisted when ``ScenarioConfig.trace_out``
    #: was set, else ``None``.
    trace_path: Optional[str] = None
    #: per-attack effect metrics (see :class:`repro.attack.AttackOrchestrator`)
    #: when the campaign ran with attacks configured, else ``None``.
    attack_summary: Optional[Dict[str, Dict[str, float]]] = None
    #: the ground-truth log of injected adversarial activity, else ``None``.
    attack_ground_truth: Optional[object] = None
    #: detector scorecard (see :func:`repro.detect.run_detection`) when the
    #: campaign ran with ``ScenarioConfig.detect`` enabled, else ``None``.
    detection: Optional[Dict[str, object]] = None
    #: final streaming-analytics sketch snapshot (see
    #: :mod:`repro.obs.stream`) when the campaign ran with streaming
    #: enabled (``stream`` / ``sketches_out`` / ``live``), else ``None``.
    sketches: Optional[Dict[str, object]] = None
    #: where the sketch snapshot JSON was written when
    #: ``ScenarioConfig.sketches_out`` was set, else ``None``.
    sketches_path: Optional[str] = None
    #: the bound control-plane URL when the campaign served ``--live``.
    live_url: Optional[str] = None
    #: True when a live ``/stop`` request ended the measurement period
    #: early (the datasets cover the completed ticks only).
    stopped_early: bool = False

    @property
    def crawl_rows(self):
        from repro.core.counting import make_rows

        return make_rows(self.crawls.rows())


class MeasurementCampaign:
    """Owns the simulated world and executes the full §3 methodology."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.rng = random.Random(self.config.seed + 100)
        #: the campaign's metrics registry: a collecting one when
        #: ``config.metrics`` is set, else the shared no-op null object.
        self.obs = MetricsRegistry() if self.config.metrics else NULL_REGISTRY
        #: the campaign's tracer: collecting when ``config.trace`` is
        #: set, else the shared no-op null tracer.  Crawl tasks get their
        #: own per-task tracers (see execute_crawl_task_traced).
        if self.config.trace:
            self.tracer = Tracer(
                origin="main",
                seed=derive_seed(self.config.seed, "trace", "main"),
                sample=self.config.trace_sample,
                capacity=self.config.trace_buffer,
                clock=self._sim_now,
            )
        else:
            self.tracer = NULL_TRACER
        #: the campaign's streaming-analytics engine: collecting when
        #: ``config.stream_enabled`` (built with the world's classifiers
        #: during :meth:`build`), else the shared no-op null stream.
        self.stream = NULL_STREAM
        #: the live control plane (see :mod:`repro.obs.serve`) when
        #: ``config.live`` is set; bound during :meth:`build` so the URL
        #: is known before the run starts.
        self.control_server: Optional[ControlServer] = None
        self._last_publish: Optional[float] = None
        self._crawl_trace_records: List[Dict[str, object]] = []
        self._built = False

    def _sim_now(self) -> float:
        overlay = getattr(self, "overlay", None)
        return overlay.now if overlay is not None else 0.0

    def _observed(self):
        """Install the campaign registry/tracer while they are enabled.

        When they are not, the surroundings are left alone, so a
        user-installed global registry (``repro.obs.enable()``) or tracer
        still sees the instrumentation.
        """
        stack = ExitStack()
        if self.config.metrics:
            stack.enter_context(use_registry(self.obs))
        if self.config.trace:
            stack.enter_context(use_tracer(self.tracer))
        if self.stream.enabled:
            stack.enter_context(use_stream(self.stream))
        return stack

    @contextmanager
    def _phase(self, name: str):
        """Mark a campaign phase in the trace with paired instant events.

        Instants, not spans, on purpose: a root span would make the whole
        phase one causal tree, and ``trace_sample`` would then mute every
        lookup inside it wholesale.  With markers, each lookup/crawl/fetch
        stays its own tree — the granularity the sampler keys on — while
        the phase boundaries (and the ETA heartbeat) remain visible.
        """
        self.tracer.event("phase.begin", phase=name)
        try:
            yield
        finally:
            self.tracer.event("phase.end", phase=name)

    # ------------------------------------------------------------------
    # the live control plane
    # ------------------------------------------------------------------

    def _publish_live(
        self,
        state: str,
        phase: str,
        *,
        day: Optional[Tuple[int, int]] = None,
        tick: Optional[Tuple[int, int]] = None,
        crawls: Optional[Tuple[int, int]] = None,
        force: bool = False,
    ) -> None:
        """Push the current status/sketch snapshots to the control plane.

        Wall-clock throttled (≈1 Hz) and strictly read-only against the
        simulation — the server thread never touches sim state, the
        campaign thread only *reads* the sketches — so ``--live`` cannot
        perturb outputs.
        """
        server = self.control_server
        if server is None:
            return
        now = time.monotonic()
        if not force and self._last_publish is not None and now - self._last_publish < 1.0:
            return
        self._last_publish = now
        status: Dict[str, object] = {
            "state": state,
            "phase": phase,
            "events": self.stream.events,
            "runtime": dict(sorted(self.stream.notes.items())),
        }
        if day is not None:
            status["day"] = f"{day[0]}/{day[1]}"
        if tick is not None:
            status["tick"] = f"{tick[0]}/{tick[1]}"
        if crawls is not None:
            status["crawls"] = f"{crawls[0]}/{crawls[1]}"
        server.publisher.publish("status", status)
        server.publisher.publish("sketches", self.stream.snapshot())
        if self.config.metrics:
            server.publisher.publish("metrics", self.obs.snapshot())

    def _stop_requested(self) -> bool:
        return (
            self.control_server is not None
            and self.control_server.publisher.stop_requested
        )

    def close_live(self) -> None:
        """Shut the control-plane server down (idempotent).

        :meth:`run` leaves the server up so callers (``repro obs serve``)
        can keep the final snapshot browsable; :func:`run_campaign`
        closes it as soon as the result is returned.
        """
        if self.control_server is not None:
            self.control_server.close()
            self.control_server = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self) -> None:
        with self._observed(), obs.span("campaign"), obs.span("build"), self._phase("build"):
            self._build()

    def _build(self) -> None:
        config = self.config
        self.world = PopulationBuilder(config.profile).build()
        self.operators = default_operators()
        self.gateway_specs = install_gateway_specs(self.world, self.operators)
        self._monitor_spec = self._add_monitor_spec()
        # Engine selection (fails fast here if "soa" is requested without
        # numpy).  Both engines are bit-identical; "auto" simply picks the
        # fast one when numpy is available.
        engine_kind = resolve_engine(config.engine)
        self.engine_kind = engine_kind
        self.overlay = Overlay(self.world, vectorized=(engine_kind == "soa"))
        self.overlay.bootstrap()
        self.overlay.schedule_periodic_refresh()
        self.churn = ChurnProcess(self.overlay)
        self.churn.start()
        self.advertiser = PresenceAdvertiser(self.overlay)
        self.advertiser.start()
        self.rotation = DailyAddressRotation(self.overlay)
        self.rotation.start()
        self.catalog = ContentCatalog(random.Random(config.seed + 101))
        # Attack-off campaigns must not even create an attack store
        # (byte-identical on-disk layout to previous releases).
        log_names = ("hydra", "bitswap", "attack") if config.attacks else ("hydra", "bitswap")
        stores = campaign_stores(config.storage, names=log_names, workers=config.workers)
        for store in stores.values():
            # A campaign starts at simulated t=0; records left over from a
            # previous run into the same path would silently skew every
            # share the analyses compute.
            store.clear()
        self.hydra = HydraBooster(num_heads=config.hydra_heads, store=stores["hydra"])
        self.monitor = BitswapMonitor(
            random.Random(config.seed + 102), store=stores["bitswap"]
        )
        engine_cls = (
            VectorizedTrafficEngine if engine_kind == "soa" else TrafficEngine
        )
        self.engine = engine_cls(
            self.overlay, self.catalog, self.hydra, self.monitor, config.workload
        )
        # Optional open-loop session driver (see repro.workload.spec).
        # "closed" builds nothing: the engine keeps its legacy per-node
        # model and the campaign stays bit-identical to the goldens.
        workload_driver = build_workload(config.workload_spec, seed=config.seed)
        if workload_driver is not None:
            self.engine.attach_open_loop(workload_driver)
        # Attackers are injected after ChurnProcess.start(), so their
        # sessions answer to the attack windows alone, never to churn.
        self.attack_orchestrator: Optional[AttackOrchestrator] = None
        if config.attacks:
            self.attack_orchestrator = AttackOrchestrator(
                self.overlay,
                self.engine,
                self.hydra,
                self.monitor,
                self.catalog,
                config.attacks,
                seed=config.seed,
                store=stores["attack"],
            )
            self.attack_orchestrator.install()
        self.crawler = DHTCrawler(self.overlay)
        self.fetcher = ProviderRecordFetcher(self.overlay)
        self.gateway_registry = PublicGatewayRegistry(self.operators)
        self.services: Dict[str, Optional[GatewayService]] = {}
        for entry in self.gateway_registry.entries:
            if entry.operator is None:
                self.services[entry.domain] = None
                continue
            nodes = [
                node
                for node in self.overlay.nodes
                if node.spec.platform == entry.operator
                and node.spec.node_class is NodeClass.GATEWAY
            ]
            operator = self.gateway_registry.operator_for(entry.domain)
            self.services[entry.domain] = GatewayService(
                operator, nodes, self.overlay, self.monitor
            )
        self.dns_world = seed_dns_world(self.world, self.operators, config.dns)
        if config.stream_enabled:
            # The streaming classifiers mirror the exact batch analyses:
            # cloud attribution is the same memoized CloudIPDatabase
            # lookup the traffic reports use, and gateway-ness is decided
            # at observe time (senders are online when they send) against
            # the same node-class the batch gateway_peers set reflects.
            online_by_peer = self.overlay.online_by_peer

            def _is_gateway(peer: PeerID) -> bool:
                node = online_by_peer.get(peer)
                return node is not None and node.spec.node_class is NodeClass.GATEWAY

            self.stream = StreamAnalytics(
                config.stream_window,
                provider_of=self.world.cloud_db.lookup,
                is_gateway=_is_gateway,
            )
            if config.live is not None:
                self.control_server = ControlServer(config.live).start()
                print(
                    f"live campaign analytics at {self.control_server.url}",
                    file=sys.stderr,
                )
        self._built = True

    def _add_monitor_spec(self) -> NodeSpec:
        """Our own monitoring node: a stable university server (non-cloud,
        DE) that hosts the probe content and the Bitswap monitor."""
        key = ("isp-de", "DE")
        if key not in self.world.blocks_by_org_country:
            self.world.blocks_by_org_country[key] = self.world.allocator.allocate_block(
                "isp-de", "DE", is_cloud=False, prefix_len=14
            )
        spec = NodeSpec(
            index=max(s.index for s in self.world.specs) + 1,
            node_class=NodeClass.PLATFORM,
            organisation="isp-de",
            country="DE",
            blocks=(self.world.blocks_by_org_country[key],),
            behavior=self.world.profile.behaviors["platform"],
            platform="tud-monitor",
            activity_weight=0.1,
            num_addrs=1,
        )
        self.world.specs.append(spec)
        return spec

    # ------------------------------------------------------------------
    # the measurement period
    # ------------------------------------------------------------------

    def run(self) -> CampaignResult:
        if not self._built:
            self.build()
        with self._observed(), obs.span("campaign"):
            result = self._run()
        if self.config.metrics:
            self.obs.set_gauge("campaign.workers", self.config.workers)
            self.obs.set_gauge("campaign.num_crawls", len(result.crawls))
            self.obs.set_gauge("campaign.hydra_log_entries", len(self.hydra.log))
            self.obs.set_gauge("campaign.bitswap_log_entries", len(self.monitor.log))
            for name, value in self.engine.stats.items():
                self.obs.set_gauge(f"workload.{name}", value)
            driver = self.engine.open_loop
            if driver is not None:
                # The session driver's stream statistics ride the same
                # namespace, so `repro obs report` shows the closed-loop
                # engine counters and the open-loop session/popularity
                # stats side by side.
                for name, value in driver.stats.items():
                    self.obs.set_gauge(f"workload.{name}", value)
                for cls_name, value in driver.requests_by_class.items():
                    self.obs.set_gauge(
                        f"workload.requests_class.{cls_name.lower()}", value
                    )
                for name, value in driver.headline_shares().items():
                    self.obs.set_gauge(f"workload.{name}", value)
            result.metrics = self.obs.snapshot()
        if self.config.trace:
            # Main tracer first (meta + campaign-process events), then
            # each crawl task's records in crawl order — deterministic
            # regardless of which worker produced which crawl.
            trace_records = self.tracer.records()
            trace_records.extend(self._crawl_trace_records)
            result.trace = trace_records
            if self.config.trace_out:
                write_trace(trace_records, self.config.trace_out)
                result.trace_path = str(self.config.trace_out)
        if self.stream.enabled:
            result.sketches = self.stream.snapshot()
            if self.config.sketches_out:
                path = Path(self.config.sketches_out)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(
                    json.dumps(result.sketches, indent=2, sort_keys=True) + "\n"
                )
                result.sketches_path = str(path)
        if self.control_server is not None:
            result.live_url = self.control_server.url
            publisher = self.control_server.publisher
            publisher.publish(
                "status",
                {
                    "state": "stopped" if result.stopped_early else "done",
                    "phase": "done",
                    "events": self.stream.events,
                    "runtime": dict(sorted(self.stream.notes.items())),
                },
            )
            publisher.publish("sketches", result.sketches)
            if result.metrics is not None:
                publisher.publish("metrics", result.metrics)
        return result

    def _run(self) -> CampaignResult:
        config = self.config
        overlay = self.overlay
        if config.traffic_enabled:
            self.engine.seed_platform_content()
        persistent_items = self._seed_persistent_user_content(
            max(40, int(config.ens.num_names * config.ens.share_persistent_user))
        )
        ens_world = seed_ens_world(
            self.catalog,
            config.ens,
            random.Random(config.seed + 103),
            persistent_items=persistent_items,
        )

        provider_observations: List[ProviderObservation] = []
        crawl_interval = SECONDS_PER_DAY / config.crawls_per_day
        warmup = config.warmup_days
        next_crawl = warmup * SECONDS_PER_DAY
        crawl_id = 0
        total_days = warmup + config.days
        fetch_from_day = total_days - config.provider_fetch_days
        tick_seconds = SECONDS_PER_DAY / config.ticks_per_day

        # Crawls fan out over the execution engine: the sim loop freezes
        # each crawl's observable state (a cheap pure read) and the BFS
        # bucket sweeps — the expensive part — run on worker processes
        # while the simulation advances.  ``workers=1`` executes the
        # identical pure function inline, so the dataset is bit-identical
        # either way (each crawl's randomness is derived, never shared).
        crawl_engine = ParallelExecutor(workers=config.workers, retries=1)
        # With metrics on, each crawl collects into its own registry (so
        # nothing is lost on worker processes) and the parent merges the
        # per-task snapshots in crawl order below — identical totals at
        # any worker count.  With tracing on, each crawl additionally
        # carries a per-task tracer whose record stream rides back the
        # same way.
        if self.stream.enabled:
            # The streamed variant wraps the traced/observed/plain ones
            # and additionally ships each crawl's sketch state back for
            # the crawl-ordered merge below.
            crawl_fn = execute_crawl_task_streamed
            crawl_args = (
                config.metrics, config.trace, config.trace_sample, config.trace_buffer
            )
        elif config.trace:
            crawl_fn = execute_crawl_task_traced
            crawl_args = (config.trace_sample, config.trace_buffer)
        elif config.metrics:
            crawl_fn = execute_crawl_task_observed
            crawl_args = ()
        else:
            crawl_fn = execute_crawl_task
            crawl_args = ()

        progress = ProgressReporter() if config.progress else None
        total_ticks = total_days * config.ticks_per_day
        done_ticks = 0
        stopped_early = False

        with obs.span("simulate"), self._phase("simulate"):
            for day in range(total_days):
                obs.inc("campaign.days")
                self.catalog.build_day_index(day)
                if config.traffic_enabled:
                    self.engine.platform_reprovide_pass()
                    self.engine.user_reprovide_pass()
                for tick in range(config.ticks_per_day):
                    obs.inc("campaign.ticks")
                    while (
                        day >= warmup
                        and overlay.now >= next_crawl
                        and crawl_id < config.num_crawls
                    ):
                        crawl_engine.submit(
                            crawl_id, crawl_fn, self.crawler.task(crawl_id), *crawl_args
                        )
                        crawl_id += 1
                        next_crawl += crawl_interval
                    tick_start = overlay.now
                    if config.traffic_enabled:
                        self.engine.run_tick(tick_seconds / 3600.0)
                    if self.attack_orchestrator is not None:
                        # After the honest traffic, mirroring how real
                        # attack packets share the wire with user load.
                        self.attack_orchestrator.on_tick(tick_seconds / 3600.0)
                    if config.traffic_enabled and day >= fetch_from_day:
                        # The paper fetches each day's sampled CIDs the same
                        # day; fetching per tick keeps the same freshness.
                        sampled = self.monitor.sampled_cids_in_window(
                            tick_start,
                            overlay.now + tick_seconds,
                            config.daily_cid_sample // config.ticks_per_day,
                        )
                        with obs.span("provider-fetch"):
                            provider_observations.extend(self.fetcher.fetch_many(sampled))
                    overlay.scheduler.run_until(
                        day * SECONDS_PER_DAY + (tick + 1) * tick_seconds
                    )
                    done_ticks += 1
                    if progress is not None:
                        progress.update(
                            "simulate",
                            done_ticks,
                            total_ticks,
                            day=(day + 1, total_days),
                            crawls=(crawl_id, config.num_crawls),
                            tracer=self.tracer,
                            analytics=self.stream,
                        )
                    self._publish_live(
                        "running",
                        "simulate",
                        day=(day + 1, total_days),
                        tick=(done_ticks, total_ticks),
                        crawls=(crawl_id, config.num_crawls),
                    )
                    if self._stop_requested():
                        # Graceful early stop: finish this tick, drain the
                        # crawls already submitted, run the one-shot
                        # measurements — a normal result over the shorter
                        # horizon.
                        stopped_early = True
                        break
                if stopped_early:
                    break
        self.stream.finalize(overlay.now)

        if self.attack_orchestrator is not None:
            self.attack_orchestrator.finish()

        if progress is not None:
            progress.update(
                "crawl-drain",
                total_ticks,
                total_ticks,
                crawls=(crawl_id, config.num_crawls),
                tracer=self.tracer,
                force=True,
            )
        with obs.span("crawl-drain"), self._phase("crawl-drain"):
            self._publish_live(
                "running", "crawl-drain",
                crawls=(crawl_id, config.num_crawls), force=True,
            )
            crawl_results, exec_errors = crawl_engine.drain()
            crawl_engine.close()
            snapshots = []
            crawl_trace_records: List[Dict[str, object]] = []
            for i in sorted(crawl_results):
                outcome = crawl_results[i]
                if self.stream.enabled:
                    snapshot, crawl_metrics, trace_records, stream_state = outcome
                    if config.trace:
                        crawl_trace_records.extend(trace_records)
                    # Crawl-ordered merge: bit-identical at any worker
                    # count, like the metric snapshots and trace records.
                    self.stream.merge_crawl_state(stream_state)
                elif config.trace:
                    snapshot, crawl_metrics, trace_records = outcome
                    crawl_trace_records.extend(trace_records)
                elif config.metrics:
                    snapshot, crawl_metrics = outcome
                else:
                    snapshot, crawl_metrics = outcome, None
                snapshots.append(snapshot)
                if config.metrics and crawl_metrics is not None:
                    self.obs.merge_snapshot(crawl_metrics)
            crawl_dataset = CrawlDataset(snapshots=snapshots)
            self._crawl_trace_records = crawl_trace_records

        # Provider records expire after 24 h; refresh them so the one-shot
        # entry-point measurements below resolve live content.
        self.catalog.build_day_index(total_days - 1)
        if config.traffic_enabled:
            self.engine.platform_reprovide_pass()
        self.engine.user_reprovide_pass()

        # --- one-shot entry-point measurements -----------------------------
        monitor_node = next(
            node for node in overlay.nodes if node.spec.platform == "tud-monitor"
        )
        if not monitor_node.online:
            overlay.bring_online(monitor_node)
        prober = GatewayProber(overlay, self.monitor, monitor_node)
        with obs.span("gateway-probe"), self._phase("gateway-probe"):
            probe_reports = prober.run_campaign(
                self.services, config.gateway_probes_per_endpoint
            )
        scanner = ActiveScanner(self.dns_world.resolver)
        with obs.span("dns-scan"), self._phase("dns-scan"):
            dns_scan = scanner.scan(self.dns_world.scan_input)
        scraper = ENSContenthashScraper(
            ens_world.chain, [resolver.address for resolver in ens_world.resolvers]
        )
        with obs.span("ens-scrape"), self._phase("ens-scrape"):
            ens_scrape = scraper.scrape()
            ens_fetcher = ProviderRecordFetcher(overlay)
            ens_observations = ens_fetcher.fetch_many(ens_scrape.cids())

        # Disk-backed logs buffer writes; make the stored state complete
        # before handing the datasets to the analyses.
        self.hydra.log.flush()
        self.monitor.log.flush()

        attack_summary = None
        attack_ground_truth = None
        detection = None
        if self.attack_orchestrator is not None:
            attack_summary = self.attack_orchestrator.summary()
            attack_ground_truth = self.attack_orchestrator.ground_truth
        if config.detect:
            from repro.detect import run_detection

            with obs.span("detect"), self._phase("detect"):
                scorecard = run_detection(
                    self.hydra.log,
                    self.monitor.log,
                    ground_truth=attack_ground_truth,
                    window_seconds=config.detect_window,
                )
            detection = scorecard.to_dict()

        if progress is not None:
            progress.finish(
                f"campaign done: {len(crawl_dataset)} crawls, "
                f"{len(self.hydra.log)} hydra entries"
            )

        return CampaignResult(
            config=config,
            world=self.world,
            overlay=overlay,
            catalog=self.catalog,
            crawls=crawl_dataset,
            hydra=self.hydra,
            bitswap_monitor=self.monitor,
            provider_observations=provider_observations,
            gateway_registry=self.gateway_registry,
            gateway_probe_reports=probe_reports,
            dns_world=self.dns_world,
            dns_scan=dns_scan,
            ens_world=ens_world,
            ens_scrape=ens_scrape,
            ens_observations=ens_observations,
            gateway_peers=self._peers_of_class(NodeClass.GATEWAY),
            hydra_peers={
                node.peer
                for node in overlay.nodes
                if node.spec.platform == "hydra" and node.peer is not None
            },
            exec_errors=exec_errors,
            attack_summary=attack_summary,
            attack_ground_truth=attack_ground_truth,
            detection=detection,
            stopped_early=stopped_early,
        )

    def _seed_persistent_user_content(self, count: int):
        """Long-lived user-published items (ENS websites and the like).

        Publishers are ordinary participants — home servers, small VPSes,
        NAT-ed users — who keep the content alive through the daily
        re-provide cycle while they are online.
        """
        from repro.content.catalog import ContentItem
        from repro.ids.cid import CID

        rng = random.Random(self.config.seed + 104)
        class_weights = [
            (NodeClass.RESIDENTIAL_STABLE, 0.30),
            (NodeClass.CLOUD_STABLE, 0.25),
            (NodeClass.NAT_CLIENT, 0.35),
            (NodeClass.HYBRID, 0.10),
        ]
        pools = {
            cls: [node for node in self.overlay.nodes if node.spec.node_class is cls]
            for cls, _ in class_weights
        }
        items = []
        for _ in range(count):
            cls = rng.choices(
                [cls for cls, _ in class_weights],
                weights=[weight for _, weight in class_weights],
            )[0]
            pool = pools[cls] or self.overlay.nodes
            node = rng.choice(pool)
            item = self.catalog.add(
                ContentItem(
                    cid=CID.generate(rng),
                    publisher=node.spec.index,
                    created_day=0,
                    lifetime_days=self.config.days + 3,
                    weight=1.5,
                )
            )
            if node.online:
                self.engine.publish(node, cid=item.cid, fresh=False)
            else:
                node.provided_cids.add(item.cid)
            items.append(item)
        return items

    def _peers_of_class(self, node_class: NodeClass) -> Set[PeerID]:
        return {
            node.peer
            for node in self.overlay.nodes
            if node.spec.node_class is node_class and node.peer is not None
        }


def run_campaign(config: Optional[ScenarioConfig] = None) -> CampaignResult:
    """Build and run a campaign in one call."""
    campaign = MeasurementCampaign(config)
    campaign.build()
    try:
        return campaign.run()
    finally:
        campaign.close_live()
