"""Iterative Kademlia lookups.

``GetClosestPeers(key)`` traverses the DHT and returns the k closest peers
to the target key.  In each step, the querying node contacts the closest
nodes to the key it knows of; each returns the k closest peers in its own
routing table.  The process repeats until the client does not find any
more peers closer to the key (paper §2).

``FindProviders(cid)`` uses an identical walk but also queries encountered
nodes for provider records, terminating when either 20 providers have been
found or all resolvers have been asked.  The paper's §3 modification —
terminate *only* when all resolvers have been queried, to retrieve *all*
provider records — is exposed via ``exhaustive=True``.

Lookups are transport-agnostic: the caller supplies query callables, which
the simulator (or a test double) implements.  A callable returning ``None``
models an unreachable peer.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import PeerInfo
from repro.kademlia.providers import ProviderRecord
from repro.obs import metrics as obs
from repro.obs import trace

#: Kademlia replication parameter: number of closest peers returned,
#: and number of resolvers holding each provider record.
DEFAULT_K = 20

#: Lookup concurrency (peers queried per round).
DEFAULT_ALPHA = 3

FindNodeQuery = Callable[[PeerID, int], Optional[Sequence[PeerInfo]]]
GetProvidersQuery = Callable[
    [PeerID, CID], Optional[Tuple[Sequence[ProviderRecord], Sequence[PeerInfo]]]
]


@dataclass
class LookupResult:
    """Outcome of a ``GetClosestPeers`` walk.

    :ivar closest: up to ``k`` reachable peers closest to the target.
    :ivar contacted: peers successfully queried, in query order.
    :ivar failed: peers that did not respond.
    :ivar messages: number of requests sent (the traffic the walk created).
    """

    closest: List[PeerInfo] = field(default_factory=list)
    contacted: List[PeerID] = field(default_factory=list)
    failed: Set[PeerID] = field(default_factory=set)
    messages: int = 0


@dataclass
class ProviderLookupResult(LookupResult):
    """Outcome of a ``FindProviders`` walk: walk stats plus the records."""

    providers: List[ProviderRecord] = field(default_factory=list)
    resolvers_queried: List[PeerID] = field(default_factory=list)


class _Walk:
    """Shared machinery of the iterative walks.

    The frontier is an *incremental* sorted structure: each absorbed peer
    has its XOR distance to the target computed exactly once and is
    inserted into a distance-ordered list, instead of re-sorting every
    known peer on every round.  Ties on distance are impossible for
    distinct DHT keys, and equal-distance duplicates are broken by
    absorption order via a per-peer sequence number — exactly the order a
    stable full sort over the insertion-ordered pool would produce.
    """

    def __init__(self, target_key: int, start: Sequence[PeerInfo], k: int, alpha: int) -> None:
        self.target_key = target_key
        self.k = k
        self.alpha = alpha
        self.known: Dict[PeerID, PeerInfo] = {}
        self.queried: Set[PeerID] = set()
        self.failed: Set[PeerID] = set()
        self.contacted: List[PeerID] = []
        self.messages = 0
        #: (distance, seq, info) for every known, live-so-far peer, in
        #: ascending distance order; ``seq`` is unique so ``info`` never
        #: gets compared.
        self._frontier: List[Tuple[int, int, PeerInfo]] = []
        #: peer -> its frontier item, for removal on failure.
        self._entries: Dict[PeerID, Tuple[int, int, PeerInfo]] = {}
        self._seq = 0
        #: Smallest XOR distance over every peer *ever* absorbed — unlike
        #: the frontier head it never moves away from the target when the
        #: closest peer fails, making it the monotone progress measure
        #: the trace auditor checks per round.
        self.best_distance: Optional[int] = None
        self.absorb(start)

    def _distance(self, peer: PeerID) -> int:
        return peer.dht_key ^ self.target_key

    def candidates(self) -> List[PeerInfo]:
        """Known, live-so-far peers ordered by distance to the target."""
        return [info for _, _, info in self._frontier]

    def next_batch(self) -> List[PeerInfo]:
        """Up to ``alpha`` unqueried peers among the ``k`` closest known.

        Empty when the ``k`` closest known live peers have all been
        queried — the walk's termination condition.
        """
        queried = self.queried
        batch = []
        for _, _, info in self._frontier[: self.k]:
            if info.peer not in queried:
                batch.append(info)
                if len(batch) >= self.alpha:
                    break
        return batch

    def absorb(self, closer_peers: Sequence[PeerInfo]) -> None:
        known = self.known
        entries = self._entries
        frontier = self._frontier
        target_key = self.target_key
        seq = self._seq
        best = self.best_distance
        for info in closer_peers:
            peer = info.peer
            if peer in known:
                continue
            known[peer] = info
            distance = peer.dht_key ^ target_key
            item = (distance, seq, info)
            seq += 1
            entries[peer] = item
            insort(frontier, item)
            if best is None or distance < best:
                best = distance
        self._seq = seq
        self.best_distance = best

    def mark_failed(self, peer: PeerID) -> None:
        """Record a non-responding peer and drop it from the frontier."""
        self.failed.add(peer)
        item = self._entries.pop(peer, None)
        if item is None:
            return
        # ``(distance, seq)`` is unique, so bisect lands exactly on the
        # item without ever comparing the PeerInfo payloads.
        position = bisect_left(self._frontier, item)
        if position < len(self._frontier) and self._frontier[position] is item:
            del self._frontier[position]

    def closest_live(self) -> List[PeerInfo]:
        """The ``k`` closest peers that answered a query."""
        queried = self.queried
        live = []
        for _, _, info in self._frontier:
            if info.peer in queried:
                live.append(info)
                if len(live) >= self.k:
                    break
        return live


def iterative_find_node(
    target_key: int,
    start: Sequence[PeerInfo],
    query: FindNodeQuery,
    k: int = DEFAULT_K,
    alpha: int = DEFAULT_ALPHA,
    max_queries: int = 500,
) -> LookupResult:
    """Run a ``GetClosestPeers(target_key)`` walk.

    :param target_key: DHT key being walked towards.
    :param start: initial candidates (typically from the local table).
    :param query: ``(peer, target_key) -> closer peers or None``.
    :param max_queries: safety valve against pathological topologies.
    """
    walk = _Walk(target_key, start, k, alpha)
    tracer = trace.get_tracer()
    rounds = 0
    with tracer.span("lookup.find_node") as lookup_span:
        while walk.messages < max_queries:
            batch = walk.next_batch()
            if not batch:
                break
            if tracer.enabled:
                tracer.event(
                    "lookup.round",
                    round=rounds,
                    batch=len(batch),
                    frontier=len(walk._frontier),
                    failed=len(walk.failed),
                    best=walk.best_distance,
                )
            rounds += 1
            for info in batch:
                if walk.messages >= max_queries:
                    break
                walk.queried.add(info.peer)
                walk.messages += 1
                response = query(info.peer, target_key)
                if response is None:
                    walk.mark_failed(info.peer)
                    continue
                walk.contacted.append(info.peer)
                walk.absorb(response)
        if tracer.enabled:
            lookup_span.note(
                reason="max_queries" if walk.messages >= max_queries else "frontier_exhausted",
                rounds=rounds,
                messages=walk.messages,
                failed=len(walk.failed),
            )
    obs.inc("lookup.find_node_walks")
    obs.inc("lookup.messages", walk.messages)
    obs.inc("lookup.failed_peers", len(walk.failed))
    obs.observe("lookup.walk_messages", walk.messages)
    return LookupResult(
        closest=walk.closest_live(),
        contacted=walk.contacted,
        failed=walk.failed,
        messages=walk.messages,
    )


def iterative_find_providers(
    cid: CID,
    start: Sequence[PeerInfo],
    query: GetProvidersQuery,
    k: int = DEFAULT_K,
    alpha: int = DEFAULT_ALPHA,
    max_providers: int = DEFAULT_K,
    exhaustive: bool = False,
    max_queries: int = 500,
) -> ProviderLookupResult:
    """Run a ``FindProviders(cid)`` walk.

    The default termination matches stock go-ipfs: stop when
    ``max_providers`` provider records were found or all resolvers were
    asked.  With ``exhaustive=True`` the walk only terminates when all
    resolvers (the ``k`` closest peers to the CID) have been queried —
    the paper's §3 modification for complete provider-record collection.
    """
    target_key = cid.dht_key
    walk = _Walk(target_key, start, k, alpha)
    providers: Dict[PeerID, ProviderRecord] = {}
    tracer = trace.get_tracer()
    rounds = 0
    with tracer.span("lookup.find_providers") as lookup_span:
        while walk.messages < max_queries:
            if not exhaustive and len(providers) >= max_providers:
                break
            batch = walk.next_batch()
            if not batch:
                break
            if tracer.enabled:
                tracer.event(
                    "lookup.round",
                    round=rounds,
                    batch=len(batch),
                    frontier=len(walk._frontier),
                    failed=len(walk.failed),
                    best=walk.best_distance,
                )
            rounds += 1
            for info in batch:
                if walk.messages >= max_queries:
                    break
                walk.queried.add(info.peer)
                walk.messages += 1
                response = query(info.peer, cid)
                if response is None:
                    walk.mark_failed(info.peer)
                    continue
                walk.contacted.append(info.peer)
                records, closer_peers = response
                for record in records:
                    providers.setdefault(record.provider, record)
                walk.absorb(closer_peers)
                if not exhaustive and len(providers) >= max_providers:
                    break
        if tracer.enabled:
            if not exhaustive and len(providers) >= max_providers:
                reason = "providers_found"
            elif walk.messages >= max_queries:
                reason = "max_queries"
            else:
                reason = "frontier_exhausted"
            lookup_span.note(
                reason=reason,
                rounds=rounds,
                messages=walk.messages,
                failed=len(walk.failed),
                providers=len(providers),
            )
    obs.inc("lookup.find_providers_walks")
    obs.inc("lookup.messages", walk.messages)
    obs.inc("lookup.failed_peers", len(walk.failed))
    obs.inc("lookup.provider_records", len(providers))
    obs.observe("lookup.walk_messages", walk.messages)
    return ProviderLookupResult(
        closest=walk.closest_live(),
        contacted=walk.contacted,
        failed=walk.failed,
        messages=walk.messages,
        providers=list(providers.values()),
        resolvers_queried=[info.peer for info in walk.closest_live()],
    )
