"""DHT wire messages and their traffic classification.

The paper classifies DHT traffic into content-related *downloads*
(requesting providers for a CID), *advertisements* (announcing a new
provider for a CID) and *other* messages such as nodes joining the network
(§5).  The message shapes here follow go-libp2p-kad-dht's protobuf message
types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID


class MessageType(enum.Enum):
    """DHT message types (mirroring the libp2p kad-dht protobuf enum)."""

    PING = "PING"
    FIND_NODE = "FIND_NODE"
    GET_PROVIDERS = "GET_PROVIDERS"
    ADD_PROVIDER = "ADD_PROVIDER"


class TrafficClass(enum.Enum):
    """The paper's §5 classification of DHT traffic."""

    DOWNLOAD = "download"
    ADVERTISEMENT = "advertisement"
    OTHER = "other"


def classify_message(message_type: MessageType) -> TrafficClass:
    """Map a DHT message type onto the paper's download/advertise/other split."""
    if message_type is MessageType.GET_PROVIDERS:
        return TrafficClass.DOWNLOAD
    if message_type is MessageType.ADD_PROVIDER:
        return TrafficClass.ADVERTISEMENT
    return TrafficClass.OTHER


@dataclass(frozen=True)
class PeerInfo:
    """A peer and its advertised multiaddresses, as returned by FIND_NODE."""

    peer: PeerID
    addrs: Tuple[Multiaddr, ...] = ()

    def __post_init__(self) -> None:
        for addr in self.addrs:
            if addr.peer != self.peer:
                raise ValueError("multiaddr peer does not match PeerInfo peer")


@dataclass(frozen=True)
class FindNodeRequest:
    """Ask a peer for the k closest peers to ``target`` in its table."""

    target: int  # a DHT key


@dataclass(frozen=True)
class FindNodeResponse:
    closer_peers: Tuple[PeerInfo, ...]


@dataclass(frozen=True)
class GetProvidersRequest:
    """Ask a peer for provider records for ``cid`` plus closer peers."""

    cid: CID


@dataclass(frozen=True)
class GetProvidersResponse:
    providers: Tuple[PeerInfo, ...]
    closer_peers: Tuple[PeerInfo, ...]


@dataclass(frozen=True)
class AddProviderRequest:
    """Store a provider record: the sender provides ``cid`` at ``addrs``."""

    cid: CID
    provider: PeerInfo


@dataclass(frozen=True)
class PingRequest:
    """Liveness check; also used as the generic 'other' message."""

    nonce: int = 0


Request = object  # documentation alias: one of the *Request dataclasses


@dataclass(frozen=True, slots=True)
class MessageEnvelope:
    """A logged DHT message as captured by the Hydra-booster (§3).

    The Hydra logs the timestamp, the sender's peer ID and IP address, the
    type of the request, and the target key; when the sender used NAT
    traversal, the relaying DHT server is logged too.
    """

    timestamp: float
    sender: PeerID
    sender_ip: str
    message_type: MessageType
    target_key: Optional[int] = None
    target_cid: Optional[CID] = None
    via_relay: Optional[PeerID] = None
    traffic_class: TrafficClass = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "traffic_class", classify_message(self.message_type))
