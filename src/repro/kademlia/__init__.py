"""Kademlia DHT building blocks.

IPFS uses a Kademlia DHT implementing a key-value store (paper §2).  This
subpackage provides the protocol-level pieces:

* :mod:`repro.kademlia.routing_table` — k-buckets and the routing table,
* :mod:`repro.kademlia.messages` — DHT wire messages and their
  download/advertisement classification,
* :mod:`repro.kademlia.providers` — provider-record storage with expiry,
* :mod:`repro.kademlia.lookup` — the iterative ``GetClosestPeers`` /
  ``FindProviders`` walks, including the paper's exhaustive variant.

The pieces are transport-agnostic; :mod:`repro.netsim` wires them to the
simulated overlay.
"""

from repro.kademlia.messages import MessageType, TrafficClass, classify_message
from repro.kademlia.providers import ProviderRecord, ProviderStore
from repro.kademlia.routing_table import KBucket, RoutingTable
from repro.kademlia.lookup import LookupResult, ProviderLookupResult, iterative_find_node, iterative_find_providers

__all__ = [
    "KBucket",
    "LookupResult",
    "MessageType",
    "ProviderLookupResult",
    "ProviderRecord",
    "ProviderStore",
    "RoutingTable",
    "TrafficClass",
    "classify_message",
    "iterative_find_node",
    "iterative_find_providers",
]
