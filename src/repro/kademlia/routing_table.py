"""K-buckets and the Kademlia routing table.

A node with address ``a_n`` stores its outbound DHT connections in
k-buckets, which form a view of the network as a binary trie.  Buckets have
a fixed capacity of ``k`` connections, which generally leads to the first,
furthest buckets being filled completely, whereas buckets closer to ``a_n``
tend to contain fewer and fewer connections (paper §3).  Only peers
providing DHT *server* functionality are stored in the buckets.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ids.keys import KEY_BITS, bucket_index, select_closest
from repro.ids.peerid import PeerID

DEFAULT_BUCKET_SIZE = 20


@dataclass
class KBucket:
    """A single k-bucket: an ordered set of peers, least-recently seen first.

    Kademlia's replacement policy keeps long-lived peers (they are the most
    likely to stay alive), so new peers are rejected when the bucket is
    full rather than evicting an existing live entry.
    """

    capacity: int = DEFAULT_BUCKET_SIZE
    _peers: Dict[PeerID, None] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, peer: PeerID) -> bool:
        return peer in self._peers

    def __iter__(self) -> Iterator[PeerID]:
        return iter(self._peers)

    @property
    def is_full(self) -> bool:
        return len(self._peers) >= self.capacity

    def add(self, peer: PeerID) -> bool:
        """Insert ``peer``; refresh its position if already present.

        Returns ``True`` if the peer is in the bucket afterwards.
        """
        if peer in self._peers:
            # Move to most-recently-seen position.
            del self._peers[peer]
            self._peers[peer] = None
            return True
        if self.is_full:
            return False
        self._peers[peer] = None
        return True

    def remove(self, peer: PeerID) -> bool:
        """Drop ``peer`` (e.g. it failed to respond). Returns whether present."""
        if peer in self._peers:
            del self._peers[peer]
            return True
        return False

    def oldest(self) -> Optional[PeerID]:
        """Least-recently seen peer, or ``None`` if empty."""
        return next(iter(self._peers), None)

    def peers(self) -> List[PeerID]:
        return list(self._peers)


class RoutingTable:
    """The per-node Kademlia routing table.

    Bucket ``i`` holds peers sharing exactly ``i`` leading bits with the
    owner's DHT key.  go-libp2p-kad-dht unfolds buckets lazily; we keep a
    sparse dict of buckets keyed by prefix length, which is equivalent for
    every operation the paper's measurements exercise (in particular the
    crawler's bucket-sweep enumeration).
    """

    def __init__(self, owner: PeerID, bucket_size: int = DEFAULT_BUCKET_SIZE) -> None:
        self.owner = owner
        self.bucket_size = bucket_size
        self._buckets: Dict[int, KBucket] = {}
        self._peer_buckets: Dict[PeerID, int] = {}
        # Sorted DHT-key index over the stored peers, so ``closest`` can
        # use the aligned-prefix-range query instead of a full sort.
        self._sorted_keys: List[int] = []
        self._peer_by_key: Dict[int, PeerID] = {}
        # Distinct peers sharing a DHT key never occur with SHA-256-derived
        # keys, but the index would silently drop one; fall back to the
        # exact full sort if it ever happens.
        self._key_collision = False

    def __len__(self) -> int:
        return len(self._peer_buckets)

    def __contains__(self, peer: PeerID) -> bool:
        return peer in self._peer_buckets

    def bucket_index_for(self, peer: PeerID) -> int:
        """Which bucket ``peer`` belongs in (by common prefix length)."""
        return bucket_index(self.owner.dht_key, peer.dht_key)

    def bucket(self, index: int) -> KBucket:
        """The bucket at ``index``, created on first touch."""
        if index not in self._buckets:
            self._buckets[index] = KBucket(capacity=self.bucket_size)
        return self._buckets[index]

    def add(self, peer: PeerID) -> bool:
        """Try to insert ``peer``; returns whether it is stored.

        The owner itself is never stored.  A full bucket rejects the
        insertion (classic Kademlia keeps the incumbent).
        """
        if peer == self.owner:
            return False
        index = self.bucket_index_for(peer)
        added = self.bucket(index).add(peer)
        if added and peer not in self._peer_buckets:
            key = peer.dht_key
            incumbent = self._peer_by_key.get(key)
            if incumbent is None:
                self._peer_by_key[key] = peer
                insort(self._sorted_keys, key)
            elif incumbent != peer:
                self._key_collision = True
            self._peer_buckets[peer] = index
        return added

    def remove(self, peer: PeerID) -> bool:
        """Remove a peer (stale/dead entry). Returns whether it was present."""
        index = self._peer_buckets.pop(peer, None)
        if index is None:
            return False
        key = peer.dht_key
        if self._peer_by_key.get(key) == peer:
            del self._peer_by_key[key]
            position = bisect_left(self._sorted_keys, key)
            if position < len(self._sorted_keys) and self._sorted_keys[position] == key:
                del self._sorted_keys[position]
        return self._buckets[index].remove(peer)

    def peers(self) -> List[PeerID]:
        """All stored peers (the node's complete outbound DHT view)."""
        return list(self._peer_buckets)

    def nonempty_buckets(self) -> List[int]:
        """Indices of buckets currently holding at least one peer."""
        return sorted(index for index, bucket in self._buckets.items() if len(bucket) > 0)

    def closest(self, key: int, count: int) -> List[PeerID]:
        """The ``count`` stored peers closest (XOR) to ``key``.

        This is what a FIND_NODE handler returns.  The sorted key index
        answers it via an aligned-prefix-range scan — identical output to
        a full XOR sort over all entries, without the per-call sort.
        """
        if self._key_collision:
            return sorted(self._peer_buckets, key=lambda peer: peer.dht_key ^ key)[:count]
        by_key = self._peer_by_key
        return [by_key[k] for k in select_closest(self._sorted_keys, key, count)]

    def fullness(self) -> Dict[int, int]:
        """Occupancy per bucket index — useful to verify the trie shape."""
        return {index: len(bucket) for index, bucket in self._buckets.items() if len(bucket) > 0}

    @property
    def max_bucket_index(self) -> int:
        """Deepest non-empty bucket (0 when the table is empty)."""
        indices = self.nonempty_buckets()
        return indices[-1] if indices else 0

    @staticmethod
    def num_possible_buckets() -> int:
        return KEY_BITS
