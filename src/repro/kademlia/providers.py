"""Provider-record storage.

A provider record is a mapping of CID to multiaddresses that embeds the
provider's connectivity information and peer ID (paper §6).  DHT servers
close to a CID store these records; records expire (go-ipfs uses a 24 h
TTL with 12 h re-provides) so stale providers eventually disappear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID

#: Seconds before a provider record expires (go-ipfs default: 24 h).
DEFAULT_RECORD_TTL = 24 * 3600.0


@dataclass(frozen=True)
class ProviderRecord:
    """One advertised provider for one CID."""

    cid: CID
    provider: PeerID
    addrs: Tuple[Multiaddr, ...]
    published_at: float

    @property
    def is_relayed(self) -> bool:
        """Whether the provider is reachable only through a relay (NAT-ed)."""
        return bool(self.addrs) and all(addr.is_circuit for addr in self.addrs)


class ProviderStore:
    """Per-node store of provider records with TTL-based expiry."""

    def __init__(self, ttl: float = DEFAULT_RECORD_TTL) -> None:
        self.ttl = ttl
        self._records: Dict[CID, Dict[PeerID, ProviderRecord]] = {}

    def add(self, record: ProviderRecord) -> None:
        """Store or refresh a record (a re-provide replaces the old one)."""
        self._records.setdefault(record.cid, {})[record.provider] = record

    def get(self, cid: CID, now: float) -> List[ProviderRecord]:
        """Unexpired records for ``cid``; expired ones are pruned in place."""
        by_provider = self._records.get(cid)
        if not by_provider:
            return []
        alive = {}
        for provider, record in by_provider.items():
            if now - record.published_at < self.ttl:
                alive[provider] = record
        if alive:
            self._records[cid] = alive
        else:
            del self._records[cid]
        return list(alive.values())

    def cids(self) -> List[CID]:
        """All CIDs with at least one (possibly expired) record."""
        return list(self._records)

    def prune(self, now: float) -> int:
        """Drop every expired record; returns how many were removed."""
        removed = 0
        for cid in list(self._records):
            by_provider = self._records[cid]
            alive = {
                provider: record
                for provider, record in by_provider.items()
                if now - record.published_at < self.ttl
            }
            removed += len(by_provider) - len(alive)
            if alive:
                self._records[cid] = alive
            else:
                del self._records[cid]
        return removed

    def __len__(self) -> int:
        return sum(len(by_provider) for by_provider in self._records.values())
