"""Populating the synthetic DNS namespace.

Creates the background population of registered domains, the gateway
operators' own zones (A records on their frontend IPs), and the DNSLink
adopters.  Adopter wiring follows the paper's Fig. 17 structure:

* some point their domain at a *public gateway* (ALIAS/CNAME to e.g.
  ``cloudflare-ipfs.com``) — their IPs coincide with gateway frontends,
* many sit behind Cloudflare's reverse proxy with their own origin,
* others run their own proxy VM at a cloud provider,
* a minority self-host a proxy on non-cloud addresses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.passive import PassiveDNSFeed
from repro.dns.records import RRType, ResourceRecord, ZoneRegistry, make_dnslink_txt
from repro.dns.resolver import Resolver
from repro.gateway.operators import GatewayOperator, default_operators, frontend_ips
from repro.ids.cid import CID
from repro.world.ipspace import format_ip
from repro.world.population import World

_TLDS = ("com", "org", "net", "io", "xyz", "dev", "app", "se", "ch", "de", "info")

_WORDS = (
    "alpha", "nova", "pixel", "lumen", "terra", "vega", "orbit", "quanta",
    "mistral", "zephyr", "atlas", "ember", "fjord", "glade", "harbor",
    "iris", "juno", "krypton", "lyra", "meadow", "nimbus", "onyx",
)


@dataclass
class DNSLinkSeedConfig:
    """Adopter mix (shares sum to 1) and campaign sizes."""

    background_domains: int = 8000
    dnslink_domains: int = 400
    ipns_share: float = 0.2
    share_public_gateway: float = 0.17
    share_cloudflare_proxied: float = 0.37
    share_cloud_proxy: float = 0.26
    share_noncloud: float = 0.20
    cloud_proxy_providers: Tuple[Tuple[str, float], ...] = (
        ("amazon-aws", 0.30),
        ("digital-ocean", 0.22),
        ("hetzner", 0.18),
        ("vultr", 0.16),
        ("google-cloud", 0.14),
    )
    noncloud_countries: Tuple[Tuple[str, float], ...] = (
        ("US", 0.3), ("DE", 0.25), ("FR", 0.15), ("GB", 0.1),
        ("SE", 0.08), ("NL", 0.07), ("PL", 0.05),
    )


@dataclass
class DNSWorld:
    """Everything the DNS measurements run against."""

    registry: ZoneRegistry
    resolver: Resolver
    passive: PassiveDNSFeed
    operators: List[GatewayOperator]
    frontend_ips_by_operator: Dict[str, List[str]]
    dnslink_domains: List[str]
    scan_input: List[str]

    def gateway_domains(self) -> List[str]:
        return [operator.domain for operator in self.operators]

    def all_frontend_ips(self) -> List[str]:
        ips: List[str] = []
        for addresses in self.frontend_ips_by_operator.values():
            ips.extend(addresses)
        return ips


def _domain_name(rng: random.Random, used: set) -> str:
    while True:
        name = (
            f"{rng.choice(_WORDS)}-{rng.choice(_WORDS)}{rng.randrange(1000)}."
            f"{rng.choice(_TLDS)}"
        )
        if name not in used:
            used.add(name)
            return name


def seed_dns_world(
    world: World,
    operators: Optional[List[GatewayOperator]] = None,
    config: Optional[DNSLinkSeedConfig] = None,
    rng: Optional[random.Random] = None,
) -> DNSWorld:
    """Build the namespace, gateway zones, adopters and passive feed."""
    operators = operators if operators is not None else default_operators()
    config = config or DNSLinkSeedConfig()
    rng = rng or random.Random(world.profile.seed + 8)
    registry = ZoneRegistry()
    passive = PassiveDNSFeed()
    used: set = set()

    # Gateway operators' own zones and frontend addresses.
    frontends: Dict[str, List[str]] = {}
    for operator in operators:
        zone = registry.create_zone(operator.domain)
        addresses = [format_ip(ip) for ip in frontend_ips(world, operator, rng)]
        frontends[operator.name] = addresses
        for address in addresses:
            zone.add(ResourceRecord(operator.domain, RRType.A, address))
            # Passive sensors across Europe observe every frontend over a
            # month of traffic (multiplicity irrelevant to the IP sets).
            passive.observe(operator.domain, RRType.A, address, count=rng.randrange(5, 200))

    # Background population of registered, DNSLink-free domains.
    scan_input: List[str] = []
    for _ in range(config.background_domains):
        domain = _domain_name(rng, used)
        registry.create_zone(domain)
        scan_input.append(domain)

    # DNSLink adopters.
    shares = (
        ("public_gateway", config.share_public_gateway),
        ("cloudflare_proxied", config.share_cloudflare_proxied),
        ("cloud_proxy", config.share_cloud_proxy),
        ("noncloud", config.share_noncloud),
    )
    kinds = [kind for kind, _ in shares]
    weights = [weight for _, weight in shares]
    cloudflare_ops = [op for op in operators if op.provider == "cloudflare"]
    dnslink_domains: List[str] = []
    for _ in range(config.dnslink_domains):
        domain = _domain_name(rng, used)
        zone = registry.create_zone(domain)
        dnslink_domains.append(domain)
        scan_input.append(domain)
        kind = "ipns" if rng.random() < config.ipns_share else "ipfs"
        target = CID.generate(rng).to_base32() if kind == "ipfs" else f"k51{rng.randrange(10**12)}"
        zone.add(make_dnslink_txt(domain, target, kind))
        wiring = rng.choices(kinds, weights=weights, k=1)[0]
        if wiring == "public_gateway":
            operator = rng.choice(operators)
            record_type = RRType.ALIAS if rng.random() < 0.5 else RRType.CNAME
            zone.add(ResourceRecord(domain, record_type, operator.domain + "."))
        elif wiring == "cloudflare_proxied":
            operator = rng.choice(cloudflare_ops)
            block = world.blocks_by_org_country.get(("gateway:" + operator.name, "US"))
            if block is None:
                from repro.gateway.operators import _gateway_block

                block = _gateway_block(world, operator, "US")
            address = format_ip(world.allocator.next_address(block))
            zone.add(ResourceRecord(domain, RRType.A, address))
        elif wiring == "cloud_proxy":
            providers = [provider for provider, _ in config.cloud_proxy_providers]
            provider_weights = [weight for _, weight in config.cloud_proxy_providers]
            provider = rng.choices(providers, weights=provider_weights, k=1)[0]
            block = _provider_block(world, provider, rng)
            address = format_ip(world.allocator.next_address(block))
            zone.add(ResourceRecord(domain, RRType.A, address))
        else:  # noncloud self-hosted proxy
            countries = [country for country, _ in config.noncloud_countries]
            country_weights = [weight for _, weight in config.noncloud_countries]
            country = rng.choices(countries, weights=country_weights, k=1)[0]
            key = (f"isp-{country.lower()}", country)
            if key not in world.blocks_by_org_country:
                world.blocks_by_org_country[key] = world.allocator.allocate_block(
                    key[0], country, is_cloud=False, prefix_len=14
                )
            address = format_ip(world.allocator.next_address(world.blocks_by_org_country[key]))
            zone.add(ResourceRecord(domain, RRType.A, address))

    # Noise: some subdomain names in the scan input exercise root-domain
    # reduction, mirroring the paper's CT-log-derived candidates.
    for domain in rng.sample(scan_input, min(500, len(scan_input))):
        scan_input.append(f"www.{domain}")

    from repro.gateway.operators import _rebuild_databases

    _rebuild_databases(world)
    return DNSWorld(
        registry=registry,
        resolver=Resolver(registry),
        passive=passive,
        operators=operators,
        frontend_ips_by_operator=frontends,
        dnslink_domains=dnslink_domains,
        scan_input=scan_input,
    )


def _provider_block(world: World, provider: str, rng: random.Random):
    """Any block of a cloud provider (allocate a generic US one if none)."""
    candidates = [
        block
        for (org, _), block in world.blocks_by_org_country.items()
        if org == provider or (org.startswith(("gateway:", "platform:")) and block.organisation == provider)
    ]
    candidates.extend(
        block for block in world.allocator.blocks if block.organisation == provider
    )
    if candidates:
        return rng.choice(candidates)
    block = world.allocator.allocate_block(provider, "US", is_cloud=True, prefix_len=18)
    world.blocks_by_org_country[(provider, "US")] = block
    return block
