"""The active DNSLink scanning pipeline (paper §3).

Pipeline stages, mirroring the paper's methodology:

1. take an input list of candidate names, reduce to registered *root*
   domains (public-suffix filtering),
2. SOA scan — drop NXDOMAIN names,
3. query ``_dnslink.<domain>`` TXT and keep properly formatted DNSLink
   entries,
4. query A records on the domains with valid entries to learn the
   gateway/proxy addresses serving the content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.records import DNSLINK_PREFIX, parse_dnslink_txt
from repro.dns.resolver import ResolutionError, Resolver

#: A minimal public-suffix list for the synthetic namespace.
PUBLIC_SUFFIXES = (
    "com", "net", "org", "io", "xyz", "info", "dev", "app",
    "co.uk", "com.br", "se", "nu", "ch", "de", "fr", "eth.link",
)


def registrable_domain(name: str) -> Optional[str]:
    """Reduce a name to its registrable (root) domain using the suffix
    list, e.g. ``a.b.example.co.uk -> example.co.uk``.  Returns ``None``
    for bare suffixes or unknown TLDs."""
    labels = name.lower().strip(".").split(".")
    best: Optional[str] = None
    for suffix in PUBLIC_SUFFIXES:
        suffix_labels = suffix.split(".")
        if len(labels) > len(suffix_labels) and labels[-len(suffix_labels):] == suffix_labels:
            candidate = ".".join(labels[-len(suffix_labels) - 1 :])
            if best is None or len(suffix_labels) > len(best.split(".")) - 1:
                best = candidate
    return best


@dataclass
class DNSLinkRecord:
    """One discovered, valid DNSLink deployment."""

    domain: str
    kind: str            # "ipfs" | "ipns"
    target: str          # CID string or key hash
    a_record_ips: Tuple[str, ...]


@dataclass
class DNSLinkScanResult:
    """Outcome of a full scanning campaign."""

    input_names: int
    root_domains: int
    registered_domains: int
    dnslink_records: List[DNSLinkRecord] = field(default_factory=list)

    @property
    def all_ips(self) -> List[str]:
        ips: List[str] = []
        for record in self.dnslink_records:
            ips.extend(record.a_record_ips)
        return ips


class ActiveScanner:
    """zdns-like bulk scanner over the synthetic namespace."""

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver

    def scan(self, names: Sequence[str]) -> DNSLinkScanResult:
        """Run the four-stage pipeline over ``names``."""
        roots = sorted({
            domain for domain in (registrable_domain(name) for name in names) if domain
        })
        registered = [domain for domain in roots if self.resolver.soa_exists(domain)]
        result = DNSLinkScanResult(
            input_names=len(names),
            root_domains=len(roots),
            registered_domains=len(registered),
        )
        for domain in registered:
            for value in self.resolver.txt(f"{DNSLINK_PREFIX}.{domain}"):
                parsed = parse_dnslink_txt(value)
                if parsed is None:
                    continue
                kind, target = parsed
                try:
                    ips = tuple(self.resolver.resolve_a(domain))
                except ResolutionError:
                    ips = ()
                result.dnslink_records.append(
                    DNSLinkRecord(domain=domain, kind=kind, target=target, a_record_ips=ips)
                )
        return result
