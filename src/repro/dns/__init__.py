"""The DNS substrate and the paper's active/passive DNS measurements.

DNSLink associates domain names with IPFS content via ``_dnslink`` TXT
records; the domain's A/CNAME/ALIAS records must point at a gateway or
proxy for the content to be web-reachable (paper §2).  The paper scans
286 M root domains for DNSLink entries and complements the view with
passive DNS data (§3).

* :mod:`repro.dns.records` — resource records and zones,
* :mod:`repro.dns.resolver` — recursive resolution (CNAME/ALIAS chains),
* :mod:`repro.dns.scanner` — the zdns-like active scanning pipeline,
* :mod:`repro.dns.passive` — the SIE-like passive DNS feed,
* :mod:`repro.dns.seeding` — populating the synthetic namespace with
  DNSLink adopters.
"""

from repro.dns.records import DNSLINK_PREFIX, RRType, ResourceRecord, Zone, ZoneRegistry
from repro.dns.resolver import Resolver
from repro.dns.scanner import ActiveScanner, DNSLinkScanResult
from repro.dns.passive import PassiveDNSFeed

__all__ = [
    "ActiveScanner",
    "DNSLINK_PREFIX",
    "DNSLinkScanResult",
    "PassiveDNSFeed",
    "RRType",
    "Resolver",
    "ResourceRecord",
    "Zone",
    "ZoneRegistry",
]
