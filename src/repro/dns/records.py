"""DNS resource records and zone storage.

Supports the record types the paper's DNSLink measurements touch: SOA
(registered-domain detection), TXT (``dnslink=`` entries per RFC 1464),
A (gateway/proxy addresses), CNAME and ALIAS (pointing domains at public
gateways).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: The dedicated label DNSLink records live under.
DNSLINK_PREFIX = "_dnslink"


class RRType(enum.Enum):
    SOA = "SOA"
    A = "A"
    CNAME = "CNAME"
    ALIAS = "ALIAS"
    TXT = "TXT"


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record."""

    name: str
    rrtype: RRType
    value: str
    ttl: int = 3600


def make_dnslink_txt(name: str, target: str, kind: str = "ipfs") -> ResourceRecord:
    """A well-formed DNSLink TXT record.

    ``kind`` is ``"ipfs"`` (immutable CID) or ``"ipns"`` (key hash):
    ``dnslink=/ipfs/<CID>`` or ``dnslink=/ipns/<hash>`` (paper §2).
    """
    if kind not in ("ipfs", "ipns"):
        raise ValueError("DNSLink kind must be 'ipfs' or 'ipns'")
    return ResourceRecord(
        name=f"{DNSLINK_PREFIX}.{name}", rrtype=RRType.TXT, value=f"dnslink=/{kind}/{target}"
    )


def parse_dnslink_txt(value: str) -> Optional[tuple]:
    """Parse a TXT value; returns ``(kind, target)`` or ``None`` when the
    record is not a properly formatted DNSLink entry."""
    if not value.startswith("dnslink="):
        return None
    path = value[len("dnslink=") :]
    parts = path.split("/")
    if len(parts) != 3 or parts[0] != "" or parts[1] not in ("ipfs", "ipns") or not parts[2]:
        return None
    return parts[1], parts[2]


class Zone:
    """All records under one registered domain."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self._records: Dict[tuple, List[ResourceRecord]] = {}
        # Every registered domain answers SOA (that is how the scanner
        # distinguishes registered names from NXDOMAIN).
        self.add(ResourceRecord(domain, RRType.SOA, f"ns1.{domain}. hostmaster.{domain}."))

    def add(self, record: ResourceRecord) -> None:
        if not (record.name == self.domain or record.name.endswith("." + self.domain)):
            raise ValueError(f"record {record.name} does not belong to zone {self.domain}")
        self._records.setdefault((record.name, record.rrtype), []).append(record)

    def lookup(self, name: str, rrtype: RRType) -> List[ResourceRecord]:
        return list(self._records.get((name, rrtype), []))

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._records})


class ZoneRegistry:
    """The registry of every zone in the synthetic namespace."""

    def __init__(self) -> None:
        self._zones: Dict[str, Zone] = {}

    def __len__(self) -> int:
        return len(self._zones)

    def create_zone(self, domain: str) -> Zone:
        if domain in self._zones:
            return self._zones[domain]
        zone = Zone(domain)
        self._zones[domain] = zone
        return zone

    def zone_for(self, name: str) -> Optional[Zone]:
        """The zone owning ``name`` (longest registered suffix match)."""
        labels = name.split(".")
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            if candidate in self._zones:
                return self._zones[candidate]
        return None

    def lookup(self, name: str, rrtype: RRType) -> List[ResourceRecord]:
        zone = self.zone_for(name)
        if zone is None:
            return []
        return zone.lookup(name, rrtype)

    def domains(self) -> List[str]:
        return sorted(self._zones)
