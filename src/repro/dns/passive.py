"""A passive DNS feed (SIE-Europe stand-in).

Active A-record scans see one answer per vantage point, but gateway
operators serve geo-dependent answers; passive DNS aggregates resolutions
observed across many sensors over time (paper §3 uses one month of SIE
data to enumerate all IPs behind the public gateway domains).

The feed accumulates (name, type, value) observations with counts; the
simulation seeds it from gateway usage with a configurable European
sensor bias (the paper notes its Germany vantage inflates NL frontends).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.dns.records import RRType


@dataclass(frozen=True)
class PassiveObservation:
    name: str
    rrtype: RRType
    value: str


class PassiveDNSFeed:
    """Aggregated observations from the sensor network."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def observe(self, name: str, rrtype: RRType, value: str, count: int = 1) -> None:
        self._counts[PassiveObservation(name.lower().rstrip("."), rrtype, value)] += count

    def __len__(self) -> int:
        return len(self._counts)

    def observations(self) -> List[Tuple[PassiveObservation, int]]:
        return list(self._counts.items())

    def values_for(self, name: str, rrtype: RRType) -> Set[str]:
        """All distinct values observed for one (name, type)."""
        name = name.lower().rstrip(".")
        return {
            observation.value
            for observation, _ in self._counts.items()
            if observation.name == name and observation.rrtype == rrtype
        }

    def ips_for_domains(self, domains: Iterable[str]) -> Set[str]:
        """Every IP observed for any of ``domains`` — the paper's method
        of enumerating gateway frontend addresses."""
        wanted = {domain.lower().rstrip(".") for domain in domains}
        return {
            observation.value
            for observation, _ in self._counts.items()
            if observation.rrtype is RRType.A and observation.name in wanted
        }
