"""Recursive DNS resolution over the zone registry.

Follows CNAME and ALIAS chains to terminal values, the way the paper's
pipeline resolves a DNSLink domain down to the IP address of the gateway
or proxy serving it.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.dns.records import RRType, ResourceRecord, ZoneRegistry

MAX_CHAIN = 8


class ResolutionError(Exception):
    """A CNAME/ALIAS loop or over-long chain."""


class Resolver:
    """A caching-free recursive resolver (Cloudflare-Public-DNS stand-in)."""

    def __init__(self, registry: ZoneRegistry) -> None:
        self.registry = registry

    def query(self, name: str, rrtype: RRType) -> List[ResourceRecord]:
        """Direct lookup without chain following."""
        return self.registry.lookup(name, rrtype)

    def resolve_a(self, name: str) -> List[str]:
        """All IPv4 addresses ``name`` ultimately resolves to.

        Follows CNAME and ALIAS indirection; raises
        :class:`ResolutionError` on loops.
        """
        current = name
        seen: Set[str] = set()
        for _ in range(MAX_CHAIN):
            if current in seen:
                raise ResolutionError(f"CNAME/ALIAS loop at {current}")
            seen.add(current)
            a_records = self.registry.lookup(current, RRType.A)
            if a_records:
                return [record.value for record in a_records]
            pointers = self.registry.lookup(current, RRType.CNAME) + self.registry.lookup(
                current, RRType.ALIAS
            )
            if not pointers:
                return []
            current = pointers[0].value.rstrip(".")
        raise ResolutionError(f"chain too long starting at {name}")

    def soa_exists(self, domain: str) -> bool:
        """Registered-domain check (non-NXDOMAIN SOA), as in the paper's
        zdns pre-filter."""
        return bool(self.registry.lookup(domain, RRType.SOA))

    def txt(self, name: str) -> List[str]:
        return [record.value for record in self.registry.lookup(name, RRType.TXT)]
