"""Runtime injection of adversarial actors into a running campaign.

The orchestrator owns one runtime per configured attack.  Each runtime
gets its own RNG derived from the campaign seed
(``derive_rng(seed, "attack", name, position)``), so

* attack-off campaigns draw zero extra randomness and stay bit-identical
  to the goldens (attacker specs carry ``activity_weight=0``, so the
  honest traffic engine's Poisson draws for them are skipped without a
  single RNG call), and
* attack-on campaigns are reproducible and workers=1 ≡ workers=N — every
  attack step runs in the main process alongside the tick loop, exactly
  like the honest traffic engine.

Attacker nodes are real :class:`~repro.world.population.NodeSpec` s on
freshly allocated cloud IP blocks: they join the overlay, the oracle and
the monitors' field of view through the same mechanics as honest nodes,
so crawls, in-degree analyses and the detection features all see them
with no special-casing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.attack.config import (
    AttackConfig,
    BitswapFloodConfig,
    ChurnBombConfig,
    HydraAmplificationConfig,
    ProviderSpamConfig,
    SybilEclipseConfig,
)
from repro.attack.ground_truth import GroundTruthLog
from repro.workload.engine import TrafficEngine, _poisson
from repro.exec.seeds import derive_rng
from repro.ids.cid import CID
from repro.ids.keys import KEY_BITS, common_prefix_len
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageType
from repro.kademlia.providers import ProviderRecord
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.netsim.clock import SECONDS_PER_HOUR
from repro.netsim.network import Overlay
from repro.netsim.node import Node
from repro.obs import metrics as obs
from repro.world.ipspace import format_ip
from repro.world.population import NodeClass, NodeSpec
from repro.world.profiles import BehaviorProfile

#: Attackers run dedicated, never-rotating VPS instances; their sessions
#: are driven entirely by the attack windows, not by churn sampling.
ATTACKER_BEHAVIOR = BehaviorProfile(
    mean_session_hours=24.0 * 365.0,
    mean_gap_hours=0.01,
    ip_rotation_prob=0.0,
    peerid_regen_prob=0.0,
    extra_addr_probs=(1.0, 0.0, 0.0),
    daily_ip_rotation_prob=0.0,
)

ATTACKER_ORGANISATION = "attack-vps"
ATTACKER_COUNTRY = "NL"


def mint_peer_near(target_key: int, prefix_bits: int, rng: random.Random) -> PeerID:
    """Grind peer IDs until one lands within ``prefix_bits`` of the target.

    Expected cost is ``2**prefix_bits`` tries — the same brute force a
    real Sybil attacker pays, just over sha256 of random seeds here.
    """
    while True:
        peer = PeerID.generate(rng)
        if common_prefix_len(peer.dht_key, target_key) >= prefix_bits:
            return peer


class _AttackRuntime:
    """Lifecycle shared by all attacks: install → activate → step → stop."""

    def __init__(self, orch: "AttackOrchestrator", config: AttackConfig, rng: random.Random):
        self.orch = orch
        self.config = config
        self.rng = rng
        self.nodes: List[Node] = []
        self.active = False

    # -- hooks ---------------------------------------------------------

    def install(self) -> None:
        """Build-time setup: mint nodes and identities, tag ground truth."""

    def activate(self, now: float) -> None:
        for node in self.nodes:
            self.orch.overlay.bring_online(node)

    def step(self, now: float, hours: float) -> None:
        """One traffic tick while the attack window is open."""

    def deactivate(self, now: float) -> None:
        for node in self.nodes:
            self.orch.overlay.take_offline(node)

    def summary(self) -> Dict[str, float]:
        return {}

    # -- driver --------------------------------------------------------

    def advance(self, now: float, hours: float) -> None:
        config = self.config
        if self.active and now >= config.end_time:
            self.deactivate(now)
            self.active = False
        if not self.active and config.start_time <= now < config.end_time:
            self.activate(now)
            self.active = True
        if self.active:
            self.step(now, hours)


class SybilEclipseRuntime(_AttackRuntime):
    """Ground sybils into the victim's keyspace region, then scout it."""

    config: SybilEclipseConfig

    def install(self) -> None:
        config = self.config
        self.victim = CID.generate(self.rng)
        self.lookups = 0
        self.eclipse_share_max = 0.0
        self.nodes = self.orch.add_attacker_nodes(config.num_attackers)
        self.sybil_peers: Set[PeerID] = set()
        for node in self.nodes:
            peer = mint_peer_near(self.victim.dht_key, config.prefix_bits, self.rng)
            self.orch.overlay.adopt_identity(node, peer)
            self.sybil_peers.add(peer)
            self.orch.tag_attacker(config, peer)
        self.orch.tag_victim(config, self.victim)

    def step(self, now: float, hours: float) -> None:
        config = self.config
        shift = KEY_BITS - config.prefix_bits
        prefix_base = (self.victim.dht_key >> shift) << shift
        contacts = self.orch.engine.config.other_walk_contacts
        for node in self.nodes:
            for _ in range(_poisson(config.lookups_per_hour * hours, self.rng)):
                target_key = prefix_base | self.rng.getrandbits(shift)
                self.orch.log_walk(
                    node, MessageType.FIND_NODE, contacts, self.rng, target_key=target_key
                )
                self.lookups += 1
        resolvers = self.orch.overlay.resolvers_for(self.victim)
        if resolvers:
            share = sum(1 for peer in resolvers if peer in self.sybil_peers) / len(resolvers)
            self.eclipse_share_max = max(self.eclipse_share_max, share)
        obs.set_gauge("attack.sybil_eclipse.eclipse_share_max", self.eclipse_share_max)

    def summary(self) -> Dict[str, float]:
        return {
            "lookups": float(self.lookups),
            "eclipse_share_max": self.eclipse_share_max,
        }


class ProviderSpamRuntime(_AttackRuntime):
    """Poison the hottest CIDs' provider sets with bogus records."""

    config: ProviderSpamConfig

    def install(self) -> None:
        self.nodes = self.orch.add_attacker_nodes(self.config.num_attackers)
        self.fake_providers: Set[PeerID] = set()
        self.targets: List[CID] = []
        self.publishes = 0
        self.pollution_share_max = 0.0
        for node in self.nodes:
            peer = PeerID.generate(self.rng)
            self.orch.overlay.adopt_identity(node, peer)
            self.orch.tag_attacker(self.config, peer)

    def activate(self, now: float) -> None:
        super().activate(now)
        # Target the most popular alive content — where poisoning hurts.
        day = int(now // (24 * SECONDS_PER_HOUR))
        alive = self.orch.catalog.alive_items(day)
        alive.sort(key=lambda item: (-item.weight, item.cid.digest))
        self.targets = [item.cid for item in alive[: self.config.target_cids]]
        for cid in self.targets:
            self.orch.tag_victim(self.config, cid)

    def step(self, now: float, hours: float) -> None:
        config = self.config
        overlay = self.orch.overlay
        contacts = self.orch.engine.config.advert_walk_contacts
        if not self.targets:
            return
        for node in self.nodes:
            addrs = tuple(node.multiaddrs())
            for _ in range(_poisson(config.publishes_per_hour * hours, self.rng)):
                fake = PeerID.generate(self.rng)
                self.fake_providers.add(fake)
                cid = self.rng.choice(self.targets)
                overlay.providers.add(
                    ProviderRecord(cid=cid, provider=fake, addrs=addrs, published_at=now)
                )
                self.orch.log_walk(node, MessageType.ADD_PROVIDER, contacts, self.rng, cid=cid)
                self.publishes += 1
        polluted = total = 0
        for cid in self.targets:
            for record in overlay.providers.get(cid, now):
                total += 1
                if record.provider in self.fake_providers:
                    polluted += 1
        if total:
            self.pollution_share_max = max(self.pollution_share_max, polluted / total)
        obs.set_gauge("attack.provider_spam.pollution_share_max", self.pollution_share_max)

    def summary(self) -> Dict[str, float]:
        return {
            "publishes": float(self.publishes),
            "fake_providers": float(len(self.fake_providers)),
            "pollution_share_max": self.pollution_share_max,
        }


class BitswapFloodRuntime(_AttackRuntime):
    """Blast junk want-have broadcasts at the passive Bitswap monitor."""

    config: BitswapFloodConfig

    def install(self) -> None:
        self.nodes = self.orch.add_attacker_nodes(self.config.num_attackers)
        self.broadcasts = 0
        for node in self.nodes:
            peer = PeerID.generate(self.rng)
            self.orch.overlay.adopt_identity(node, peer)
            self.orch.tag_attacker(self.config, peer)

    def step(self, now: float, hours: float) -> None:
        monitor = self.orch.monitor
        for node in self.nodes:
            for _ in range(_poisson(self.config.broadcasts_per_hour * hours, self.rng)):
                monitor.observe_broadcast(now, node, CID.generate(self.rng))
                self.broadcasts += 1
        obs.set_gauge("attack.bitswap_flood.broadcasts", self.broadcasts)

    def summary(self) -> Dict[str, float]:
        return {"broadcasts": float(self.broadcasts)}


class HydraAmplificationRuntime(_AttackRuntime):
    """Cheap cache-missing requests weaponize the fleet's lookups (§5)."""

    config: HydraAmplificationConfig

    def install(self) -> None:
        self.nodes = self.orch.add_attacker_nodes(self.config.num_attackers)
        self.requests = 0
        self.induced_walks = 0
        self._induced_tagged: Set[PeerID] = set()
        for node in self.nodes:
            peer = PeerID.generate(self.rng)
            self.orch.overlay.adopt_identity(node, peer)
            self.orch.tag_attacker(self.config, peer)

    def step(self, now: float, hours: float) -> None:
        engine = self.orch.engine
        contacts = engine.config.download_walk_contacts
        for node in self.nodes:
            for _ in range(_poisson(self.config.requests_per_hour * hours, self.rng)):
                # A fresh CID guarantees a fleet cache miss: maximum
                # amplification for one request's worth of effort.
                cid = CID.generate(self.rng)
                self.orch.log_walk(node, MessageType.GET_PROVIDERS, contacts, self.rng, cid=cid)
                self.requests += 1
                for fleet_node in engine.induced_amplification(cid, self.rng):
                    self.orch.log_walk(
                        fleet_node, MessageType.GET_PROVIDERS, contacts, self.rng, cid=cid
                    )
                    self.induced_walks += 1
                    peer = fleet_node.peer
                    if peer is not None and peer not in self._induced_tagged:
                        self._induced_tagged.add(peer)
                        self.orch.tag_induced(self.config, peer)
        obs.set_gauge("attack.hydra_amplification.induced_walks", self.induced_walks)

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(self.requests),
            "induced_walks": float(self.induced_walks),
            "amplification": self.induced_walks / self.requests if self.requests else 0.0,
        }


class ChurnBombRuntime(_AttackRuntime):
    """Scheduler-driven join/leave waves under ever-fresh identities."""

    config: ChurnBombConfig

    def install(self) -> None:
        self.nodes = self.orch.add_attacker_nodes(self.config.num_attackers)
        self.joins = 0

    def activate(self, now: float) -> None:
        # Sessions come from the scheduled waves, not from a base join.
        pass

    def step(self, now: float, hours: float) -> None:
        # Lay this tick's waves onto the event scheduler; the campaign's
        # run_until interleaves them with honest churn sub-tick.
        scheduler = self.orch.overlay.scheduler
        cycles = max(1, self.config.cycles_per_tick)
        wave = hours * SECONDS_PER_HOUR / (2 * cycles)
        for cycle in range(cycles):
            scheduler.schedule_in((2 * cycle + 0.5) * wave, self._join_wave)
            scheduler.schedule_in((2 * cycle + 1.5) * wave, self._leave_wave)

    def _join_wave(self) -> None:
        if not self.active:
            return
        overlay = self.orch.overlay
        contacts = self.orch.engine.config.other_walk_contacts
        for node in self.nodes:
            if node.online:
                continue
            peer = PeerID.generate(self.rng)
            overlay.adopt_identity(node, peer)
            self.orch.tag_attacker(self.config, peer, timestamp=overlay.now)
            overlay.bring_online(node)
            self.orch.log_walk(node, MessageType.FIND_NODE, contacts, self.rng)
            self.joins += 1
        obs.set_gauge("attack.churn_bomb.joins", self.joins)

    def _leave_wave(self) -> None:
        for node in self.nodes:
            self.orch.overlay.take_offline(node)

    def summary(self) -> Dict[str, float]:
        return {"joins": float(self.joins)}


_RUNTIME_TYPES = {
    SybilEclipseConfig: SybilEclipseRuntime,
    ProviderSpamConfig: ProviderSpamRuntime,
    BitswapFloodConfig: BitswapFloodRuntime,
    HydraAmplificationConfig: HydraAmplificationRuntime,
    ChurnBombConfig: ChurnBombRuntime,
}


class AttackOrchestrator:
    """Owns the attack runtimes and the ground-truth log of a campaign."""

    def __init__(
        self,
        overlay: Overlay,
        engine: TrafficEngine,
        hydra: HydraBooster,
        monitor: BitswapMonitor,
        catalog,
        attacks: Sequence[AttackConfig],
        seed: int,
        store=None,
    ) -> None:
        self.overlay = overlay
        self.engine = engine
        self.hydra = hydra
        self.monitor = monitor
        self.catalog = catalog
        self.ground_truth = GroundTruthLog(store)
        self.runtimes: List[_AttackRuntime] = []
        for position, config in enumerate(attacks):
            runtime_cls = _RUNTIME_TYPES.get(type(config))
            if runtime_cls is None:
                raise ValueError(f"no runtime for attack config {type(config).__name__}")
            rng = derive_rng(seed, "attack", config.name, position)
            self.runtimes.append(runtime_cls(self, config, rng))

    # -- shared helpers for the runtimes --------------------------------

    def add_attacker_nodes(self, count: int) -> List[Node]:
        """Mint ``count`` attacker specs on a fresh cloud block and
        register them with the world and the overlay (offline)."""
        world = self.overlay.world
        block = world.allocator.allocate_block(
            ATTACKER_ORGANISATION, ATTACKER_COUNTRY, is_cloud=True
        )
        nodes = []
        next_index = max(spec.index for spec in world.specs) + 1
        for offset in range(count):
            spec = NodeSpec(
                index=next_index + offset,
                node_class=NodeClass.CLOUD_STABLE,
                organisation=ATTACKER_ORGANISATION,
                country=ATTACKER_COUNTRY,
                blocks=(block,),
                behavior=ATTACKER_BEHAVIOR,
                # Zero weight: the honest traffic engine never draws RNG
                # for these nodes, so honest streams stay undisturbed.
                activity_weight=0.0,
            )
            world.specs.append(spec)
            nodes.append(self.overlay.add_node(spec))
        return nodes

    def log_walk(
        self,
        node: Node,
        message_type: MessageType,
        contacts: int,
        rng: random.Random,
        cid: Optional[CID] = None,
        target_key: Optional[int] = None,
    ) -> None:
        """Capture-sample an attack walk into the Hydra log.

        Mirrors the honest engine's ``_log_dht`` geometry (the monitor
        sees ``heads/servers`` of every walk's messages) but draws from
        the attack RNG.
        """
        captured = self.hydra.capture_count(
            contacts, max(len(self.overlay.oracle), 1), rng
        )
        if captured <= 0 or node.peer is None or not node.ips:
            return
        now = self.overlay.now
        for _ in range(captured):
            sender_ip = format_ip(rng.choice(node.ips))
            self.hydra.record(
                timestamp=now,
                sender=node.peer,
                sender_ip=sender_ip,
                message_type=message_type,
                target_cid=cid,
                target_key=target_key,
            )
        obs.inc("attack.walks_logged", captured)

    def tag_attacker(
        self, config: AttackConfig, peer: PeerID, timestamp: Optional[float] = None
    ) -> None:
        self.ground_truth.record(
            timestamp if timestamp is not None else config.start_time,
            config.name,
            "attacker",
            peer=peer,
        )

    def tag_induced(self, config: AttackConfig, peer: PeerID) -> None:
        self.ground_truth.record(self.overlay.now, config.name, "induced", peer=peer)

    def tag_victim(self, config: AttackConfig, cid: CID) -> None:
        self.ground_truth.record(config.start_time, config.name, "victim", cid=cid)

    # -- campaign lifecycle ---------------------------------------------

    def install(self) -> None:
        """Build-time hook: mint attacker nodes, identities, windows."""
        for runtime in self.runtimes:
            config = runtime.config
            self.ground_truth.record(
                config.start_time, config.name, "window", end=config.end_time
            )
            runtime.install()

    def on_tick(self, hours: float) -> None:
        """Per-tick hook, called right after the honest traffic tick."""
        now = self.overlay.now
        for runtime in self.runtimes:
            runtime.advance(now, hours)

    def finish(self) -> None:
        """End-of-campaign hook: close open windows, flush ground truth."""
        now = self.overlay.now
        for runtime in self.runtimes:
            if runtime.active:
                runtime.deactivate(now)
                runtime.active = False
        self.ground_truth.flush()

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {runtime.config.name: runtime.summary() for runtime in self.runtimes}
