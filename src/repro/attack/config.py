"""Attack configuration dataclasses and the ``name:key=value`` spec parser.

Every attack is a frozen dataclass so campaign configs stay hashable and
picklable; the registry maps the CLI-facing attack name to its class.
All knobs are plain ints/floats so ``parse_attack_spec`` can coerce
``repro campaign --attack sybil-eclipse:prefix_bits=14`` without a
per-attack parser.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Dict, Type

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class AttackConfig:
    """Common shape of an adversarial scenario.

    The attack is active during the half-open sim-time window
    ``[start_day, start_day + duration_days)`` days.  ``num_attackers``
    is the number of adversary-controlled nodes injected into the world;
    they ride the normal node lifecycle (specs, IP blocks, overlay
    membership) but carry ``activity_weight=0`` so they generate no
    honest traffic and perturb no honest RNG draws.
    """

    name: ClassVar[str] = "abstract"

    start_day: int = 1
    duration_days: int = 1
    num_attackers: int = 8

    @property
    def start_time(self) -> float:
        return self.start_day * SECONDS_PER_DAY

    @property
    def end_time(self) -> float:
        return (self.start_day + self.duration_days) * SECONDS_PER_DAY


@dataclass(frozen=True)
class SybilEclipseConfig(AttackConfig):
    """Eclipse a victim CID's keyspace region with minted sybils.

    Attacker peer IDs are ground until they share ``prefix_bits`` leading
    bits with the victim CID's DHT key, so the sybils crowd the honest
    peers out of ``select_closest`` for that key.  While active, each
    sybil also issues FIND_NODE lookups targeted inside the victim
    prefix (reconnaissance / routing-table poisoning traffic), which is
    the footprint the detector keys on.
    """

    name: ClassVar[str] = "sybil-eclipse"

    num_attackers: int = 20
    prefix_bits: int = 12
    lookups_per_hour: float = 8.0


@dataclass(frozen=True)
class ProviderSpamConfig(AttackConfig):
    """Poison provider records for the most popular CIDs.

    Each publish inserts a record with a freshly minted bogus provider
    peer ID, stressing ``max_providers_per_cid`` eviction until honest
    records for the target CIDs are pushed out.
    """

    name: ClassVar[str] = "provider-spam"

    num_attackers: int = 6
    target_cids: int = 12
    publishes_per_hour: float = 60.0


@dataclass(frozen=True)
class BitswapFloodConfig(AttackConfig):
    """Hammer the Bitswap monitor with junk want-have broadcasts."""

    name: ClassVar[str] = "bitswap-flood"

    num_attackers: int = 8
    broadcasts_per_hour: float = 600.0


@dataclass(frozen=True)
class HydraAmplificationConfig(AttackConfig):
    """Weaponize the hydra fleet's proactive lookups (paper §5).

    Every attacker request targets a fresh CID, guaranteeing a fleet
    cache miss, so each cheap GET_PROVIDERS triggers the fleet's
    amplified DHT walks — the DoS amplification vector the paper flags.
    """

    name: ClassVar[str] = "hydra-amplification"

    num_attackers: int = 4
    requests_per_hour: float = 30.0


@dataclass(frozen=True)
class ChurnBombConfig(AttackConfig):
    """Coordinated mass join/leave waves through the event scheduler.

    Each cycle every attacker joins under a freshly minted identity,
    announces itself with a join lookup, then drops offline — churning
    the routing tables and flooding crawls with one-shot peer IDs.
    """

    name: ClassVar[str] = "churn-bomb"

    num_attackers: int = 50
    cycles_per_tick: int = 3


ATTACK_TYPES: Dict[str, Type[AttackConfig]] = {
    cls.name: cls
    for cls in (
        SybilEclipseConfig,
        ProviderSpamConfig,
        BitswapFloodConfig,
        HydraAmplificationConfig,
        ChurnBombConfig,
    )
}


def _coerce(field: dataclasses.Field, raw: str):
    if field.type in ("int", int):
        return int(raw)
    if field.type in ("float", float):
        return float(raw)
    raise ValueError(f"field {field.name!r} has unsupported type {field.type!r}")


def parse_attack_spec(spec: str) -> AttackConfig:
    """Parse ``"name"`` or ``"name:key=value,key=value"`` into a config.

    >>> parse_attack_spec("sybil-eclipse:prefix_bits=14,num_attackers=30")
    SybilEclipseConfig(start_day=1, duration_days=1, num_attackers=30, prefix_bits=14, lookups_per_hour=8.0)
    """
    name, _, knobs = spec.partition(":")
    name = name.strip()
    if name not in ATTACK_TYPES:
        known = ", ".join(sorted(ATTACK_TYPES))
        raise ValueError(f"unknown attack {name!r} (known: {known})")
    cls = ATTACK_TYPES[name]
    fields = {field.name: field for field in dataclasses.fields(cls)}
    overrides = {}
    for pair in filter(None, (part.strip() for part in knobs.split(","))):
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"malformed attack knob {pair!r} (expected key=value)")
        if key not in fields:
            known = ", ".join(sorted(fields))
            raise ValueError(f"unknown knob {key!r} for {name} (known: {known})")
        try:
            overrides[key] = _coerce(fields[key], raw.strip())
        except ValueError as exc:
            raise ValueError(f"bad value for {name}:{key}: {exc}") from exc
    return cls(**overrides)
