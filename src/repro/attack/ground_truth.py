"""Ground-truth labels for injected attack activity.

The simulator's unique advantage over a real-world deployment is that it
*knows* which peer is an adversary and exactly when each attack was
live.  The orchestrator tags every injected actor and window into this
log, persisted like any other campaign log through :mod:`repro.store`,
and the :mod:`repro.detect` scorer joins detector alerts against it to
compute exact precision/recall.

Entry kinds:

``window``
    One per attack: the sim-time activity window (``timestamp`` =
    start, ``end`` = end).
``attacker``
    A peer ID controlled by the adversary, stamped when its identity is
    minted (churn-bomb identities get one entry per minted identity).
``induced``
    An honest peer whose traffic the attack weaponized (the hydra fleet
    nodes launching amplified walks).  Alerts on induced peers count as
    true positives, but induced peers are excluded from the recall
    denominator — the adversary's own identities are the detection
    target.
``victim``
    A CID the attack targets (eclipse victim, spammed CIDs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.store import ATTACK_CODEC, EventLog, StorageBackend
from repro.store.backend import MemoryBackend

ENTRY_KINDS = ("window", "attacker", "induced", "victim")


@dataclass(frozen=True)
class GroundTruthEntry:
    """One labelled fact about injected adversarial activity."""

    timestamp: float
    attack: str
    event: str  # one of ENTRY_KINDS
    peer: Optional[PeerID] = None
    cid: Optional[CID] = None
    end: Optional[float] = None


class GroundTruthLog:
    """Append/query facade over the persisted ground-truth entries."""

    def __init__(self, store: Optional[StorageBackend] = None):
        self.log = EventLog(ATTACK_CODEC, store if store is not None else MemoryBackend())

    def __len__(self) -> int:
        return len(self.log)

    def __iter__(self):
        return iter(self.log)

    def record(
        self,
        timestamp: float,
        attack: str,
        event: str,
        peer: Optional[PeerID] = None,
        cid: Optional[CID] = None,
        end: Optional[float] = None,
    ) -> None:
        if event not in ENTRY_KINDS:
            raise ValueError(f"unknown ground-truth event kind {event!r}")
        self.log.append(
            GroundTruthEntry(
                timestamp=timestamp, attack=attack, event=event, peer=peer, cid=cid, end=end
            )
        )

    # -- queries -------------------------------------------------------

    def windows(self) -> Dict[str, Tuple[float, float]]:
        """Attack name → (start, end) sim-time activity window."""
        out: Dict[str, Tuple[float, float]] = {}
        for entry in self.log:
            if entry.event == "window":
                out[entry.attack] = (entry.timestamp, entry.end)
        return out

    def attacker_peers(
        self, attack: Optional[str] = None, include_induced: bool = True
    ) -> Set[PeerID]:
        """Adversary-linked peer IDs, optionally for one attack only."""
        kinds = ("attacker", "induced") if include_induced else ("attacker",)
        return {
            entry.peer
            for entry in self.log
            if entry.event in kinds
            and entry.peer is not None
            and (attack is None or entry.attack == attack)
        }

    def victim_cids(self, attack: Optional[str] = None) -> Set[CID]:
        return {
            entry.cid
            for entry in self.log
            if entry.event == "victim"
            and entry.cid is not None
            and (attack is None or entry.attack == attack)
        }

    def attacks(self) -> Tuple[str, ...]:
        return tuple(sorted(self.windows()))

    def flush(self) -> None:
        self.log.flush()


def load_ground_truth(store: StorageBackend) -> GroundTruthLog:
    """Re-open a persisted ground-truth log for scoring."""
    return GroundTruthLog(store)


def entries(log: GroundTruthLog) -> Iterable[GroundTruthEntry]:
    return iter(log)
