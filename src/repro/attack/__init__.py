"""Adversarial scenarios over the simulated IPFS network.

The simulator reproduces *honest* IPFS; this package injects adversaries
into the same world/netsim/workload pipeline so the attacks the source
paper warns about become runnable scenarios:

* ``sybil-eclipse`` — mint attacker peer IDs concentrated near a victim
  CID's keyspace prefix until they dominate the ``select_closest``
  resolver set (a classic DHT eclipse).
* ``provider-spam`` — publish bogus provider records for the most popular
  CIDs at high rate, stressing the per-CID record cap until honest
  records are evicted.
* ``bitswap-flood`` — attacker nodes hammer the Bitswap monitor's
  ``observe_broadcast`` with junk want-haves.
* ``hydra-amplification`` — drive cache-missing CID requests to weaponize
  the Protocol Labs hydra fleet's proactive lookups (the paper's §5
  DoS-amplification vector).
* ``churn-bomb`` — coordinated mass join/leave through the scheduler
  under ever-fresh identities.

Each attack is an off-by-default config dataclass hung off
:class:`~repro.scenario.config.ScenarioConfig`; with no attacks
configured the campaign consumes zero extra randomness and stays
bit-identical to the goldens.  Every injected event is tagged into a
ground-truth log (attacker peer IDs, induced accomplices, victim CIDs and
sim-time windows) persisted through :mod:`repro.store`, which is what
lets :mod:`repro.detect` score detector alerts *exactly*.
"""

from repro.attack.config import (
    ATTACK_TYPES,
    AttackConfig,
    BitswapFloodConfig,
    ChurnBombConfig,
    HydraAmplificationConfig,
    ProviderSpamConfig,
    SybilEclipseConfig,
    parse_attack_spec,
)
from repro.attack.ground_truth import GroundTruthEntry, GroundTruthLog
from repro.attack.orchestrator import AttackOrchestrator, mint_peer_near

__all__ = [
    "ATTACK_TYPES",
    "AttackConfig",
    "AttackOrchestrator",
    "BitswapFloodConfig",
    "ChurnBombConfig",
    "GroundTruthEntry",
    "GroundTruthLog",
    "HydraAmplificationConfig",
    "ProviderSpamConfig",
    "SybilEclipseConfig",
    "mint_peer_near",
    "parse_attack_spec",
]
