"""Terminal visualization helpers.

Render the reproduction's figures as plain-text charts so the examples
and reports work in any environment (no plotting dependencies).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

_FULL = "█"
_PARTIALS = " ▏▎▍▌▋▊▉"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    tail = _PARTIALS[remainder] if remainder and full < width else ""
    return _FULL * full + tail


def bar_chart(
    data: Dict[str, float],
    title: str = "",
    width: int = 40,
    limit: int = 12,
    percent: bool = True,
) -> str:
    """A horizontal bar chart of labelled values, largest first."""
    lines: List[str] = []
    if title:
        lines.append(title)
    items = sorted(data.items(), key=lambda kv: -kv[1])[:limit]
    if not items:
        return title or "(no data)"
    label_width = max(len(str(label)) for label, _ in items)
    maximum = max(value for _, value in items)
    for label, value in items:
        rendered = f"{value:7.1%}" if percent else f"{value:10.2f}"
        lines.append(
            f"  {str(label).ljust(label_width)} {rendered} {_bar(value, maximum, width)}"
        )
    return "\n".join(lines)


def line_chart(
    points: Sequence[Tuple[float, float]],
    title: str = "",
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A scatter/line chart of (x, y) points on a character grid."""
    if not points:
        return title or "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = min(width - 1, int((x - x_low) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_low) / y_span * (height - 1)))
        grid[height - 1 - row][column] = "•"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"  {y_high:10.3f} ┐")
    for row in grid:
        lines.append(" " * 13 + "│" + "".join(row))
    lines.append(f"  {y_low:10.3f} └" + "─" * width)
    lines.append(" " * 14 + f"{x_low:<10.3f}{x_label:^{max(width - 20, 4)}}{x_high:>10.3f}")
    if y_label:
        lines.insert(1 if title else 0, f"  [{y_label}]")
    return "\n".join(lines)


def cdf_chart(values: Iterable[float], title: str = "", width: int = 60, height: int = 10) -> str:
    """Empirical CDF of a sample, rendered as a line chart."""
    ordered = sorted(values)
    if not ordered:
        return title or "(no data)"
    total = len(ordered)
    points = [(value, (index + 1) / total) for index, value in enumerate(ordered)]
    return line_chart(points, title=title, width=width, height=height, y_label="P[X<=x]")


def comparison_table(rows: Sequence[Tuple[str, float, float]], title: str = "") -> str:
    """A measured-vs-paper table (shared look with the benchmarks)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        return title or "(no data)"
    width = max(len(name) for name, _, _ in rows)
    lines.append(f"  {'metric'.ljust(width)}  measured    paper")
    for name, measured, paper in rows:
        lines.append(f"  {name.ljust(width)}  {measured:8.3f} {paper:8.3f}")
    return "\n".join(lines)
