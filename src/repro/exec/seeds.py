"""Deterministic per-task seed derivation.

Parallel execution must never share RNG *state* between tasks: the
moment two workers pull from one stream, results depend on scheduling.
Instead every task derives its own seed from the root seed and a stable
task coordinate (a crawl index, a sweep position, ...) through SHA-256,
so ``workers=1`` and ``workers=N`` draw exactly the same randomness.

The derivation is intentionally hash-based rather than ``root + index``:
neighbouring arithmetic seeds feed Mersenne-Twister visibly correlated
initial states, and they collide across namespaces (crawl 3 of seed 10
vs crawl 0 of seed 13).  SHA-256 over the full coordinate tuple gives
independent, collision-free streams and is stable across Python
versions, processes and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Component = Union[int, str, bytes]


def derive_seed(root_seed: int, *components: Component) -> int:
    """A stable 64-bit seed for the task addressed by ``components``.

    :param root_seed: the experiment's root seed (e.g. ``ScenarioConfig.seed``).
    :param components: the task coordinate — ints, strings or bytes.
    """
    hasher = hashlib.sha256()
    hasher.update(int(root_seed).to_bytes(16, "big", signed=True))
    for component in components:
        if isinstance(component, bytes):
            material = b"b" + component
        elif isinstance(component, str):
            material = b"s" + component.encode("utf-8")
        elif isinstance(component, int):
            material = b"i" + component.to_bytes(16, "big", signed=True)
        else:
            raise TypeError(
                f"seed components must be int, str or bytes, got {type(component).__name__}"
            )
        hasher.update(len(material).to_bytes(4, "big"))
        hasher.update(material)
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(root_seed: int, *components: Component) -> random.Random:
    """A fresh :class:`random.Random` seeded for one task."""
    return random.Random(derive_seed(root_seed, *components))
