"""Multi-config campaign sweeps over the execution engine.

A sweep runs one full measurement campaign per :class:`ScenarioConfig`
— different seeds, network sizes, horizons, counting ablations — with
each campaign in its own worker process.  Campaign results hold the
whole simulated world (unpicklable schedulers included), so workers
summarise in-process and only plain dicts travel back: the headline
crawl statistics, the A-N / G-IP cloud shares and the traffic summary,
or the entire figure-by-figure :func:`~repro.scenario.report.full_report`
when ``full_reports=True`` (which is how figure/analysis generation is
parallelised too — each worker computes its campaign's analyses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.counting import CountingMethod
from repro.exec.engine import ExecError, run_tasks
from repro.scenario.config import ScenarioConfig


def summarize_campaign(result) -> Dict[str, object]:
    """The compact cross-config summary a sweep reports per campaign.

    Everything here is a share or a count — the quantities the paper's
    §4/§5 comparisons are built from — and JSON-serialisable.
    """
    from repro.core import cloud as cloud_analysis
    from repro.core import traffic
    from repro.scenario.report import crawl_stats_report

    rows = result.crawl_rows
    cloud_db = result.world.cloud_db
    an = cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.A_N)
    gip = cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.G_IP)
    summary: Dict[str, object] = {
        "servers": result.config.profile.online_servers,
        "days": result.config.days,
        "seed": result.config.seed,
        "crawl_stats": crawl_stats_report(result),
        "an_cloud_share": an.get("cloud", 0.0),
        "gip_cloud_share": gip.get("cloud", 0.0),
        "an_shares": an,
        "gip_shares": gip,
        "dht_messages": len(result.hydra.log),
        "traffic_class_shares": traffic.traffic_class_shares(result.hydra.log),
        "exec_errors": [str(error) for error in result.exec_errors],
    }
    return summary


@dataclass
class SweepOutcome:
    """One sweep: per-config summaries aligned with the input configs."""

    configs: List[ScenarioConfig]
    #: summary dict per config; ``None`` where the campaign failed.
    summaries: List[Optional[Dict[str, object]]]
    errors: List[ExecError] = field(default_factory=list)

    @property
    def num_failed(self) -> int:
        return sum(1 for summary in self.summaries if summary is None)


def _run_sweep_task(payload) -> Dict[str, object]:
    """Worker entry point: run one campaign and summarise in-process."""
    from repro.scenario.run import run_campaign

    config, full = payload
    result = run_campaign(config)
    summary = summarize_campaign(result)
    if full:
        from repro.scenario.report import full_report

        summary["full_report"] = full_report(result, resilience_reps=3)
    return summary


def run_sweep(
    configs: Sequence[ScenarioConfig],
    *,
    workers: int = 1,
    retries: int = 1,
    full_reports: bool = False,
    storage_spec: Optional[str] = None,
) -> SweepOutcome:
    """Run one campaign per config, ``workers`` of them at a time.

    Campaigns are independent by construction (each owns its seeded
    world), so sweep-level parallelism needs no extra seed plumbing.
    ``storage_spec`` (a :func:`repro.store.open_backend` spec) is rebased
    into a per-task subdirectory for every campaign so disk-backed
    sweeps never interleave their monitor logs.
    """
    from repro.store import task_storage_spec

    prepared: List[ScenarioConfig] = []
    for index, config in enumerate(configs):
        if storage_spec is not None:
            import dataclasses

            config = dataclasses.replace(
                config, storage=task_storage_spec(storage_spec, index)
            )
        prepared.append(config)
    summaries, errors = run_tasks(
        _run_sweep_task,
        [(config, full_reports) for config in prepared],
        workers=workers,
        retries=retries,
    )
    return SweepOutcome(configs=prepared, summaries=summaries, errors=errors)


def sweep_grid(
    base: ScenarioConfig,
    *,
    servers: Sequence[int] = (),
    seeds: Sequence[int] = (),
    days: Sequence[int] = (),
) -> List[ScenarioConfig]:
    """The cross product of parameter axes as concrete configs.

    Empty axes keep the base value, so ``sweep_grid(base, seeds=[1, 2])``
    is a plain seed sweep.
    """
    import dataclasses

    configs: List[ScenarioConfig] = []
    for num_servers in servers or (base.profile.online_servers,):
        for seed in seeds or (base.seed,):
            for num_days in days or (base.days,):
                config = base.scaled(num_servers)
                config = dataclasses.replace(
                    config,
                    days=num_days,
                    seed=seed,
                    profile=dataclasses.replace(config.profile, seed=seed),
                )
                configs.append(config)
    return configs
