"""Parallel execution engine (process pool + deterministic seeding).

The subsystem has three layers:

* :mod:`repro.exec.seeds` — per-task seed derivation; the contract that
  makes ``workers=1`` and ``workers=N`` bit-identical.
* :mod:`repro.exec.engine` — the process-pool engine with inline
  fallback, retries and structured :class:`ExecError` reporting.
* :mod:`repro.exec.sweep` — multi-config campaign sweeps built on the
  engine (imported explicitly; it pulls in the whole scenario stack).
"""

from repro.exec.engine import ExecError, ParallelExecutor, run_tasks
from repro.exec.seeds import derive_rng, derive_seed

__all__ = [
    "ExecError",
    "ParallelExecutor",
    "derive_rng",
    "derive_seed",
    "run_tasks",
]
