"""The process-pool execution engine.

``ParallelExecutor`` fans picklable, *pure* tasks out over a pool of
worker processes and collects results keyed by task ID.  With
``workers=1`` every task runs inline in the calling process — the exact
same function with the exact same arguments — so serial and parallel
execution are bit-identical as long as tasks derive their randomness
from :func:`repro.exec.seeds.derive_seed` rather than shared RNG state.

Failure handling is structured, not hung: a task that raises is retried
(``retries`` times) and then surfaced as an :class:`ExecError`; a worker
process that dies outright (OOM-kill, segfault, ``os._exit``) breaks the
pool, which the engine rebuilds before retrying the tasks that were in
flight.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs
from repro.obs import stream as obs_stream
from repro.obs import trace
from repro.obs.metrics import TIME_BUCKETS

# Task lifecycle is traced with *instant* events only (exec.submit /
# exec.retry / exec.done / exec.failed), never spans: completion order
# and retry counts depend on worker scheduling and the host environment,
# and span-id allocation from nondeterministic events would leak into the
# ids of deterministic ones.  The deterministic trace view excludes the
# whole ``exec.`` prefix for the same reason (see
# :data:`repro.obs.trace.NONDETERMINISTIC_EVENT_PREFIXES`).


@dataclass(frozen=True)
class ExecError:
    """A task that failed after exhausting its retries."""

    task_id: Hashable
    error: str
    attempts: int
    #: ``"task"`` — the function raised; ``"worker"`` — the worker
    #: process died (the pool was rebuilt).
    stage: str = "task"

    def __str__(self) -> str:
        return f"task {self.task_id!r} failed after {self.attempts} attempt(s) [{self.stage}]: {self.error}"


class ParallelExecutor:
    """Deterministic fan-out of pure tasks over worker processes.

    :param workers: pool size; ``1`` executes inline (no subprocesses).
    :param retries: how often a failed task is re-run before it becomes
        an :class:`ExecError`.
    :param mp_context: multiprocessing start method (``"fork"`` where
        available, else the platform default).
    """

    def __init__(
        self,
        workers: int = 1,
        retries: int = 1,
        mp_context: Optional[str] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.retries = max(0, int(retries))
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._mp_method = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        #: bumped on every rebuild so that the flood of BrokenProcessPool
        #: errors one dead worker causes tears the pool down only once.
        self._generation = 0
        self._pending: Dict[Future, Tuple[Hashable, Callable, tuple, int, int, float]] = {}
        self._results: Dict[Hashable, Any] = {}
        self._errors: List[ExecError] = []

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._mp_method),
            )
        return self._pool

    def _rebuild_pool(self, generation: int) -> None:
        """Tear the pool down once per break, no matter how many in-flight
        futures report the same dead worker."""
        if generation != self._generation:
            return  # already rebuilt for this break
        self._generation += 1
        obs.inc("exec.pool_rebuilds")
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission and collection
    # ------------------------------------------------------------------

    def submit(self, task_id: Hashable, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` under ``task_id``.

        Inline mode (``workers=1``) runs the task immediately; pool mode
        dispatches it and returns at once.
        """
        if task_id in self._results:
            raise ValueError(f"duplicate task id: {task_id!r}")
        obs.inc("exec.tasks")
        # Runtime notes feed the live /status endpoint only (see
        # repro.obs.stream): completion order and retry counts are
        # environment-dependent, so they never enter a deterministic view.
        obs_stream.note("exec.submitted")
        if trace.get_tracer().enabled:
            trace.trace_event("exec.submit", task=str(task_id))
        if self.workers == 1:
            self._run_inline(task_id, fn, args)
        else:
            future = self._ensure_pool().submit(fn, *args)
            self._pending[future] = (
                task_id, fn, args, 1, self._generation, time.perf_counter()
            )

    def _run_inline(self, task_id: Hashable, fn: Callable, args: tuple) -> None:
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                obs.inc("exec.retries")
                obs_stream.note("exec.retries")
                if trace.get_tracer().enabled:
                    trace.trace_event("exec.retry", task=str(task_id))
            started = time.perf_counter()
            try:
                self._results[task_id] = fn(*args)
            except Exception as exc:  # noqa: BLE001 - surfaced as ExecError
                last = exc
            else:
                obs.observe("exec.task_seconds", time.perf_counter() - started, TIME_BUCKETS)
                obs_stream.note("exec.completed")
                if trace.get_tracer().enabled:
                    trace.trace_event("exec.done", task=str(task_id), attempts=attempt + 1)
                return
        obs.inc("exec.failures")
        if trace.get_tracer().enabled:
            trace.trace_event(
                "exec.failed", task=str(task_id), attempts=self.retries + 1, stage="task"
            )
        self._errors.append(
            ExecError(task_id=task_id, error=repr(last), attempts=self.retries + 1)
        )

    def _resubmit(self, task_id: Hashable, fn: Callable, args: tuple, attempt: int) -> None:
        obs.inc("exec.retries")
        obs_stream.note("exec.retries")
        if trace.get_tracer().enabled:
            trace.trace_event("exec.retry", task=str(task_id))
        future = self._ensure_pool().submit(fn, *args)
        self._pending[future] = (
            task_id, fn, args, attempt, self._generation, time.perf_counter()
        )

    def drain(self) -> Tuple[Dict[Hashable, Any], List[ExecError]]:
        """Wait for every submitted task; return ``(results, errors)``.

        ``results`` maps task ID to return value for every task that
        succeeded; every task that did not appears in ``errors``.
        """
        while self._pending:
            done, _ = wait(list(self._pending), return_when=FIRST_COMPLETED)
            for future in done:
                task_id, fn, args, attempt, generation, submitted = self._pending.pop(future)
                try:
                    self._results[task_id] = future.result()
                    # Queueing time is included; close enough for the
                    # per-task duration histogram.
                    obs.observe(
                        "exec.task_seconds", time.perf_counter() - submitted, TIME_BUCKETS
                    )
                    obs_stream.note("exec.completed")
                    if trace.get_tracer().enabled:
                        trace.trace_event(
                            "exec.done", task=str(task_id), attempts=attempt
                        )
                except (BrokenProcessPool, CancelledError) as exc:
                    # The worker died mid-task and took the pool (and any
                    # still-queued futures) with it.  Every in-flight
                    # future reports the same break; the generation guard
                    # rebuilds only once, then each task retries on the
                    # fresh pool.
                    self._rebuild_pool(generation)
                    if attempt <= self.retries:
                        self._resubmit(task_id, fn, args, attempt + 1)
                    else:
                        obs.inc("exec.failures")
                        if trace.get_tracer().enabled:
                            trace.trace_event(
                                "exec.failed",
                                task=str(task_id),
                                attempts=attempt,
                                stage="worker",
                            )
                        self._errors.append(
                            ExecError(task_id, repr(exc), attempt, stage="worker")
                        )
                except Exception as exc:  # noqa: BLE001 - surfaced as ExecError
                    if attempt <= self.retries:
                        self._resubmit(task_id, fn, args, attempt + 1)
                    else:
                        obs.inc("exec.failures")
                        if trace.get_tracer().enabled:
                            trace.trace_event(
                                "exec.failed",
                                task=str(task_id),
                                attempts=attempt,
                                stage="task",
                            )
                        self._errors.append(ExecError(task_id, repr(exc), attempt))
        return dict(self._results), list(self._errors)


def run_tasks(
    fn: Callable,
    items: Sequence[Any],
    *,
    workers: int = 1,
    retries: int = 1,
    mp_context: Optional[str] = None,
) -> Tuple[List[Any], List[ExecError]]:
    """Map ``fn`` over ``items`` with a pool; results stay in item order.

    Failed items hold ``None`` in the result list and carry an
    :class:`ExecError` (whose ``task_id`` is the item index).
    """
    with ParallelExecutor(workers=workers, retries=retries, mp_context=mp_context) as engine:
        for index, item in enumerate(items):
            engine.submit(index, fn, item)
        results, errors = engine.drain()
    return [results.get(index) for index in range(len(items))], errors
