"""Gateway frontends: address minting and database registration."""

import random

import pytest

from repro.gateway.operators import default_operators, frontend_ips, install_gateway_specs
from repro.world.ipspace import format_ip
from repro.world.population import build_world
from repro.world.profiles import WorldProfile


@pytest.fixture()
def world():
    world = build_world(WorldProfile(online_servers=150, seed=17))
    install_gateway_specs(world)
    return world


class TestFrontendIPs:
    def test_counts_match_operator_spec(self, world):
        rng = random.Random(18)
        for operator in default_operators()[:6]:
            addresses = frontend_ips(world, operator, rng)
            assert len(addresses) == operator.num_frontend_ips
            assert len(set(addresses)) == len(addresses)

    def test_cloud_attribution_follows_operator_provider(self, world):
        rng = random.Random(19)
        cloudflare = next(op for op in default_operators() if op.name == "cloudflare")
        for ip in frontend_ips(world, cloudflare, rng):
            assert world.cloud_db.lookup(ip) == "cloudflare"

    def test_noncloud_operator_gets_isp_addresses(self, world):
        rng = random.Random(20)
        selfhosted = next(op for op in default_operators() if op.provider is None)
        for ip in frontend_ips(world, selfhosted, rng):
            assert not world.cloud_db.is_cloud(ip)

    def test_geolocation_matches_operator_countries(self, world):
        rng = random.Random(21)
        operator = next(op for op in default_operators() if op.name == "eth-aragon")
        countries = {world.geo_db.lookup(ip) for ip in frontend_ips(world, operator, rng)}
        assert countries <= {country for country, _ in operator.frontend_countries}

    def test_databases_rebuilt_after_minting(self, world):
        rng = random.Random(22)
        operator = default_operators()[0]
        addresses = frontend_ips(world, operator, rng)
        # A freshly allocated block is immediately attributable.
        assert all(world.geo_db.lookup(ip) is not None for ip in addresses)
