"""Adversarial scenario pack (:mod:`repro.attack`).

Covers the spec parser, sybil identity grinding, the persisted
ground-truth log, the end-to-end attack campaign (all five scenarios),
and the two isolation contracts: attack-off campaigns allocate no attack
state, and attack-on campaigns are deterministic with workers=1 ≡ N.
"""

import dataclasses
import random

import pytest

from repro.attack import (
    ATTACK_TYPES,
    BitswapFloodConfig,
    ChurnBombConfig,
    GroundTruthLog,
    HydraAmplificationConfig,
    ProviderSpamConfig,
    SybilEclipseConfig,
    mint_peer_near,
    parse_attack_spec,
)
from repro.attack.ground_truth import load_ground_truth
from repro.ids.cid import CID
from repro.ids.keys import common_prefix_len
from repro.ids.peerid import PeerID
from repro.scenario.run import run_campaign
from repro.store import SqliteBackend


class TestAttackSpecs:
    def test_registry_covers_all_five(self):
        assert set(ATTACK_TYPES) == {
            "sybil-eclipse",
            "provider-spam",
            "bitswap-flood",
            "hydra-amplification",
            "churn-bomb",
        }
        for name, config_type in ATTACK_TYPES.items():
            assert config_type().name == name

    def test_bare_name_gives_defaults(self):
        assert parse_attack_spec("sybil-eclipse") == SybilEclipseConfig()
        assert parse_attack_spec("churn-bomb") == ChurnBombConfig()

    def test_knob_overrides_and_coercion(self):
        config = parse_attack_spec(
            "bitswap-flood:num_attackers=4, broadcasts_per_hour=900"
        )
        assert config == BitswapFloodConfig(
            num_attackers=4, broadcasts_per_hour=900.0
        )
        assert isinstance(config.num_attackers, int)
        assert isinstance(config.broadcasts_per_hour, float)

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError, match="unknown attack"):
            parse_attack_spec("teapot-flood")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown knob"):
            parse_attack_spec("sybil-eclipse:lasers=9")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_attack_spec("sybil-eclipse:prefix_bits")
        with pytest.raises(ValueError, match="bad value"):
            parse_attack_spec("sybil-eclipse:prefix_bits=tall")

    def test_activity_window(self):
        config = ProviderSpamConfig(start_day=2, duration_days=3)
        assert config.start_time == 2 * 86400.0
        assert config.end_time == 5 * 86400.0

    def test_configs_are_frozen_and_hashable(self):
        config = SybilEclipseConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.prefix_bits = 1
        assert len({config, SybilEclipseConfig(), BitswapFloodConfig()}) == 2


class TestMintPeerNear:
    def test_grinds_into_prefix(self):
        rng = random.Random(5)
        target = CID.generate(rng).dht_key
        peer = mint_peer_near(target, prefix_bits=8, rng=rng)
        assert common_prefix_len(target, peer.dht_key) >= 8

    def test_deterministic_per_rng_stream(self):
        target = CID.generate(random.Random(5)).dht_key
        first = mint_peer_near(target, 8, random.Random(9))
        again = mint_peer_near(target, 8, random.Random(9))
        assert first == again


class TestGroundTruthLog:
    def fill(self, log):
        rng = random.Random(3)
        peer, cid = PeerID.generate(rng), CID.generate(rng)
        log.record(86400.0, "sybil-eclipse", "window", end=172800.0)
        log.record(86400.0, "sybil-eclipse", "attacker", peer=peer)
        log.record(90000.0, "hydra-amplification", "induced", peer=peer)
        log.record(86400.0, "sybil-eclipse", "victim", cid=cid)
        return peer, cid

    def test_queries(self):
        log = GroundTruthLog()
        peer, cid = self.fill(log)
        assert log.windows() == {"sybil-eclipse": (86400.0, 172800.0)}
        assert log.attacker_peers("sybil-eclipse") == {peer}
        assert log.attacker_peers("hydra-amplification", include_induced=False) == set()
        assert log.victim_cids() == {cid}
        assert log.attacks() == ("sybil-eclipse",)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="event kind"):
            GroundTruthLog().record(0.0, "sybil-eclipse", "bystander")

    def test_codec_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "attack.sqlite"
        log = GroundTruthLog(SqliteBackend(str(path)))
        self.fill(log)
        log.flush()
        reloaded = load_ground_truth(SqliteBackend(str(path)))
        assert list(reloaded) == list(log)


class TestAttackCampaign:
    """All five scenarios injected into one two-day campaign."""

    def test_summary_covers_all_attacks(self, attack_campaign):
        assert set(attack_campaign.attack_summary) == set(ATTACK_TYPES)

    def test_sybil_eclipses_the_victim(self, attack_campaign):
        stats = attack_campaign.attack_summary["sybil-eclipse"]
        assert stats["lookups"] > 0
        assert stats["eclipse_share_max"] >= 0.5

    def test_spam_pollutes_provider_records(self, attack_campaign):
        stats = attack_campaign.attack_summary["provider-spam"]
        assert stats["publishes"] > 0
        assert stats["pollution_share_max"] >= 0.5

    def test_flood_and_amplification_and_churn_ran(self, attack_campaign):
        summary = attack_campaign.attack_summary
        assert summary["bitswap-flood"]["broadcasts"] > 0
        assert summary["hydra-amplification"]["requests"] > 0
        assert summary["hydra-amplification"]["amplification"] > 1.0
        assert summary["churn-bomb"]["joins"] > 0

    def test_ground_truth_complete(self, attack_campaign):
        truth = attack_campaign.attack_ground_truth
        assert set(truth.windows()) == set(ATTACK_TYPES)
        for name, config_type in ATTACK_TYPES.items():
            window = truth.windows()[name]
            assert window == (config_type().start_time, config_type().end_time)
            assert truth.attacker_peers(name, include_induced=False)
        assert truth.victim_cids("sybil-eclipse")
        assert truth.victim_cids("provider-spam")

    def test_attacker_traffic_stays_in_window(self, attack_campaign):
        """No attack message leaks outside its labelled activity window
        (up to scheduler granularity: events land inside the window)."""
        truth = attack_campaign.attack_ground_truth
        attackers = truth.attacker_peers(include_induced=False)
        start = min(window[0] for window in truth.windows().values())
        end = max(window[1] for window in truth.windows().values())
        for entry in attack_campaign.hydra.log:
            if entry.sender in attackers:
                assert start <= entry.timestamp <= end


class TestAttackOffIsolation:
    def test_no_attack_store_without_attacks(self, tmp_path, attack_config_factory):
        config = attack_config_factory(
            servers=150, storage=f"sqlite:{tmp_path}", attacks=()
        )
        config = dataclasses.replace(config, days=1, detect=False)
        run_campaign(config)
        assert (tmp_path / "hydra.sqlite").exists()
        assert not (tmp_path / "attack.sqlite").exists()

    # Bit-identity of attack-off campaigns to the pinned outputs is
    # covered by tests/test_golden_figures.py, which this PR leaves
    # untouched.


def campaign_fingerprint(result):
    """Everything determinism must preserve: both monitor logs plus the
    ground-truth stream and the scored detection outcome."""
    hydra = [
        (e.timestamp, e.sender, e.sender_ip, e.message_type, e.target_key, e.target_cid)
        for e in result.hydra.log
    ]
    bitswap = [
        (e.timestamp, e.sender, e.sender_ip, e.cid)
        for e in result.bitswap_monitor.log
    ]
    truth = [
        (e.timestamp, e.attack, e.event, e.peer, e.cid, e.end)
        for e in result.attack_ground_truth
    ]
    return hydra, bitswap, truth, result.attack_summary, result.detection


class TestAttackDeterminism:
    @pytest.fixture(scope="class")
    def parity_runs(self, attack_config_factory):
        attacks = (SybilEclipseConfig(), ChurnBombConfig(), BitswapFloodConfig())
        serial = run_campaign(attack_config_factory(servers=150, attacks=attacks))
        parallel = run_campaign(
            attack_config_factory(servers=150, workers=4, attacks=attacks)
        )
        return serial, parallel

    def test_run_twice_identical(self, attack_config_factory):
        attacks = (SybilEclipseConfig(), HydraAmplificationConfig())
        first = run_campaign(attack_config_factory(servers=150, attacks=attacks))
        second = run_campaign(attack_config_factory(servers=150, attacks=attacks))
        assert campaign_fingerprint(first) == campaign_fingerprint(second)

    def test_workers_parity(self, parity_runs):
        serial, parallel = parity_runs
        assert serial.exec_errors == [] and parallel.exec_errors == []
        assert campaign_fingerprint(serial) == campaign_fingerprint(parallel)

    def test_parity_crawls_identical(self, parity_runs):
        from test_parallel_determinism import snapshot_fingerprint

        serial, parallel = parity_runs
        assert [
            snapshot_fingerprint(s) for s in serial.crawls.snapshots
        ] == [snapshot_fingerprint(s) for s in parallel.crawls.snapshots]
