"""The DNS substrate: records, zones, resolution, scanning, passive DNS."""

import pytest

from repro.dns.passive import PassiveDNSFeed
from repro.dns.records import (
    DNSLINK_PREFIX,
    RRType,
    ResourceRecord,
    Zone,
    ZoneRegistry,
    make_dnslink_txt,
    parse_dnslink_txt,
)
from repro.dns.resolver import ResolutionError, Resolver
from repro.dns.scanner import ActiveScanner, registrable_domain


class TestDNSLinkRecords:
    def test_make_and_parse_ipfs(self):
        record = make_dnslink_txt("example.com", "bafyexample", "ipfs")
        assert record.name == "_dnslink.example.com"
        assert parse_dnslink_txt(record.value) == ("ipfs", "bafyexample")

    def test_make_and_parse_ipns(self):
        record = make_dnslink_txt("example.com", "k51abc", "ipns")
        assert parse_dnslink_txt(record.value) == ("ipns", "k51abc")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_dnslink_txt("example.com", "x", "http")

    @pytest.mark.parametrize(
        "value",
        [
            "dnslink=",
            "dnslink=/ipfs/",
            "dnslink=/ftp/abc",
            "dnslink=ipfs/abc",
            "v=spf1 include:example.com",
            "dnslink=/ipfs/a/b",
        ],
    )
    def test_parse_rejects_malformed(self, value):
        assert parse_dnslink_txt(value) is None


class TestZones:
    def test_zone_answers_soa(self):
        zone = Zone("example.com")
        assert zone.lookup("example.com", RRType.SOA)

    def test_zone_rejects_foreign_records(self):
        zone = Zone("example.com")
        with pytest.raises(ValueError):
            zone.add(ResourceRecord("other.org", RRType.A, "1.2.3.4"))

    def test_subdomain_records_allowed(self):
        zone = Zone("example.com")
        zone.add(ResourceRecord("www.example.com", RRType.A, "1.2.3.4"))
        assert zone.lookup("www.example.com", RRType.A)

    def test_registry_longest_suffix_match(self):
        registry = ZoneRegistry()
        registry.create_zone("example.com")
        assert registry.zone_for("a.b.example.com").domain == "example.com"
        assert registry.zone_for("example.org") is None

    def test_create_zone_idempotent(self):
        registry = ZoneRegistry()
        a = registry.create_zone("x.io")
        b = registry.create_zone("x.io")
        assert a is b
        assert len(registry) == 1


class TestResolver:
    @pytest.fixture()
    def registry(self):
        registry = ZoneRegistry()
        gateway = registry.create_zone("gateway.example")
        gateway.add(ResourceRecord("gateway.example", RRType.A, "9.9.9.9"))
        site = registry.create_zone("site.com")
        site.add(ResourceRecord("site.com", RRType.ALIAS, "gateway.example."))
        chained = registry.create_zone("chained.com")
        chained.add(ResourceRecord("chained.com", RRType.CNAME, "site.com."))
        looped = registry.create_zone("loop.com")
        looped.add(ResourceRecord("loop.com", RRType.CNAME, "loop.com."))
        return registry

    def test_direct_a(self, registry):
        assert Resolver(registry).resolve_a("gateway.example") == ["9.9.9.9"]

    def test_alias_following(self, registry):
        assert Resolver(registry).resolve_a("site.com") == ["9.9.9.9"]

    def test_cname_chain(self, registry):
        assert Resolver(registry).resolve_a("chained.com") == ["9.9.9.9"]

    def test_loop_detection(self, registry):
        with pytest.raises(ResolutionError):
            Resolver(registry).resolve_a("loop.com")

    def test_soa_exists(self, registry):
        resolver = Resolver(registry)
        assert resolver.soa_exists("site.com")
        assert not resolver.soa_exists("nxdomain.com")

    def test_no_records(self, registry):
        registry.create_zone("empty.com")
        assert Resolver(registry).resolve_a("empty.com") == []


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("example.com", "example.com"),
            ("www.example.com", "example.com"),
            ("a.b.c.example.io", "example.io"),
            ("example.co.uk", "example.co.uk"),
            ("deep.example.co.uk", "example.co.uk"),
            ("com", None),
            ("localdomain", None),
        ],
    )
    def test_reduction(self, name, expected):
        assert registrable_domain(name) == expected


class TestActiveScanner:
    def test_full_pipeline(self):
        registry = ZoneRegistry()
        gateway = registry.create_zone("gw.net")
        gateway.add(ResourceRecord("gw.net", RRType.A, "7.7.7.7"))
        adopter = registry.create_zone("dapp.io")
        adopter.add(make_dnslink_txt("dapp.io", "bafyabc", "ipfs"))
        adopter.add(ResourceRecord("dapp.io", RRType.CNAME, "gw.net."))
        plain = registry.create_zone("plain.com")
        malformed = registry.create_zone("broken.dev")
        malformed.add(
            ResourceRecord(f"{DNSLINK_PREFIX}.broken.dev", RRType.TXT, "dnslink=oops")
        )
        scanner = ActiveScanner(Resolver(registry))
        result = scanner.scan(
            ["www.dapp.io", "dapp.io", "plain.com", "broken.dev", "nxdomain.org", "gw.net"]
        )
        assert result.registered_domains == 4
        assert len(result.dnslink_records) == 1
        record = result.dnslink_records[0]
        assert record.domain == "dapp.io"
        assert record.kind == "ipfs"
        assert record.a_record_ips == ("7.7.7.7",)
        assert result.all_ips == ["7.7.7.7"]

    def test_subdomains_reduced_to_roots(self):
        registry = ZoneRegistry()
        registry.create_zone("example.com")
        scanner = ActiveScanner(Resolver(registry))
        result = scanner.scan(["a.example.com", "b.example.com"])
        assert result.root_domains == 1


class TestPassiveDNS:
    def test_aggregates_counts(self):
        feed = PassiveDNSFeed()
        feed.observe("gw.net", RRType.A, "1.1.1.1", count=3)
        feed.observe("gw.net", RRType.A, "1.1.1.1", count=2)
        feed.observe("gw.net", RRType.A, "2.2.2.2")
        assert feed.values_for("gw.net", RRType.A) == {"1.1.1.1", "2.2.2.2"}

    def test_ips_for_domains(self):
        feed = PassiveDNSFeed()
        feed.observe("a.com", RRType.A, "1.1.1.1")
        feed.observe("b.com", RRType.A, "2.2.2.2")
        feed.observe("c.com", RRType.A, "3.3.3.3")
        assert feed.ips_for_domains(["a.com", "B.COM."]) == {"1.1.1.1", "2.2.2.2"}

    def test_name_normalisation(self):
        feed = PassiveDNSFeed()
        feed.observe("GW.Net.", RRType.A, "1.1.1.1")
        assert feed.values_for("gw.net", RRType.A) == {"1.1.1.1"}
