"""Topology reconstruction (Fig. 7) and removal resilience (Fig. 8)."""

import random

import networkx as nx
import pytest

from repro.core import resilience, topology
from repro.core.crawler import DHTCrawler


@pytest.fixture(scope="module")
def snapshot(small_overlay):
    return DHTCrawler(small_overlay, rng=random.Random(81)).crawl(0)


class TestGraphs:
    def test_digraph_nodes_and_edges(self, snapshot):
        graph = topology.build_digraph(snapshot)
        assert graph.number_of_nodes() == snapshot.num_discovered
        assert graph.number_of_edges() == sum(len(v) for v in snapshot.edges.values())

    def test_undirected_conversion(self, snapshot):
        directed = topology.build_digraph(snapshot)
        undirected = topology.build_undirected(snapshot)
        assert undirected.number_of_edges() <= directed.number_of_edges()

    def test_out_degree_bucket_bound(self, snapshot):
        """Out-degree is bounded by k·(populated buckets) — a small band."""
        outs = list(topology.out_degrees(snapshot).values())
        assert outs
        import statistics

        mean = statistics.mean(outs)
        assert topology.percentile(outs, 0.9) < 1.3 * mean  # narrow band

    def test_in_degree_skewed(self, snapshot):
        ins = list(topology.estimated_in_degrees(snapshot).values())
        assert max(ins) > 2 * topology.percentile(ins, 0.5)

    def test_summary_keys(self, snapshot):
        summary = topology.degree_summary(snapshot)
        assert set(summary) == {
            "out_mean", "out_p10", "out_p90", "in_median", "in_p90", "in_max",
        }
        assert summary["in_p90"] <= summary["in_max"]


class TestCDFHelpers:
    def test_degree_cdf(self):
        cdf = topology.degree_cdf([1, 1, 2, 3])
        assert cdf == [(1, 0.5), (2, 0.75), (3, 1.0)]

    def test_cdf_empty(self):
        assert topology.degree_cdf([]) == []

    def test_percentile(self):
        values = list(range(101))
        assert topology.percentile(values, 0.0) == 0
        assert topology.percentile(values, 0.5) == 50
        assert topology.percentile(values, 1.0) == 100

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            topology.percentile([], 0.5)
        with pytest.raises(ValueError):
            topology.percentile([1], 2.0)


class TestRemoval:
    def test_random_removal_robust(self, snapshot):
        graph = topology.build_undirected(snapshot)
        trace = resilience.random_removal(graph, random.Random(0))
        # Robust to random failure: high LCC share deep into the removal.
        assert trace.share_at(0.5) > 0.9

    def test_targeted_removal_more_effective(self, snapshot):
        graph = topology.build_undirected(snapshot)
        random_trace = resilience.random_removal(graph, random.Random(1))
        targeted_trace = resilience.targeted_removal(graph)
        assert targeted_trace.partition_point() < random_trace.partition_point()
        assert targeted_trace.share_at(0.6) <= random_trace.share_at(0.6)

    def test_original_graph_untouched(self, snapshot):
        graph = topology.build_undirected(snapshot)
        nodes_before = graph.number_of_nodes()
        resilience.targeted_removal(graph)
        assert graph.number_of_nodes() == nodes_before

    def test_trace_share_at_before_first_step(self):
        trace = resilience.RemovalTrace([0.0, 0.5], [1.0, 0.2])
        assert trace.share_at(0.4) == 1.0
        assert trace.share_at(0.9) == 0.2

    def test_partition_point_never(self):
        trace = resilience.RemovalTrace([0.0, 0.5], [1.0, 0.9])
        assert trace.partition_point() == 1.0

    def test_confidence_interval_protocol(self):
        graph = nx.barabasi_albert_graph(200, 3, seed=5)
        fractions, means, halfwidths = resilience.random_removal_with_ci(
            graph, repetitions=5, rng=random.Random(2)
        )
        assert len(fractions) == len(means) == len(halfwidths)
        assert all(width >= 0 for width in halfwidths)
        assert means[0] == pytest.approx(1.0)

    def test_star_graph_partition(self):
        """A star fully partitions after one targeted removal."""
        graph = nx.star_graph(50)
        trace = resilience.targeted_removal(graph, record_every=1)
        assert trace.lcc_share[1] < 0.05
