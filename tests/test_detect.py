"""Attack detection (:mod:`repro.detect`).

Unit-tests the feature extractor and each threshold detector on
synthetic monitor entries, pins the scorer's exact precision/recall/TTD
arithmetic, checks the honest smoke campaign raises zero false alarms,
and gates the end-to-end detector quality floors on the packaged attack
campaign (the same floors CI enforces).
"""

import random

import pytest

from repro.detect import (
    BitswapFloodDetector,
    ChurnBombDetector,
    FeatureExtractor,
    HydraAmplificationDetector,
    PeerWindowFeatures,
    ProviderSpamDetector,
    SybilEclipseDetector,
    render_scorecard,
    run_detection,
)
from repro.attack import GroundTruthLog
from repro.ids.cid import CID
from repro.ids.keys import KEY_BITS
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, MessageType
from repro.monitors.bitswap_monitor import BitswapLogEntry

WINDOW = 21_600.0


def peer(index: int) -> PeerID:
    return PeerID(index.to_bytes(32, "big"))


def hydra(ts, sender, message_type, key=None, cid=None):
    return MessageEnvelope(
        timestamp=ts,
        sender=sender,
        sender_ip="9.9.9.9",
        message_type=message_type,
        target_key=key,
        target_cid=cid,
    )


def want(ts, sender, cid):
    return BitswapLogEntry(timestamp=ts, sender=sender, sender_ip="9.9.9.9", cid=cid)


def bucket_key(bucket: int, offset: int) -> int:
    """A DHT key inside the given 12-bit keyspace bucket."""
    return (bucket << (KEY_BITS - 12)) | offset


class TestFeatureExtractor:
    def test_windows_and_message_counts(self):
        a = peer(1)
        features = FeatureExtractor(window_seconds=WINDOW).extract(
            [
                hydra(10.0, a, MessageType.FIND_NODE, key=bucket_key(1, 1)),
                hydra(20.0, a, MessageType.FIND_NODE, key=bucket_key(1, 2)),
                hydra(WINDOW + 5.0, a, MessageType.GET_PROVIDERS, key=bucket_key(1, 1)),
            ]
        )
        assert [(f.window_start, f.messages) for f in features] == [
            (0.0, 2),
            (WINDOW, 1),
        ]
        first, second = features
        assert first.find_node == 2 and first.targeted == 2
        assert first.first_seen and not second.first_seen
        assert second.get_providers == 1

    def test_unseen_targets_credit_first_appearance_only(self):
        a, b = peer(1), peer(2)
        shared = bucket_key(3, 7)
        features = FeatureExtractor(window_seconds=WINDOW).extract(
            [
                hydra(10.0, a, MessageType.FIND_NODE, key=shared),
                hydra(20.0, b, MessageType.FIND_NODE, key=shared),
                hydra(30.0, b, MessageType.FIND_NODE, key=bucket_key(4, 1)),
            ]
        )
        by_peer = {f.peer: f for f in features}
        assert by_peer[a].unseen_targets == 1
        assert by_peer[b].unseen_targets == 1  # only the fresh key
        assert by_peer[b].distinct_targets == 2

    def test_top_bucket_concentration(self):
        a = peer(1)
        entries = [
            hydra(float(i), a, MessageType.FIND_NODE, key=bucket_key(5, i))
            for i in range(5)
        ] + [hydra(6.0, a, MessageType.FIND_NODE, key=bucket_key(9, 0))]
        (feature,) = FeatureExtractor(window_seconds=WINDOW).extract(entries)
        assert feature.top_bucket_count == 5
        assert feature.top_bucket_distinct == 5
        assert feature.top_bucket_share == pytest.approx(5 / 6)

    def test_bitswap_counts_and_cid_targets(self):
        a = peer(1)
        cid_a, cid_b = CID.generate(random.Random(1)), CID.generate(random.Random(2))
        features = FeatureExtractor(window_seconds=WINDOW).extract(
            [hydra(5.0, a, MessageType.ADD_PROVIDER, cid=cid_a)],
            [want(10.0, a, cid_a), want(11.0, a, cid_a), want(12.0, a, cid_b)],
        )
        (feature,) = features
        assert feature.add_provider == 1
        assert feature.targeted == 1  # the CID's DHT key counts as a target
        assert feature.bitswap_broadcasts == 3
        assert feature.bitswap_distinct_cids == 2

    def test_first_seen_resolved_across_both_streams(self):
        a = peer(1)
        cid = CID.generate(random.Random(1))
        features = FeatureExtractor(window_seconds=WINDOW).extract(
            [hydra(WINDOW + 1.0, a, MessageType.FIND_NODE, key=bucket_key(1, 1))],
            [want(5.0, a, cid)],  # earlier appearance, other stream
        )
        hydra_feature = next(f for f in features if f.window_start == WINDOW)
        assert not hydra_feature.first_seen


def feature(window_start=86_400.0, index=1, **overrides):
    defaults = dict(
        window_start=window_start,
        window_end=window_start + WINDOW,
        peer=peer(index),
    )
    defaults.update(overrides)
    return PeerWindowFeatures(**defaults)


class TestDetectors:
    def test_sybil_needs_distinct_keys_in_one_bucket(self):
        detector = SybilEclipseDetector()
        focused = feature(
            targeted=40, top_bucket_count=36, top_bucket_distinct=10
        )
        hot_key = feature(targeted=40, top_bucket_count=40, top_bucket_distinct=1)
        quiet = feature(targeted=8, top_bucket_count=8, top_bucket_distinct=8)
        assert len(detector.window_alerts(86_400.0, [focused])) == 1
        assert detector.window_alerts(86_400.0, [hot_key, quiet]) == []

    def test_spam_needs_recycled_targets(self):
        detector = ProviderSpamDetector()
        spammer = feature(add_provider=200, targeted=200, distinct_targets=10)
        bulk_honest = feature(add_provider=200, targeted=200, distinct_targets=70)
        assert len(detector.window_alerts(86_400.0, [spammer, bulk_honest])) == 1

    def test_flood_threshold(self):
        detector = BitswapFloodDetector()
        assert detector.window_alerts(0.0, [feature(bitswap_broadcasts=1500)])
        assert detector.window_alerts(0.0, [feature(bitswap_broadcasts=1499)]) == []

    def test_amplification_needs_novel_targets(self):
        detector = HydraAmplificationDetector()
        fresh = feature(
            get_providers=200, targeted=200, distinct_targets=120, unseen_targets=110
        )
        indexer = feature(
            get_providers=200, targeted=200, distinct_targets=120, unseen_targets=10
        )
        assert len(detector.window_alerts(86_400.0, [fresh, indexer])) == 1

    def test_churn_bomb_counts_the_wave(self):
        detector = ChurnBombDetector()
        wave = [
            feature(index=i, messages=1, find_node=1, first_seen=True)
            for i in range(70)
        ]
        assert len(detector.window_alerts(86_400.0, wave)) == 70
        assert detector.window_alerts(86_400.0, wave[:50]) == []
        # The campaign cold start (every peer first-seen) is masked.
        cold = [
            feature(window_start=0.0, index=i, messages=1, find_node=1, first_seen=True)
            for i in range(70)
        ]
        assert detector.window_alerts(0.0, cold) == []


def flood_entries(sender, start, count):
    cid = CID.generate(random.Random(4))
    return [want(start + 0.1 * i, sender, cid) for i in range(count)]


class TestScorer:
    def test_exact_precision_recall_and_ttd(self):
        attacker, bystander = peer(1), peer(2)
        truth = GroundTruthLog()
        truth.record(86_400.0, "bitswap-flood", "window", end=172_800.0)
        truth.record(86_400.0, "bitswap-flood", "attacker", peer=attacker)
        card = run_detection(
            [],
            flood_entries(attacker, 90_000.0, 1600)
            + flood_entries(bystander, 90_000.0, 1600),
            ground_truth=truth,
            detectors=[BitswapFloodDetector()],
        )
        (score,) = card.per_detector
        assert (score.true_positives, score.false_positives) == (1, 1)
        assert score.precision == 0.5
        assert score.recall == 1.0  # the one observable attacker is caught
        assert score.f1 == pytest.approx(2 / 3)
        assert score.time_to_detection == 0.0  # fired in the first window
        assert card.num_alerts == 2

    def test_alert_long_after_window_is_false_positive(self):
        attacker = peer(1)
        truth = GroundTruthLog()
        truth.record(86_400.0, "bitswap-flood", "window", end=108_000.0)
        truth.record(86_400.0, "bitswap-flood", "attacker", peer=attacker)
        card = run_detection(
            [],
            flood_entries(attacker, 90_000.0, 1600)
            + flood_entries(attacker, 230_000.0, 1600),
            ground_truth=truth,
            detectors=[BitswapFloodDetector()],
        )
        (score,) = card.per_detector
        assert (score.true_positives, score.false_positives) == (1, 1)

    def test_delayed_detection_measures_ttd(self):
        attacker = peer(1)
        truth = GroundTruthLog()
        truth.record(86_400.0, "bitswap-flood", "window", end=172_800.0)
        truth.record(86_400.0, "bitswap-flood", "attacker", peer=attacker)
        card = run_detection(
            [],
            flood_entries(attacker, 110_000.0, 1600),  # second attack window
            ground_truth=truth,
            detectors=[BitswapFloodDetector()],
        )
        (score,) = card.per_detector
        assert score.time_to_detection == WINDOW

    def test_no_ground_truth_every_alert_is_false(self):
        card = run_detection(
            [],
            flood_entries(peer(1), 90_000.0, 1600),
            detectors=[BitswapFloodDetector()],
        )
        (score,) = card.per_detector
        assert score.precision == 0.0
        assert score.recall == 1.0  # vacuous: nothing to detect
        assert card.overall_precision == 0.0

    def test_render_scorecard(self):
        card = run_detection([], [], ground_truth=GroundTruthLog())
        text = render_scorecard(card.to_dict())
        assert "bitswap-flood-rate" in text
        assert "overall: precision" in text


class TestHonestBaseline:
    def test_no_false_alarms_on_smoke_campaign(self, smoke_campaign):
        card = run_detection(smoke_campaign.hydra.log, smoke_campaign.bitswap_monitor.log)
        assert card.num_alerts == 0


def score_by_name(detection, name):
    (row,) = [r for r in detection["per_detector"] if r["detector"] == name]
    return row


class TestEndToEndFloors:
    """The committed quality gates on the packaged attack campaign."""

    def test_scorecard_present(self, attack_campaign):
        assert attack_campaign.detection is not None
        assert attack_campaign.detection["num_alerts"] > 0

    @pytest.mark.parametrize(
        "detector",
        ["sybil-eclipse-focus", "bitswap-flood-rate"],
    )
    def test_pinned_floors(self, attack_campaign, detector):
        row = score_by_name(attack_campaign.detection, detector)
        assert row["precision"] >= 0.9
        assert row["recall"] >= 0.8

    def test_all_detectors_precise(self, attack_campaign):
        for row in attack_campaign.detection["per_detector"]:
            assert row["precision"] >= 0.9, row

    def test_overall_recall(self, attack_campaign):
        assert attack_campaign.detection["overall_recall"] >= 0.8

    def test_detection_is_fast(self, attack_campaign):
        for detector in ("sybil-eclipse-focus", "bitswap-flood-rate"):
            row = score_by_name(attack_campaign.detection, detector)
            assert row["time_to_detection"] is not None
            assert row["time_to_detection"] <= WINDOW

    def test_rescoring_from_logs_matches_campaign(self, attack_campaign):
        card = run_detection(
            attack_campaign.hydra.log,
            attack_campaign.bitswap_monitor.log,
            ground_truth=attack_campaign.attack_ground_truth,
        )
        assert card.to_dict() == attack_campaign.detection
