"""Terminal charts and the command-line interface."""

import pytest

from repro.viz import bar_chart, cdf_chart, comparison_table, line_chart
from repro.cli import build_parser, main


class TestBarChart:
    def test_renders_sorted_bars(self):
        chart = bar_chart({"a": 0.7, "b": 0.3}, "title:")
        lines = chart.splitlines()
        assert lines[0] == "title:"
        assert lines[1].strip().startswith("a")
        assert "70.0%" in lines[1]

    def test_limit(self):
        chart = bar_chart({str(i): float(i) for i in range(30)}, limit=5, percent=False)
        assert len(chart.splitlines()) == 5

    def test_empty(self):
        assert bar_chart({}, "nothing") == "nothing"

    def test_non_percent_mode(self):
        chart = bar_chart({"x": 1234.5}, percent=False)
        assert "1234.50" in chart


class TestLineChart:
    def test_contains_points_and_axes(self):
        chart = line_chart([(0, 0), (1, 1)], "t:", width=20, height=5)
        assert "•" in chart
        assert "t:" in chart

    def test_empty(self):
        assert line_chart([], "t") == "t"

    def test_cdf_chart(self):
        chart = cdf_chart([1, 2, 3, 4], "cdf:")
        assert "P[X<=x]" in chart

    def test_flat_series(self):
        # A constant series must not divide by zero.
        chart = line_chart([(0, 5.0), (1, 5.0)])
        assert "•" in chart


class TestComparisonTable:
    def test_rows(self):
        table = comparison_table([("m", 0.5, 0.6)], "t")
        assert "measured" in table and "0.500" in table and "0.600" in table

    def test_empty(self):
        assert comparison_table([], "t") == "t"


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DE': 0.5" in out or "DE': 0.5" in out.replace('"', "'")

    def test_crawl_command(self, capsys):
        assert main(["crawl", "--servers", "150", "--crawls", "1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "crawl 0: discovered" in out

    def test_campaign_command_with_export(self, capsys, tmp_path):
        exit_code = main(
            [
                "campaign",
                "--preset", "smoke",
                "--servers", "150",
                "--days", "1",
                "--seed", "9",
                "--figures", "crawl_stats", "fig3",
                "--export", str(tmp_path / "data"),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "## fig3" in out
        assert "exported to" in out
        assert (tmp_path / "data" / "crawls.csv").exists()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--figures", "fig99"])
