"""Text renderings of every figure."""

import pytest

from repro.scenario.figures import RENDERERS, render


class TestRenderers:
    def test_all_figures_covered(self):
        expected = {f"fig{n}" for n in range(3, 21)}
        assert set(RENDERERS) == expected

    @pytest.mark.parametrize("figure", sorted(RENDERERS))
    def test_every_figure_renders(self, smoke_campaign, figure):
        text = render(smoke_campaign, figure)
        assert isinstance(text, str)
        assert text.splitlines()[0].startswith("Fig.")
        assert len(text) > 100  # an actual chart, not a stub

    def test_unknown_figure_rejected(self, smoke_campaign):
        with pytest.raises(ValueError):
            render(smoke_campaign, "fig99")

    def test_fig3_contains_both_methodologies(self, smoke_campaign):
        text = render(smoke_campaign, "fig3")
        assert "A-N" in text and "G-IP" in text
        assert "cloud" in text

    def test_fig13_contains_platforms(self, smoke_campaign):
        text = render(smoke_campaign, "fig13")
        assert "hydra" in text
        assert "web3-storage" in text

    def test_fig10_curves_have_axes(self, smoke_campaign):
        text = render(smoke_campaign, "fig10")
        assert "top share of peer IDs" in text
        assert "•" in text
