"""Streaming analytics estimate what the batch pipeline computes.

Three contracts, mirroring the repo's observability pattern (PR 4/5):

1. **Accuracy** — the live headline estimates (cloud share, provider
   split, gateway share, class shares, top-1% concentration) match the
   batch analyses over the full hydra log; at fixture scale the
   memoized classifications make them *exact*, so the pins are tight.
2. **Null path** — streaming off is the default no-op null stream and
   campaigns are bit-identical with streaming on or off.
3. **Parallel parity** — crawl workers return plain sketch state merged
   in crawl order, so ``workers=1`` and ``workers=4`` produce an
   identical deterministic sketch view.
"""

from dataclasses import replace

import pytest

from repro.core import traffic
from repro.core.pareto import top_share
from repro.obs.progress import ProgressReporter
from repro.obs.stream import (
    NULL_STREAM,
    SKETCHES_SCHEMA,
    NullStream,
    StreamAnalytics,
    deterministic_sketches_view,
    get_stream,
    render_stream_report,
    set_stream,
    use_stream,
)
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile

from test_parallel_determinism import parity_config, snapshot_fingerprint


def stream_config(workers: int, **overrides) -> ScenarioConfig:
    return replace(parity_config(workers), stream=True, **overrides)


@pytest.fixture(scope="module")
def plain_result():
    return run_campaign(parity_config(1))


@pytest.fixture(scope="module")
def streamed_result():
    return run_campaign(stream_config(1))


@pytest.fixture(scope="module")
def streamed_parallel():
    return run_campaign(stream_config(4))


class TestConfig:
    def test_stream_enabled_property(self):
        assert not ScenarioConfig().stream_enabled
        assert ScenarioConfig(stream=True).stream_enabled
        assert ScenarioConfig(sketches_out="out/s.json").stream_enabled
        assert ScenarioConfig(live="127.0.0.1:0").stream_enabled


class TestNullDispatch:
    def test_default_stream_is_null(self):
        stream = get_stream()
        assert stream is NULL_STREAM
        assert not stream.enabled
        # Hooks are safe no-ops on the null object.
        stream.observe_bitswap(0.0, None, None)
        stream.note("exec.submitted")
        stream.finalize()
        stream.merge_crawl_state({})
        assert stream.snapshot() == {"schema": SKETCHES_SCHEMA, "events": 0}
        assert stream.headline() == {}

    def test_use_stream_restores_on_exit(self):
        analytics = StreamAnalytics(3600.0)
        with use_stream(analytics):
            assert get_stream() is analytics
        assert get_stream() is NULL_STREAM

    def test_set_stream_returns_previous(self):
        analytics = StreamAnalytics(3600.0)
        previous = set_stream(analytics)
        try:
            assert previous is NULL_STREAM
            assert get_stream() is analytics
        finally:
            set_stream(previous)
        assert get_stream() is NULL_STREAM

    def test_null_result_has_no_sketches(self, plain_result):
        assert plain_result.sketches is None
        assert plain_result.sketches_path is None
        assert plain_result.live_url is None
        assert plain_result.stopped_early is False


class TestStreamingAccuracy:
    """Live estimates vs the batch pipeline over the same hydra log."""

    @pytest.fixture(scope="class")
    def headline(self, streamed_result):
        return streamed_result.sketches["headline"]

    @pytest.fixture(scope="class")
    def log(self, streamed_result):
        return list(streamed_result.hydra.log)

    def test_event_count_is_exact(self, streamed_result, log):
        sketches = streamed_result.sketches
        bitswap = len(streamed_result.bitswap_monitor.log)
        assert sketches["events"] == len(log) + bitswap
        assert sketches["headline"]["events"] == sketches["events"]

    def test_cloud_share_matches_batch(self, streamed_result, headline, log):
        report = traffic.cloud_traffic_report(log, streamed_result.world.cloud_db)
        assert headline["cloud_share_by_volume"] == pytest.approx(
            report.cloud_share_by_volume, abs=1e-9
        )

    def test_provider_shares_match_batch(self, streamed_result, headline, log):
        report = traffic.cloud_traffic_report(log, streamed_result.world.cloud_db)
        batch = {
            provider: share
            for provider, share in report.provider_shares_by_volume.items()
            if provider != "non-cloud"
        }
        live = headline["provider_shares_by_volume"]
        assert set(live) == set(batch)
        for provider, share in batch.items():
            assert live[provider] == pytest.approx(share, abs=1e-9)
        # top_provider is the largest cloud share (ties by name).
        expected_top = min(batch, key=lambda p: (-batch[p], p)) if batch else None
        assert headline["top_provider"] == expected_top

    def test_class_shares_match_batch(self, headline, log):
        batch = traffic.traffic_class_shares(log)
        live = headline["class_shares"]
        assert set(live) == set(batch)
        for label, share in batch.items():
            assert live[label] == pytest.approx(share, abs=1e-9)

    def test_gateway_share_matches_batch(self, streamed_result, headline, log):
        gateways = streamed_result.gateway_peers
        expected = sum(1 for entry in log if entry.sender in gateways) / len(log)
        assert headline["gateway_share_by_volume"] == pytest.approx(expected, abs=1e-9)

    def test_top1pct_concentration_matches_batch(self, headline, log):
        peer_volumes = traffic.peerid_volumes(log)
        ip_volumes = traffic.ip_volumes(log)
        assert headline["top1pct_peer_share"] == pytest.approx(
            top_share(peer_volumes, 0.01), abs=0.01
        )
        assert headline["top1pct_ip_share"] == pytest.approx(
            top_share(ip_volumes, 0.01), abs=0.01
        )

    def test_top10_peer_recall_is_perfect(self, streamed_result, log):
        volumes = traffic.peerid_volumes(log)
        truth = sorted(volumes.items(), key=lambda kv: (-kv[1], str(kv[0])))[:10]
        live = streamed_result.sketches["top"]["peers"]
        assert {key for key, _count, _err in live} == {str(p) for p, _v in truth}
        # Volumes themselves are exact while the summary is not full.
        live_counts = {key: count for key, count, _err in live}
        for peer, volume in truth:
            assert live_counts[str(peer)] == volume

    def test_distinct_estimates_are_close(self, streamed_result, headline, log):
        true_peers = len(traffic.peerid_volumes(log))
        true_ips = len(traffic.ip_volumes(log))
        true_cids = len({e.cid for e in streamed_result.bitswap_monitor.log})
        assert headline["distinct_peers_est"] == pytest.approx(true_peers, rel=0.05)
        assert headline["distinct_ips_est"] == pytest.approx(true_ips, rel=0.05)
        assert headline["distinct_cids_est"] == pytest.approx(true_cids, rel=0.05)

    def test_crawl_rollup_matches_dataset(self, streamed_result):
        crawl = streamed_result.sketches["crawl"]
        snapshots = streamed_result.crawls.snapshots
        assert crawl["crawls"] == len(snapshots)
        assert crawl["discovered"] == sum(len(s.observations) for s in snapshots)
        assert crawl["crawlable"] == sum(
            1
            for s in snapshots
            for obs in s.observations.values()
            if obs.crawlable
        )

    def test_snapshot_shape(self, streamed_result):
        sketches = streamed_result.sketches
        assert sketches["schema"] == SKETCHES_SCHEMA
        assert set(sketches["quantiles"]) == {
            "peer_requests_per_window",
            "crawl_out_degree",
        }
        for kind in ("peers", "ips", "cids"):
            assert sketches["top"][kind]
        assert "runtime" in sketches
        assert "runtime" not in deterministic_sketches_view(sketches)


class TestStreamingOffIsBitIdentical:
    """The PR-4 contract: the flag changes observability, never science."""

    def test_crawl_datasets_identical(self, plain_result, streamed_result):
        plain = [snapshot_fingerprint(s) for s in plain_result.crawls.snapshots]
        streamed = [snapshot_fingerprint(s) for s in streamed_result.crawls.snapshots]
        assert plain == streamed

    def test_hydra_log_identical(self, plain_result, streamed_result):
        assert len(plain_result.hydra.log) == len(streamed_result.hydra.log)
        assert plain_result.hydra.log[:200] == streamed_result.hydra.log[:200]
        assert traffic.traffic_class_shares(
            plain_result.hydra.log
        ) == traffic.traffic_class_shares(streamed_result.hydra.log)

    def test_gateway_probes_identical(self, plain_result, streamed_result):
        assert (
            plain_result.gateway_probe_reports.keys()
            == streamed_result.gateway_probe_reports.keys()
        )


class TestParallelParity:
    def test_sketch_views_bit_identical_across_workers(
        self, streamed_result, streamed_parallel
    ):
        serial = deterministic_sketches_view(streamed_result.sketches)
        parallel = deterministic_sketches_view(streamed_parallel.sketches)
        assert serial == parallel

    def test_campaigns_identical_across_workers(
        self, streamed_result, streamed_parallel
    ):
        serial = [snapshot_fingerprint(s) for s in streamed_result.crawls.snapshots]
        parallel = [
            snapshot_fingerprint(s) for s in streamed_parallel.crawls.snapshots
        ]
        assert serial == parallel


class TestRendering:
    def test_render_stream_report(self, streamed_result):
        report = render_stream_report(streamed_result.sketches)
        assert "cloud_share_by_volume" in report
        assert "quantiles" in report
        assert "top peers" in report

    def test_render_handles_empty_snapshot(self):
        report = render_stream_report({"schema": SKETCHES_SCHEMA, "events": 0})
        assert "0" in report


class TestHeartbeat:
    def test_stream_extras_absent_without_analytics(self):
        assert ProgressReporter._stream_extras(None) == []
        assert ProgressReporter._stream_extras(NullStream()) == []

    def test_stream_extras_from_live_analytics(self, streamed_result):
        analytics = StreamAnalytics(
            3600.0, provider_of=streamed_result.world.cloud_db.lookup
        )
        for entry in streamed_result.hydra.log[:500]:
            analytics.observe_hydra(entry)
        extras = ProgressReporter._stream_extras(analytics)
        assert extras[0] == "500 ev"
        assert any(extra.startswith("cloud ") for extra in extras)

    def test_headline_is_read_only(self, streamed_result):
        analytics = StreamAnalytics(3600.0)
        for entry in streamed_result.hydra.log[:200]:
            analytics.observe_hydra(entry)
        before = analytics.snapshot()
        analytics.headline()
        assert analytics.snapshot() == before

    def test_heartbeat_line_includes_stream_fields(self, streamed_result):
        class FakeStream:
            def __init__(self):
                self.lines = []

            def write(self, text):
                self.lines.append(text)

            def flush(self):
                pass

        analytics = StreamAnalytics(
            3600.0, provider_of=streamed_result.world.cloud_db.lookup
        )
        for entry in streamed_result.hydra.log[:300]:
            analytics.observe_hydra(entry)
        out = FakeStream()
        reporter = ProgressReporter(stream=out, interval=0.0, clock=lambda: 0.0)
        reporter.update("simulate", 1, 10, analytics=analytics)
        line = out.lines[-1]
        assert "300 ev" in line
        assert "cloud" in line
