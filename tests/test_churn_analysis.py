"""Passive churn analysis from crawl snapshots."""

import pytest

from repro.core.churn_analysis import (
    ChurnReport,
    PeerPresence,
    churn_by_label,
    churn_report,
    peer_presences,
)
from repro.core.crawler import CrawlDataset, CrawlObservation, CrawlSnapshot
from repro.ids.peerid import PeerID


def make_peer(tag: int) -> PeerID:
    return PeerID(tag.to_bytes(32, "big"))


def build_dataset(appearances):
    """appearances: {peer_tag: {crawl_id: ips}}."""
    dataset = CrawlDataset()
    crawl_ids = sorted({c for per_peer in appearances.values() for c in per_peer})
    for crawl_id in crawl_ids:
        snapshot = CrawlSnapshot(crawl_id=crawl_id, started_at=float(crawl_id))
        for tag, per_crawl in appearances.items():
            if crawl_id in per_crawl:
                peer = make_peer(tag)
                snapshot.observations[peer] = CrawlObservation(
                    peer, tuple(per_crawl[crawl_id]), crawlable=True
                )
        dataset.add(snapshot)
    return dataset


class TestPeerPresence:
    def test_sessions_split_on_gaps(self):
        presence = PeerPresence(make_peer(1), crawls_seen=[0, 1, 2, 5, 6, 9])
        assert presence.sessions() == [(0, 2), (5, 6), (9, 9)]

    def test_empty_sessions(self):
        assert PeerPresence(make_peer(1)).sessions() == []

    def test_uptime(self):
        presence = PeerPresence(make_peer(1), crawls_seen=[0, 2])
        assert presence.uptime(4) == 0.5
        assert presence.uptime(0) == 0.0

    def test_ip_changes(self):
        presence = PeerPresence(
            make_peer(1),
            crawls_seen=[0, 1, 2],
            ips_per_crawl={0: ("a",), 1: ("a",), 2: ("b",)},
        )
        assert presence.ip_changes() == 1


class TestChurnReport:
    def test_stable_vs_churner(self):
        dataset = build_dataset(
            {
                1: {c: ["stable-ip"] for c in range(10)},            # always on
                2: {0: ["r0"], 5: ["r5"]},                            # two blips
            }
        )
        report = churn_report(dataset)
        assert report.peers == 2
        assert report.mean_uptime == pytest.approx((1.0 + 0.2) / 2)
        assert report.single_appearance_share == 0.0
        # The churner changed IP between its two appearances.
        assert report.ip_change_rate == pytest.approx(1 / 10)

    def test_empty_dataset(self):
        assert churn_report(CrawlDataset()) == ChurnReport.empty()

    def test_filtering(self):
        dataset = build_dataset({1: {0: ["a"], 1: ["a"]}, 2: {0: ["b"]}})
        only_singles = churn_report(
            dataset, include=lambda presence: presence.appearances == 1
        )
        assert only_singles.peers == 1
        assert only_singles.single_appearance_share == 1.0

    def test_by_label_splits_cloud_and_fringe(self):
        dataset = build_dataset(
            {
                1: {c: ["cloud-1"] for c in range(8)},
                2: {c: ["cloud-2"] for c in range(8)},
                3: {0: ["resid-a"], 4: ["resid-b"]},
                4: {2: ["resid-c"]},
            }
        )
        reports = churn_by_label(
            dataset, lambda ip: "cloud" if ip.startswith("cloud") else "non-cloud"
        )
        assert set(reports) == {"cloud", "non-cloud"}
        # The paper's story in miniature: cloud peers near-always on,
        # non-cloud peers short-lived with rotating IPs.
        assert reports["cloud"].mean_uptime > 0.9
        assert reports["non-cloud"].mean_uptime < 0.3
        assert reports["non-cloud"].ip_change_rate > reports["cloud"].ip_change_rate
        assert reports["non-cloud"].single_appearance_share == 0.5


class TestOnCampaign:
    def test_cloud_peers_outlive_fringe(self, smoke_campaign):
        reports = churn_by_label(
            smoke_campaign.crawls,
            lambda ip: "cloud" if smoke_campaign.world.cloud_db.is_cloud(ip) else "non-cloud",
        )
        assert reports["cloud"].mean_uptime > reports["non-cloud"].mean_uptime + 0.2
        assert (
            reports["non-cloud"].single_appearance_share
            > reports["cloud"].single_appearance_share
        )

    def test_presences_cover_all_discovered(self, smoke_campaign):
        presences = peer_presences(smoke_campaign.crawls)
        assert len(presences) == smoke_campaign.crawls.unique_peer_ids()
