"""Report-module units beyond the full-bundle integration test."""

import pytest

from repro.scenario import report as R


class TestSnapshotSelection:
    def test_fig7_respects_snapshot_index(self, smoke_campaign):
        last = R.fig7_report(smoke_campaign, snapshot_index=-1)
        first = R.fig7_report(smoke_campaign, snapshot_index=0)
        assert set(last) == set(first)
        # Different snapshots generally differ somewhere.
        assert last != first or len(smoke_campaign.crawls) == 1

    def test_fig8_repetitions_control_ci_arrays(self, smoke_campaign):
        f8 = R.fig8_report(smoke_campaign, repetitions=2)
        assert len(f8["random_ci95"]) == len(f8["random_mean_lcc"])


class TestShareConsistency:
    def test_fig3_methodology_shares_each_sum_to_one(self, smoke_campaign):
        f3 = R.fig3_report(smoke_campaign)
        for method in ("A-N", "G-IP", "G-N"):
            assert sum(f3[method].values()) == pytest.approx(1.0)

    def test_fig5_an_shares_sum_to_one(self, smoke_campaign):
        f5 = R.fig5_report(smoke_campaign)
        assert sum(f5["A-N"].values()) == pytest.approx(1.0)
        assert 0 <= f5["an_top3_share"] <= 1

    def test_fig12_shares_bounded(self, smoke_campaign):
        f12 = R.fig12_report(smoke_campaign)
        for key, value in f12.items():
            if isinstance(value, float):
                assert 0.0 <= value <= 1.0, key

    def test_fig13_each_panel_sums_to_one(self, smoke_campaign):
        f13 = R.fig13_report(smoke_campaign)
        for panel in ("dht_all", "dht_download", "dht_advertisement", "bitswap"):
            assert sum(f13[panel].values()) == pytest.approx(1.0)

    def test_fig14_shares_sum_to_one(self, smoke_campaign):
        f14 = R.fig14_report(smoke_campaign)
        assert sum(f14["class_shares"].values()) == pytest.approx(1.0)
        if f14["relay_provider_shares"]:
            assert sum(f14["relay_provider_shares"].values()) == pytest.approx(1.0)

    def test_fig17_provider_shares_sum_to_one(self, smoke_campaign):
        f17 = R.fig17_report(smoke_campaign)
        assert sum(f17["provider_shares"].values()) == pytest.approx(1.0)

    def test_fig18_19_shares_sum_to_one(self, smoke_campaign):
        f18 = R.fig18_19_report(smoke_campaign)
        for key in (
            "frontend_provider_shares",
            "overlay_provider_shares",
            "frontend_country_shares",
            "overlay_country_shares",
        ):
            assert sum(f18[key].values()) == pytest.approx(1.0)

    def test_sec5_class_shares_sum_to_one(self, smoke_campaign):
        s5 = R.sec5_report(smoke_campaign)
        assert s5["download_share"] + s5["advertisement_share"] + s5["other_share"] == pytest.approx(1.0)
