"""The Figure-1 end-to-end path: DNSLink site through a gateway."""

import random

import pytest

from repro.dns.records import ResourceRecord, RRType, ZoneRegistry, make_dnslink_txt
from repro.dns.resolver import Resolver
from repro.gateway.operators import default_operators, install_gateway_specs
from repro.gateway.service import GatewayService
from repro.gateway.web import WebClient
from repro.ids.cid import CID
from repro.ipns.resolver import IPNSResolver
from repro.netsim.network import Overlay
from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile


@pytest.fixture(scope="module")
def web_setup():
    world = build_world(WorldProfile(online_servers=200, seed=71))
    install_gateway_specs(world)
    overlay = Overlay(world)
    overlay.bootstrap()

    operators = {op.name: op for op in default_operators()}
    nodes = [
        node
        for node in overlay.nodes
        if node.spec.platform == "cloudflare" and node.spec.node_class is NodeClass.GATEWAY
    ]
    service = GatewayService(operators["cloudflare"], nodes, overlay)

    registry = ZoneRegistry()
    gateway_zone = registry.create_zone("cloudflare-ipfs.com")
    gateway_zone.add(ResourceRecord("cloudflare-ipfs.com", RRType.A, "9.9.9.9"))

    # Published content, provided by a reachable server.
    publisher = next(n for n in overlay.online_servers() if n.reachable)
    site_cid = CID.for_data(b"<html>decentralized-ish</html>")
    overlay.publish_provider_record(publisher, site_cid)

    # An /ipfs/ site wired via ALIAS to the public gateway.
    site = registry.create_zone("cool-site.io")
    site.add(make_dnslink_txt("cool-site.io", site_cid.to_base32(), "ipfs"))
    site.add(ResourceRecord("cool-site.io", RRType.ALIAS, "cloudflare-ipfs.com."))

    # An /ipns/ site pointing at a mutable name.
    ipns = IPNSResolver(overlay, random.Random(72))
    keypair = ipns.generate_keypair()
    ipns.publish(keypair, site_cid)
    mutable = registry.create_zone("mutable-site.io")
    mutable.add(make_dnslink_txt("mutable-site.io", keypair.name.to_string(), "ipns"))
    mutable.add(ResourceRecord("mutable-site.io", RRType.A, "9.9.9.9"))

    # A site whose DNSLink points at rotten content.
    rotten = registry.create_zone("rotten-site.io")
    rotten.add(make_dnslink_txt("rotten-site.io", CID.generate(random.Random(73)).to_base32(), "ipfs"))
    rotten.add(ResourceRecord("rotten-site.io", RRType.A, "9.9.9.9"))

    # A plain domain without DNSLink.
    registry.create_zone("plain.io")

    client = WebClient(
        Resolver(registry),
        services_by_ip={"9.9.9.9": service},
        services_by_domain={"cloudflare-ipfs.com": service},
        ipns=ipns,
    )
    return client, site_cid, keypair, ipns


class TestFigure1Path:
    def test_ipfs_site_fetches_end_to_end(self, web_setup):
        client, site_cid, _, _ = web_setup
        result = client.fetch("cool-site.io")
        assert result.ok
        assert result.cid == site_cid
        assert result.dnslink_kind == "ipfs"
        assert result.gateway_domain == "cloudflare-ipfs.com"

    def test_ipns_site_resolves_through_name_layer(self, web_setup):
        client, site_cid, _, _ = web_setup
        result = client.fetch("mutable-site.io")
        assert result.ok
        assert result.cid == site_cid
        assert result.dnslink_kind == "ipns"

    def test_ipns_update_changes_served_content(self, web_setup):
        client, _, keypair, ipns = web_setup
        new_cid = CID.for_data(b"<html>v2</html>")
        # v2 must actually be retrievable on the overlay.
        overlay = ipns.overlay
        publisher = next(n for n in overlay.online_servers() if n.reachable)
        overlay.publish_provider_record(publisher, new_cid)
        ipns.publish(keypair, new_cid)
        result = client.fetch("mutable-site.io")
        assert result.ok
        assert result.cid == new_cid

    def test_nxdomain(self, web_setup):
        client, _, _, _ = web_setup
        assert client.fetch("never-registered.io").status == 523

    def test_no_dnslink_is_404(self, web_setup):
        client, _, _, _ = web_setup
        result = client.fetch("plain.io")
        assert result.status == 404
        assert "no DNSLink" in result.detail

    def test_rotten_content_is_404_from_gateway(self, web_setup):
        client, _, _, _ = web_setup
        result = client.fetch("rotten-site.io")
        assert result.status == 404
        assert result.cid is not None  # DNSLink resolved; content did not
