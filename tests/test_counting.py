"""Counting methodologies — including the paper's Table 1 worked example."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counting import (
    BOTH,
    CLOUD,
    NON_CLOUD,
    CountingMethod,
    CrawlRow,
    a_n_counts,
    cloud_status_combine,
    counts,
    cumulative_ratio_series,
    g_ip_counts,
    g_n_counts,
    majority_vote,
    make_rows,
    shares,
)
from repro.ids.peerid import PeerID


def make_peer(tag: int) -> PeerID:
    return PeerID(tag.to_bytes(32, "big"))


@pytest.fixture()
def table1_rows():
    """The paper's Table 1 example dataset.

    Crawl 1: p1→a1(DE), p1→a2(DE), p2→a3(US)
    Crawl 2: p2→a2(DE), p2→a3(US), p2→a4(US)
    """
    p1, p2 = make_peer(1), make_peer(2)
    return [
        CrawlRow(1, p1, "a1"),
        CrawlRow(1, p1, "a2"),
        CrawlRow(1, p2, "a3"),
        CrawlRow(2, p2, "a2"),
        CrawlRow(2, p2, "a3"),
        CrawlRow(2, p2, "a4"),
    ]


GEO = {"a1": "DE", "a2": "DE", "a3": "US", "a4": "US"}


class TestTable1:
    def test_g_ip_matches_paper(self, table1_rows):
        """The paper: G-IP yields DE=2, US=2."""
        assert g_ip_counts(table1_rows, GEO.get) == {"DE": 2.0, "US": 2.0}

    def test_a_n_matches_paper(self, table1_rows):
        """The paper: A-N yields DE=0.5, US=1."""
        assert a_n_counts(table1_rows, GEO.get) == {"DE": 0.5, "US": 1.0}

    def test_a_n_interpretation(self, table1_rows):
        """'One stable node probably in the US, one node with 50 % uptime
        in Germany' — the A-N counts support exactly that reading."""
        result = a_n_counts(table1_rows, GEO.get)
        assert result["US"] == 1.0  # stable
        assert result["DE"] == 0.5  # 50% uptime

    def test_g_n_counts_peers_once(self, table1_rows):
        # p1 is DE-majority; p2 announces a2(DE), a3(US), a4(US) → US.
        assert g_n_counts(table1_rows, GEO.get) == {"DE": 1.0, "US": 1.0}

    def test_dispatcher(self, table1_rows):
        assert counts(table1_rows, GEO.get, CountingMethod.G_IP) == {"DE": 2.0, "US": 2.0}
        assert counts(table1_rows, GEO.get, CountingMethod.A_N) == {"DE": 0.5, "US": 1.0}
        assert counts(table1_rows, GEO.get, CountingMethod.G_N) == {"DE": 1.0, "US": 1.0}


class TestMajorityVote:
    def test_simple_majority(self):
        assert majority_vote(["DE", "DE", "US"]) == "DE"

    def test_tie_breaks_lexicographically(self):
        assert majority_vote(["US", "DE"]) == "DE"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1))
    def test_result_is_member(self, labels):
        assert majority_vote(labels) in labels


class TestCloudStatusCombine:
    def test_pure_cloud(self):
        assert cloud_status_combine([CLOUD, CLOUD]) == CLOUD

    def test_pure_noncloud(self):
        assert cloud_status_combine([NON_CLOUD]) == NON_CLOUD

    def test_mixed_is_both(self):
        """Peers announcing cloud AND non-cloud addresses get BOTH (§4)."""
        assert cloud_status_combine([CLOUD, NON_CLOUD, NON_CLOUD]) == BOTH


class TestMethodProperties:
    def test_a_n_with_explicit_crawl_count(self, table1_rows):
        result = a_n_counts(table1_rows, GEO.get, num_crawls=4)
        assert result == {"DE": 0.25, "US": 0.5}

    def test_empty_rows(self):
        assert g_ip_counts([], GEO.get) == {}
        assert a_n_counts([], GEO.get) == {}
        assert g_n_counts([], GEO.get) == {}

    def test_shares_normalize(self):
        assert shares({"a": 3.0, "b": 1.0}) == {"a": 0.75, "b": 0.25}
        assert shares({}) == {}

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 6), st.integers(0, 9)), min_size=1))
    def test_a_n_total_is_avg_peers_per_crawl(self, raw):
        rows = [CrawlRow(crawl, make_peer(peer), f"ip{ip}") for crawl, peer, ip in raw]
        prop = lambda ip: "x"
        result = a_n_counts(rows, prop)
        crawls = {row.crawl_id for row in rows}
        expected = sum(
            len({row.peer for row in rows if row.crawl_id == crawl}) for crawl in crawls
        ) / len(crawls)
        assert result["x"] == pytest.approx(expected)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 6), st.integers(0, 9)), min_size=1))
    def test_g_ip_total_is_unique_ips(self, raw):
        rows = [CrawlRow(crawl, make_peer(peer), f"ip{ip}") for crawl, peer, ip in raw]
        result = g_ip_counts(rows, lambda ip: "x")
        assert result["x"] == len({row.ip for row in rows})


class TestCumulativeSeries:
    def test_rotating_ips_inflate_g_ip_only(self):
        """The Fig. 4 mechanism in miniature: a stable cloud peer and a
        non-cloud peer that rotates its IP every crawl."""
        cloud_peer, churner = make_peer(1), make_peer(2)
        prop = lambda ip: CLOUD if ip.startswith("c") else NON_CLOUD
        rows = []
        for crawl in range(10):
            rows.append(CrawlRow(crawl, cloud_peer, "c-stable"))
            rows.append(CrawlRow(crawl, churner, f"r-{crawl}"))
        gip = cumulative_ratio_series(rows, prop, CountingMethod.G_IP)
        an = cumulative_ratio_series(
            rows, prop, CountingMethod.A_N, combine=cloud_status_combine
        )
        # G-IP ratio decays as rotated IPs accumulate …
        assert gip[0][1] == 1.0
        assert gip[-1][1] == pytest.approx(0.1)
        # … while A-N stays flat at 1:1.
        assert all(ratio == pytest.approx(1.0) for _, ratio in an)

    def test_make_rows_adapter(self):
        rows = make_rows([(0, make_peer(1), "a"), (1, make_peer(2), "b")])
        assert rows[0].crawl_id == 0 and rows[1].ip == "b"
