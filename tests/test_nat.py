"""NAT traversal: DCUtR hole punching."""

import random

import pytest

from repro.netsim.nat import DCUtR


@pytest.fixture()
def nat_pair(churned_overlay):
    overlay = churned_overlay
    nat = next(iter(overlay.online_nat_clients()))
    overlay.ensure_relay(nat)
    dialer = overlay.online_servers()[0]
    return overlay, dialer, nat


class TestDCUtR:
    def test_successful_holepunch_is_direct(self, nat_pair):
        _, dialer, nat = nat_pair
        dcutr = DCUtR(success_prob=1.0, rng=random.Random(1))
        path = dcutr.connect(dialer, nat)
        assert path is not None
        assert path.direct
        assert path.via_relay is nat.relay

    def test_failed_holepunch_stays_relayed(self, nat_pair):
        _, dialer, nat = nat_pair
        dcutr = DCUtR(success_prob=0.0, rng=random.Random(2))
        path = dcutr.connect(dialer, nat)
        assert path is not None
        assert not path.direct
        assert path.via_relay is not None

    def test_no_relay_no_connection(self, nat_pair):
        overlay, dialer, nat = nat_pair
        # Knock every relay offline for this NAT client by monkeying the
        # selection: point ensure_relay at nothing.
        nat.relay = None
        original = overlay.pick_relay
        overlay.pick_relay = lambda exclude=None: None
        try:
            dcutr = DCUtR(success_prob=1.0, rng=random.Random(3))
            assert dcutr.connect(dialer, nat) is None
        finally:
            overlay.pick_relay = original

    def test_success_rate_statistics(self, nat_pair):
        _, dialer, nat = nat_pair
        dcutr = DCUtR(success_prob=0.7, rng=random.Random(4))
        outcomes = [dcutr.connect(dialer, nat) for _ in range(300)]
        direct = sum(1 for path in outcomes if path and path.direct)
        total = sum(1 for path in outcomes if path)
        assert direct / total == pytest.approx(0.7, abs=0.08)
