"""IPv4 address space modelling."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.world.ipspace import IPAllocator, IPBlock, format_ip, parse_ip


class TestFormatting:
    def test_roundtrip_known(self):
        assert parse_ip("1.10.20.30") == (1 << 24) | (10 << 16) | (20 << 8) | 30
        assert format_ip(parse_ip("255.255.255.255")) == "255.255.255.255"
        assert format_ip(0) == "0.0.0.0"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value

    def test_rejects_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                parse_ip(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            format_ip(1 << 32)
        with pytest.raises(ValueError):
            format_ip(-1)


class TestIPBlock:
    def test_contains(self):
        block = IPBlock(parse_ip("10.0.0.0"), 24, "org", "US", True)
        assert parse_ip("10.0.0.0") in block
        assert parse_ip("10.0.0.255") in block
        assert parse_ip("10.0.1.0") not in block

    def test_size(self):
        assert IPBlock(0, 16, "o", "US", False).size == 65536
        assert IPBlock(0, 32, "o", "US", False).size == 1


class TestIPAllocator:
    def test_blocks_are_disjoint_and_aligned(self):
        allocator = IPAllocator()
        blocks = [
            allocator.allocate_block(f"org{i}", "US", True, prefix_len=20) for i in range(10)
        ]
        for block in blocks:
            assert block.base % block.size == 0
        for a, b in zip(blocks, blocks[1:]):
            assert a.base + a.size <= b.base

    def test_next_address_unique_until_exhaustion(self):
        allocator = IPAllocator()
        block = allocator.allocate_block("org", "DE", False, prefix_len=30)
        addresses = [allocator.next_address(block) for _ in range(4)]
        assert len(set(addresses)) == 4
        assert all(address in block for address in addresses)
        with pytest.raises(RuntimeError):
            allocator.next_address(block)

    def test_random_address_within_block(self):
        allocator = IPAllocator()
        block = allocator.allocate_block("org", "FR", True, prefix_len=24)
        rng = random.Random(0)
        assert all(allocator.random_address(block, rng) in block for _ in range(50))

    def test_find_block(self):
        allocator = IPAllocator()
        a = allocator.allocate_block("a", "US", True, prefix_len=24)
        b = allocator.allocate_block("b", "DE", False, prefix_len=24)
        assert allocator.find_block(a.base + 5) == a
        assert allocator.find_block(b.base + 5) == b
        assert allocator.find_block(1) is None

    def test_mixed_prefix_lengths(self):
        allocator = IPAllocator()
        small = allocator.allocate_block("s", "US", True, prefix_len=28)
        large = allocator.allocate_block("l", "US", True, prefix_len=14)
        assert small.base + small.size <= large.base
        assert large.base % large.size == 0
