"""The DHT crawler over the simulated overlay."""

import random

import pytest

from repro.core.crawler import CrawlDataset, DHTCrawler


@pytest.fixture(scope="module")
def crawl(small_overlay):
    crawler = DHTCrawler(small_overlay, rng=random.Random(71))
    return crawler.crawl(crawl_id=0)


class TestCrawl:
    def test_discovers_most_online_servers(self, small_overlay, crawl):
        online = len(small_overlay.oracle)
        assert crawl.num_discovered >= 0.95 * online

    def test_crawlable_subset_matches_reachability(self, small_overlay, crawl):
        # Every crawlable peer is genuinely online and reachable.
        for peer, obs in crawl.observations.items():
            if obs.crawlable:
                node = small_overlay.online_by_peer.get(peer)
                assert node is not None and node.reachable

    def test_uncrawlable_leaves_present(self, crawl):
        assert crawl.num_crawlable < crawl.num_discovered

    def test_edges_only_for_crawled(self, crawl):
        assert set(crawl.edges) == {
            peer for peer, obs in crawl.observations.items() if obs.crawlable
        }

    def test_edges_are_complete_buckets(self, small_overlay, crawl):
        """The crafted-key sweep enumerates (almost) the whole table."""
        checked = 0
        for peer, neighbors in list(crawl.edges.items())[:20]:
            node = small_overlay.online_by_peer.get(peer)
            if node is None or node.routing_table is None:
                continue
            table_peers = set(node.routing_table.peers())
            recovered = len(set(neighbors) & table_peers) / max(len(table_peers), 1)
            assert recovered > 0.9
            checked += 1
        assert checked > 0

    def test_no_nat_clients_discovered(self, small_overlay, crawl):
        nat_peers = {n.peer for n in small_overlay.online_nat_clients()}
        assert not (set(crawl.observations) & nat_peers)

    def test_observations_carry_ips(self, crawl):
        with_ips = sum(1 for obs in crawl.observations.values() if obs.ips)
        assert with_ips > 0.9 * crawl.num_discovered

    def test_duration_model(self, crawl):
        # Latency-dominated part plus one timeout tail (unresponsive wait).
        assert crawl.duration > 180.0
        assert crawl.requests_sent > crawl.num_discovered


class TestTimeoutEffect:
    def test_short_timeout_reduces_crawlable(self, small_overlay):
        patient = DHTCrawler(small_overlay, timeout=300.0, rng=random.Random(72))
        hasty = DHTCrawler(small_overlay, timeout=0.05, rng=random.Random(72))
        full = patient.crawl(0)
        partial = hasty.crawl(0)
        assert partial.num_crawlable < full.num_crawlable


class TestDataset:
    def test_aggregates(self, crawl):
        dataset = CrawlDataset()
        dataset.add(crawl)
        assert len(dataset) == 1
        assert dataset.avg_discovered() == crawl.num_discovered
        assert dataset.avg_crawlable() == crawl.num_crawlable
        assert dataset.unique_peer_ids() == crawl.num_discovered
        assert dataset.unique_ips() > 0
        assert dataset.avg_ips_per_peer() >= 1.0

    def test_rows_shape(self, crawl):
        dataset = CrawlDataset()
        dataset.add(crawl)
        rows = list(dataset.rows())
        assert rows
        crawl_id, peer, ip = rows[0]
        assert crawl_id == 0
        assert isinstance(ip, str) and ip.count(".") == 3

    def test_empty_dataset(self):
        dataset = CrawlDataset()
        assert dataset.avg_discovered() == 0.0
        assert dataset.avg_ips_per_peer() == 0.0
