"""Iterative Kademlia walks over a static mini-DHT."""

import random

import pytest

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.lookup import (
    iterative_find_node,
    iterative_find_providers,
)
from repro.kademlia.messages import PeerInfo
from repro.kademlia.providers import ProviderRecord, ProviderStore
from repro.kademlia.routing_table import RoutingTable
from repro.ids.multiaddr import Multiaddr


class MiniDHT:
    """A fully wired static network of routing tables."""

    def __init__(self, size=120, seed=0, k=20):
        self.rng = random.Random(seed)
        self.k = k
        self.peers = [PeerID.generate(self.rng) for _ in range(size)]
        self.tables = {}
        self.stores = {peer: ProviderStore() for peer in self.peers}
        self.unreachable = set()
        for peer in self.peers:
            table = RoutingTable(peer, bucket_size=k)
            for other in self.peers:
                table.add(other)
            self.tables[peer] = table

    def info(self, peer):
        return PeerInfo(peer=peer, addrs=(Multiaddr.direct("10.0.0.1", 4001, peer),))

    def find_node_query(self, peer, target_key):
        if peer in self.unreachable:
            return None
        return [self.info(p) for p in self.tables[peer].closest(target_key, self.k)]

    def get_providers_query(self, peer, cid):
        if peer in self.unreachable:
            return None
        records = self.stores[peer].get(cid, now=0.0)
        closer = [self.info(p) for p in self.tables[peer].closest(cid.dht_key, self.k)]
        return records, closer

    def resolvers(self, cid):
        return sorted(self.peers, key=lambda p: p.dht_key ^ cid.dht_key)[: self.k]

    def store_record(self, cid, provider, num_resolvers=None):
        record = ProviderRecord(
            cid=cid,
            provider=provider,
            addrs=(Multiaddr.direct("10.9.9.9", 4001, provider),),
            published_at=0.0,
        )
        for resolver in self.resolvers(cid)[:num_resolvers]:
            self.stores[resolver].add(record)
        return record


@pytest.fixture(scope="module")
def dht():
    return MiniDHT()


class TestFindNode:
    def test_finds_true_closest(self, dht):
        target = random.Random(42).getrandbits(256)
        start = [dht.info(p) for p in dht.peers[:3]]
        result = iterative_find_node(target, start, dht.find_node_query)
        expected = sorted(dht.peers, key=lambda p: p.dht_key ^ target)[:20]
        assert [info.peer for info in result.closest] == expected

    def test_converges_with_few_messages(self, dht):
        target = random.Random(43).getrandbits(256)
        start = [dht.info(dht.peers[0])]
        result = iterative_find_node(target, start, dht.find_node_query)
        # Far fewer queries than peers: the walk is logarithmic-ish.
        assert result.messages < len(dht.peers) // 2

    def test_unreachable_peers_recorded_as_failed(self, dht):
        target = random.Random(44).getrandbits(256)
        dead = set(random.Random(1).sample(dht.peers, 30))
        dht.unreachable = dead
        try:
            start = [dht.info(p) for p in dht.peers[:3]]
            result = iterative_find_node(target, start, dht.find_node_query)
            assert result.failed <= dead
            assert all(peer not in dead for peer in result.contacted)
            # Live closest only.
            assert all(info.peer not in dead for info in result.closest)
        finally:
            dht.unreachable = set()

    def test_empty_start(self, dht):
        result = iterative_find_node(123, [], dht.find_node_query)
        assert result.closest == []
        assert result.messages == 0

    def test_max_queries_bounds_messages(self, dht):
        target = random.Random(45).getrandbits(256)
        start = [dht.info(p) for p in dht.peers[:3]]
        result = iterative_find_node(target, start, dht.find_node_query, max_queries=5)
        assert result.messages <= 5


class TestFindProviders:
    def test_collects_stored_records(self, dht):
        cid = CID.generate(random.Random(50))
        provider = dht.peers[5]
        dht.store_record(cid, provider)
        result = iterative_find_providers(
            cid, [dht.info(dht.peers[0])], dht.get_providers_query
        )
        assert [r.provider for r in result.providers] == [provider]

    def test_no_providers_returns_empty(self, dht):
        cid = CID.generate(random.Random(51))
        result = iterative_find_providers(
            cid, [dht.info(dht.peers[0])], dht.get_providers_query
        )
        assert result.providers == []
        # The walk still queried the resolvers.
        assert len(result.resolvers_queried) > 0

    def test_stock_terminates_at_max_providers(self, dht):
        """Stock FindProviders stops once 20 providers were found."""
        cid = CID.generate(random.Random(52))
        rng = random.Random(53)
        for provider in rng.sample(dht.peers, 30):
            dht.store_record(cid, provider)
        stock = iterative_find_providers(
            cid, [dht.info(dht.peers[0])], dht.get_providers_query, max_providers=20
        )
        assert len(stock.providers) >= 20

    def test_exhaustive_collects_all(self, dht):
        """The paper's modification: terminate only after all resolvers
        answered, collecting every record."""
        cid = CID.generate(random.Random(54))
        rng = random.Random(55)
        providers = rng.sample(dht.peers, 30)
        for provider in providers:
            dht.store_record(cid, provider)
        exhaustive = iterative_find_providers(
            cid, [dht.info(dht.peers[0])], dht.get_providers_query, exhaustive=True
        )
        assert set(r.provider for r in exhaustive.providers) == set(providers)

    def test_exhaustive_equals_stock_for_sparse_cids(self, dht):
        """§A ethics: for CIDs with <20 providers the modified walk behaves
        exactly like the stock one."""
        cid = CID.generate(random.Random(56))
        for provider in dht.peers[10:13]:
            dht.store_record(cid, provider)
        stock = iterative_find_providers(
            cid, [dht.info(dht.peers[0])], dht.get_providers_query
        )
        exhaustive = iterative_find_providers(
            cid, [dht.info(dht.peers[0])], dht.get_providers_query, exhaustive=True
        )
        assert set(r.provider for r in stock.providers) == set(
            r.provider for r in exhaustive.providers
        )
        assert stock.messages == exhaustive.messages
