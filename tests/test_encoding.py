"""Base58btc and base32 encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.ids.encoding import base32_decode, base32_encode, base58_decode, base58_encode


class TestBase58:
    def test_empty(self):
        assert base58_encode(b"") == ""
        assert base58_decode("") == b""

    def test_known_vector(self):
        # "Hello World!" is a classic base58 test vector.
        assert base58_encode(b"Hello World!") == "2NEpo7TZRRrLZSi2U"

    def test_leading_zeros_preserved(self):
        assert base58_encode(b"\x00\x00a") == "11" + base58_encode(b"a")
        assert base58_decode("11" + base58_encode(b"a")) == b"\x00\x00a"

    def test_alphabet_excludes_ambiguous_characters(self):
        encoded = base58_encode(bytes(range(256)))
        for forbidden in "0OIl":
            assert forbidden not in encoded

    def test_decode_rejects_invalid_characters(self):
        with pytest.raises(ValueError):
            base58_decode("0invalid")
        with pytest.raises(ValueError):
            base58_decode("abc!")

    @given(st.binary(max_size=64))
    def test_roundtrip(self, data):
        assert base58_decode(base58_encode(data)) == data


class TestBase32:
    def test_empty(self):
        assert base32_encode(b"") == ""
        assert base32_decode("") == b""

    def test_known_vector(self):
        # RFC 4648: BASE32("foobar") = "MZXW6YTBOI", lower-cased unpadded.
        assert base32_encode(b"foobar") == "mzxw6ytboi"

    def test_lowercase_output(self):
        encoded = base32_encode(bytes(range(256)))
        assert encoded == encoded.lower()

    def test_decode_rejects_invalid_characters(self):
        with pytest.raises(ValueError):
            base32_decode("ABC")  # upper case is outside our alphabet
        with pytest.raises(ValueError):
            base32_decode("a1a")  # '1' not in RFC 4648 base32

    @given(st.binary(max_size=64))
    def test_roundtrip(self, data):
        assert base32_decode(base32_encode(data)) == data

    @given(st.binary(min_size=1, max_size=32))
    def test_encoding_length(self, data):
        # ceil(8n/5) characters, unpadded.
        encoded = base32_encode(data)
        assert len(encoded) == (len(data) * 8 + 4) // 5
