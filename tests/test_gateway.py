"""Gateways: operators, the public list, the HTTP service, the prober."""

import random

import pytest

from repro.gateway.operators import default_operators, install_gateway_specs
from repro.gateway.registry import PublicGatewayRegistry
from repro.gateway.service import GatewayService
from repro.ids.cid import CID
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.gateway_probe import GatewayProber
from repro.netsim.network import Overlay
from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile


@pytest.fixture(scope="module")
def gateway_overlay():
    world = build_world(WorldProfile(online_servers=250, seed=41))
    install_gateway_specs(world)
    overlay = Overlay(world)
    overlay.bootstrap()
    return overlay


def service_for(overlay, operator_name, monitor=None):
    operators = {op.name: op for op in default_operators()}
    nodes = [
        node
        for node in overlay.nodes
        if node.spec.platform == operator_name
        and node.spec.node_class is NodeClass.GATEWAY
    ]
    return GatewayService(operators[operator_name], nodes, overlay, monitor)


class TestOperators:
    def test_overlay_node_budget_is_119(self):
        assert sum(op.num_overlay_nodes for op in default_operators()) == 119

    def test_22_functional_operators(self):
        assert len(default_operators()) == 22

    def test_cloudflare_largest_overlay_pool(self):
        operators = sorted(default_operators(), key=lambda o: -o.num_overlay_nodes)
        assert operators[0].name == "cloudflare"

    def test_noncloud_operators_exist(self):
        assert any(op.provider is None for op in default_operators())

    def test_install_appends_specs(self, gateway_overlay):
        world = gateway_overlay.world
        gateways = world.specs_of(NodeClass.GATEWAY)
        assert len(gateways) == 119
        # Databases know their blocks.
        for spec in gateways[:20]:
            assert world.geo_db.lookup(spec.blocks[0].base) == spec.country


class TestRegistry:
    def test_83_listed_22_functional(self):
        registry = PublicGatewayRegistry()
        assert len(registry) == 83
        assert len(registry.functional_entries()) == 22

    def test_checker(self):
        registry = PublicGatewayRegistry()
        assert registry.check("cloudflare-ipfs.com")
        dead = next(e for e in registry.entries if not e.functional)
        assert not registry.check(dead.domain)
        assert not registry.check("unknown.example")

    def test_operator_resolution(self):
        registry = PublicGatewayRegistry()
        operator = registry.operator_for("ipfs.io")
        assert operator is not None and operator.name == "protocol-labs"
        dead = next(e for e in registry.entries if not e.functional)
        assert registry.operator_for(dead.domain) is None

    def test_rejects_too_small_total(self):
        with pytest.raises(ValueError):
            PublicGatewayRegistry(total_entries=5)


class TestService:
    def test_404_for_unprovided_content(self, gateway_overlay):
        service = service_for(gateway_overlay, "cloudflare")
        response = service.http_get(CID.generate(random.Random(1)))
        assert response.status == 404

    def test_200_and_reprovide_for_available_content(self, gateway_overlay):
        overlay = gateway_overlay
        service = service_for(overlay, "cloudflare")
        provider = next(n for n in overlay.online_servers() if n.reachable)
        cid = CID.generate(random.Random(2))
        overlay.publish_provider_record(provider, cid)
        response = service.http_get(cid)
        assert response.status == 200
        assert response.served_by is not None
        # The auto-scaling effect: the gateway backend became a provider.
        providers = {r.provider for r in overlay.providers.get(cid, overlay.now)}
        assert response.served_by.peer in providers

    def test_cache_hit_on_second_request(self, gateway_overlay):
        overlay = gateway_overlay
        service = service_for(overlay, "protocol-labs")
        provider = next(n for n in overlay.online_servers() if n.reachable)
        cid = CID.generate(random.Random(3))
        overlay.publish_provider_record(provider, cid)
        first = service.http_get(cid)
        second = service.http_get(cid)
        assert first.status == 200 and not first.from_cache
        assert second.status == 200 and second.from_cache

    def test_requires_backends(self, gateway_overlay):
        operators = {op.name: op for op in default_operators()}
        with pytest.raises(ValueError):
            GatewayService(operators["cloudflare"], [], gateway_overlay)


class TestProber:
    def test_identifies_functional_endpoints_and_overlay_ids(self, gateway_overlay):
        overlay = gateway_overlay
        monitor = BitswapMonitor(random.Random(5))
        provider_node = next(n for n in overlay.online_servers() if n.reachable)
        services = {
            "cloudflare-ipfs.com": service_for(overlay, "cloudflare", monitor),
            "dead.example": None,
        }
        prober = GatewayProber(overlay, monitor, provider_node, random.Random(6))
        reports = prober.run_campaign(services, probes_per_endpoint=25)
        assert reports["cloudflare-ipfs.com"].functional
        assert not reports["dead.example"].functional
        assert len(reports["dead.example"].overlay_ids) == 0
        # Repeated probes enumerate multiple pool nodes.
        assert len(reports["cloudflare-ipfs.com"].overlay_ids) > 3

    def test_probe_content_is_unique_per_probe(self, gateway_overlay):
        overlay = gateway_overlay
        monitor = BitswapMonitor(random.Random(7))
        provider_node = next(n for n in overlay.online_servers() if n.reachable)
        prober = GatewayProber(overlay, monitor, provider_node, random.Random(8))
        service = service_for(overlay, "pinata", monitor)
        before = set(provider_node.provided_cids)
        prober.probe_once("gateway.pinata.cloud", service)
        prober.probe_once("gateway.pinata.cloud", service)
        fresh = set(provider_node.provided_cids) - before
        assert len(fresh) == 2  # each probe stores distinct random content
